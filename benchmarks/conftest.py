"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures on the
simulated testbed and prints the same rows/series the paper reports
(run with ``-s`` to see them). Absolute agreement with the SC'2000
testbed is not expected — the *shape* (who wins, by what factor, where
the crossovers are) is asserted, and paper-vs-measured values are
attached to ``benchmark.extra_info`` for EXPERIMENTS.md.
"""

import pytest


def record(benchmark, **extra):
    """Attach paper-vs-measured values to the benchmark record."""
    for key, value in extra.items():
        benchmark.extra_info[key] = value


def run_once(benchmark, fn):
    """Run a deterministic simulation exactly once under pytest-benchmark.

    These harnesses measure a *simulation*, so repeated timing rounds add
    nothing — pedantic single-shot keeps the suite fast while still
    recording wall-clock per experiment.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Printer that cooperates with pytest's capture (-s shows output)."""
    def _show(text=""):
        print(text)
    return _show
