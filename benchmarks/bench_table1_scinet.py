"""Table 1 — SC'2000 striped WAN transfer configuration and results.

Paper values:

    Striped servers at source location              8
    Striped servers at destination location         8
    Maximum simultaneous TCP streams per server     4
    Maximum simultaneous TCP streams overall        32
    Peak transfer rate over 0.1 seconds             1.55 Gbits/sec
    Peak transfer rate over 5 seconds               1.03 Gbits/sec
    Sustained transfer rate over 1 hour             512.9 Mbits/sec
    Total data transferred in 1 hour                230.8 Gbytes

The default run simulates 10 minutes (the sustained figure scales
linearly; multiply total by 6 for the hour). Set
``REPRO_TABLE1_HOUR=1`` in the environment for the full hour.
"""

import os

from repro.net import to_gbps
from repro.scenarios import ScinetTestbed, run_table1_schedule

from benchmarks.conftest import record, run_once

PAPER = {
    "peak_100ms_gbps": 1.55,
    "peak_5s_gbps": 1.03,
    "sustained_mbps": 512.9,
    "total_gbytes_per_hour": 230.8,
}


def test_table1_striped_transfer(benchmark, show):
    duration = 3600.0 if os.environ.get("REPRO_TABLE1_HOUR") else 600.0

    def run():
        testbed = ScinetTestbed(seed=3)
        return run_table1_schedule(testbed, duration=duration)

    result = run_once(benchmark, run)
    s = result.summary
    show()
    show("=== Table 1 (reproduced) ===")
    for label, value in result.rows():
        show(f"  {label:<48} {value}")
    show(f"  paper: 1.55 Gb/s | 1.03 Gb/s | 512.9 Mb/s | 230.8 GB/h")
    record(benchmark,
           duration_s=duration,
           measured_peak_100ms_gbps=round(s.peak_100ms_gbps, 3),
           measured_peak_5s_gbps=round(s.peak_5s_gbps, 3),
           measured_sustained_mbps=round(s.sustained_mbps, 1),
           measured_total_gbytes_per_hour=round(
               s.total_gbytes * 3600.0 / duration, 1),
           paper=PAPER)

    # Configuration rows are exact.
    assert result.striped_servers_src == 8
    assert result.striped_servers_dst == 8
    assert result.max_streams_per_server == 4
    assert result.max_streams_total == 32
    # Shape bands: ordering and rough magnitudes.
    assert s.peak_100ms >= s.peak_5s >= s.sustained
    assert 1.2 <= s.peak_100ms_gbps <= 1.8          # paper 1.55
    assert 0.9 <= s.peak_5s_gbps <= 1.6             # paper 1.03
    assert 350 <= s.sustained_mbps <= 700           # paper 512.9
    total_per_hour = s.total_gbytes * 3600.0 / duration
    assert 160 <= total_per_hour <= 320             # paper 230.8
