"""Figure 7 — the SC'2000 wide-area connectivity (NTON/HSCC).

The figure is the network map: SCinet at the Dallas Convention Center,
the HSCC/NTON optical infrastructure, and the OC-48 into LBNL. The
bench validates our rendition of it — capacities, latencies, and the
end-to-end path — and measures a raw path-capacity probe against the
provisioned numbers.
"""

from repro.net import gbps, to_gbps
from repro.scenarios import ScinetTestbed

from benchmarks.conftest import record, run_once


def test_figure7_scinet_connectivity(benchmark, show):
    def run():
        tb = ScinetTestbed(seed=1)
        # Raw capacity probe: one unconstrained bulk flow per host pair,
        # no floor traffic — what the provisioned path could carry.
        flows = [tb.network.transfer(tb.dallas_hosts[i].app_node,
                                     tb.lbl_hosts[i].app_node, 1e12)
                 for i in range(tb.n_hosts)]
        tb.network.reallocate()
        aggregate = sum(f.rate for f in flows)
        for f in flows:
            f.abort()
            f.done.defuse()
        return tb, aggregate

    tb, aggregate = run_once(benchmark, run)
    topo = tb.topology
    show()
    show("=== Figure 7 topology (reproduced) ===")
    for name in ("bond-dallas:fwd", "oc48:fwd", "bond-lbl:fwd"):
        link = topo.links[name]
        show(f"  {name:<18} {to_gbps(link.nominal_capacity):5.2f} Gb/s  "
             f"{link.latency * 1e3:6.2f} ms")
    rtt = topo.rtt(tb.dallas_hosts[0].node, tb.lbl_hosts[0].node)
    show(f"  host-to-host RTT: {rtt * 1e3:.1f} ms (paper: 10-20 ms)")
    show(f"  8-pair idle aggregate: {to_gbps(aggregate):.2f} Gb/s")
    record(benchmark, rtt_ms=round(rtt * 1e3, 2),
           idle_aggregate_gbps=round(to_gbps(aggregate), 2))

    assert topo.links["oc48:fwd"].nominal_capacity == gbps(2.5)
    assert topo.links["bond-dallas:fwd"].nominal_capacity == gbps(2)
    assert 0.010 <= rtt <= 0.020
    # Idle aggregate is limited by the bonded-GbE/CPU ceilings below
    # the OC-48 — the network itself was never our bottleneck.
    assert to_gbps(aggregate) <= 2.51
    assert to_gbps(aggregate) >= 1.2
