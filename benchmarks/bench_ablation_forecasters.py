"""Ablation A9 — the NWS adaptive forecaster earns its keep.

§5: NWS "periodically monitors and dynamically forecasts the
performance that various network and computational resources can
deliver". The NWS design runs a family of simple predictors and answers
with whichever has the lowest accumulated error. The bench measures
one-step-ahead error of each fixed predictor vs the adaptive one on
bandwidth series from a path with cross-traffic and outages — the
regime replica selection actually faces.
"""

import numpy as np

from repro.net import (
    FaultInjector,
    FaultSchedule,
    FluidNetwork,
    LinkLoadModulator,
    Topology,
    mbps,
)
from repro.nws import NetworkSensor
from repro.nws.forecasters import AdaptiveForecaster, default_suite
from repro.sim import Environment

from benchmarks.conftest import record, run_once


def collect_series(duration=3600.0, period=15.0):
    """Probe a path whose capacity fluctuates and occasionally dies."""
    env = Environment(seed=37)
    topo = Topology()
    topo.duplex_link("A", "B", mbps(155), 0.010)
    net = FluidNetwork(env, topo)
    mod = LinkLoadModulator(env, net, topo.links["A<->B:fwd"],
                            mean_load=0.5, rng=env.rng.stream("mod"),
                            volatility=0.1, correlation=0.8,
                            interval=5.0)
    mod.start()
    sched = FaultSchedule().link_outage("A<->B:fwd", start=1200.0,
                                        duration=120.0)
    FaultInjector(env, net).install(sched)
    sensor = NetworkSensor(env, net, "A", "B", period=period,
                           timeout=8.0)
    readings = []
    env.process(sensor.run(lambda key, r: readings.append(r.bandwidth)))
    env.run(until=duration)
    return readings


def test_a9_adaptive_forecaster_accuracy(benchmark, show):
    def run():
        series = collect_series()
        fixed = {f.name: f for f in default_suite()}
        adaptive = AdaptiveForecaster()
        errors = {name: 0.0 for name in fixed}
        errors["adaptive"] = 0.0
        n = 0
        for value in series:
            for name, f in fixed.items():
                pred = f.predict()
                if pred is not None:
                    errors[name] += (pred - value) ** 2
                f.update(value)
            pred = adaptive.predict()
            if pred is not None:
                errors["adaptive"] += (pred - value) ** 2
            adaptive.update(value)
            n += 1
        rmse = {name: (err / max(n - 1, 1)) ** 0.5 / mbps(1)
                for name, err in errors.items()}
        return len(series), rmse, adaptive.best_name

    n, rmse, best = run_once(benchmark, run)
    show()
    show(f"=== A9: forecaster RMSE over {n} probes (Mb/s) ===")
    for name, err in sorted(rmse.items(), key=lambda kv: kv[1]):
        tag = " <- adaptive answers with this" if name == best else ""
        show(f"  {name:<10} {err:7.2f}{tag}")
    record(benchmark, probes=n,
           rmse_mbps={k: round(v, 2) for k, v in rmse.items()},
           adaptive_choice=best)

    adaptive_err = rmse.pop("adaptive")
    worst = max(rmse.values())
    best_fixed = min(rmse.values())
    # The adaptive forecaster tracks the best fixed method closely —
    # nobody has to guess in advance which predictor suits this path —
    # and never degrades to the worst method.
    assert adaptive_err <= best_fixed * 1.1
    assert adaptive_err < worst
