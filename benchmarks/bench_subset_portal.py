"""Reduced-data fast path: bytes moved, bytes decoded, time-to-plot.

The paper's challenge is interactive remote analysis of archives far
too large to download: "it is infeasible to transfer entire datasets"
(§2), so the grid must ship *derived products*, not files. This bench
drives one portal plot — one variable, a tropical latitude band, one
year — through four access paths and measures the three costs that
matter for interactivity:

- **bytes moved** over the WAN (vs a whole-file download baseline),
- **bytes decoded** at the servers (chunked SDBF decodes only the
  touched chunks; flat SDBF decodes whole files; the derived-product
  cache decodes nothing on a repeat),
- **time-to-plot** (request issue to merged dataset in hand), including
  a cold-tape row where ERET range staging returns the subset after
  staging only the needed byte prefix.

Rows land in ``BENCH_subset_portal.json`` at the repo root. Gates (all
asserted in-bench): the portal workload ships >= 10x fewer bytes than
whole files; the chunked path decodes <= 2x the touched-chunk bytes; a
warm-cache repeat decodes 0 bytes; range staging answers a cold-tape
subset >= 2x sooner than waiting out the full stage.

Reduced CI smoke: ``REPRO_SUBSET_QUICK=1`` skips the flat-layout
contrast testbed; every gate still binds.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data import ClimateModelRun, GridSpec, SdbfReader
from repro.gridftp import GridFtpClient, GridFtpConfig, GridFtpServer
from repro.gridftp.plugins import install_standard_plugins
from repro.hosts import CpuModel, DiskArray, DiskSpec, Host, HostSpec
from repro.net import FluidNetwork, NameService, Topology, Transport, \
    gbps, mbps
from repro.scenarios import EsgTestbed
from repro.sim import Environment
from repro.storage import (
    FileObject,
    FileSystem,
    HierarchicalResourceManager,
    MassStorageSystem,
    TapeSpec,
)

from benchmarks.conftest import record, run_once

KB = 2**10
MB = 2**20
SEED = 6
DATASET = "pcmdi.ncar_csm.run1"
CHUNKS = {"time": 1, "lat": 8, "lon": 16}
LAT = (-10.0, 10.0)          # tropical band: ~1/8 of the grid's rows
OUT_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_subset_portal.json"

GATE_REDUCTION = 10.0        # portal ships >= 10x less than whole files
GATE_DECODE_FACTOR = 2.0     # decoded <= 2x touched-chunk bytes
GATE_TTFB_SPEEDUP = 2.0      # cold-tape subset answered >= 2x sooner


def _quick():
    return bool(os.environ.get("REPRO_SUBSET_QUICK"))


def _testbed(sdbf_chunks):
    tb = EsgTestbed(seed=SEED, materialize=True, with_tape=False,
                    grid=GridSpec(nlat=32, nlon=64, months=12),
                    sdbf_chunks=sdbf_chunks)
    tb.warm_nws(90.0)
    return tb


def _blob(tb, name):
    for server in tb.registry.values():
        if server.fs.exists(name):
            file = server.fs.stat(name)
            if file.content is not None:
                return file.content
    raise RuntimeError(f"no materialized copy of {name!r}")


def _touched_bytes(tb, names, variable, lat):
    """Ideal decode cost: coords + the chunks the subset touches."""
    total = 0.0
    for name in names:
        reader = SdbfReader(_blob(tb, name))
        lats = reader.coord("lat")
        idx = np.nonzero((lats >= lat[0]) & (lats <= lat[1]))[0]
        shape = reader.variable_meta(variable)["shape"]
        bounds = [(0, shape[0] - 1), (int(idx[0]), int(idx[-1])),
                  (0, shape[2] - 1)]
        total += reader.touched_chunk_bytes(variable, bounds)
        total += sum(reader.coord(d).nbytes
                     for d in ("time", "lat", "lon"))
    return total


# -- portal rows over the disk testbed -----------------------------------

def _portal_rows():
    tb = _testbed(CHUNKS)
    lo, _hi = tb.metadata_catalog.time_extent(DATASET)

    def query_names():
        return (yield from tb.metadata_catalog.query_files(DATASET, "tas",
                                                   (lo, lo), None))

    names = tb.run_process(query_names())
    whole_bytes = sum(tb.metadata_catalog.file_size(DATASET, n) for n in names)

    # Baseline: the heavyweight client downloads every file whole.
    def heavy():
        t0 = tb.env.now
        result = yield from tb.cdat.fetch(DATASET, "tas", years=(lo, lo))
        return result, tb.env.now - t0

    _result, heavy_seconds = tb.run_process(heavy())

    def series_fetch():
        series = yield from tb.portal.open_series(DATASET)
        return (yield from series.fetch("tas", operation="subset",
                                        years=(lo, lo), fanout=4,
                                        lat=LAT))

    cold = tb.run_process(series_fetch())
    warm = tb.run_process(series_fetch())
    touched = _touched_bytes(tb, names, "tas", LAT)

    rows = {
        "whole_file": {
            "bytes_moved": whole_bytes,
            "server_bytes_decoded": 0.0,
            "seconds": round(heavy_seconds, 3),
            "files": len(names),
        },
        "portal_chunked_cold": {
            "bytes_moved": cold.bytes_shipped,
            "server_bytes_decoded": cold.server_decoded_bytes,
            "touched_chunk_bytes": touched,
            "seconds": round(cold.seconds, 3),
            "files": cold.files,
            "cache_hits": cold.cache_hits,
            "reduction_vs_whole": round(whole_bytes / cold.bytes_shipped,
                                        2),
        },
        "portal_chunked_warm": {
            "bytes_moved": warm.bytes_shipped,
            "server_bytes_decoded": warm.server_decoded_bytes,
            "seconds": round(warm.seconds, 3),
            "files": warm.files,
            "cache_hits": warm.cache_hits,
        },
    }
    if not _quick():
        flat_tb = _testbed(None)

        def flat_fetch():
            series = yield from flat_tb.portal.open_series(DATASET)
            return (yield from series.fetch("tas", operation="subset",
                                            years=(lo, lo), fanout=4,
                                            lat=LAT))

        flat = flat_tb.run_process(flat_fetch())
        rows["portal_flat_cold"] = {
            "bytes_moved": flat.bytes_shipped,
            "server_bytes_decoded": flat.server_decoded_bytes,
            "seconds": round(flat.seconds, 3),
            "files": flat.files,
        }
    return rows


# -- cold tape: ERET range staging on/off --------------------------------

def _tape_rig(range_staging):
    """A minimal one-server grid fronting a slow single-drive MSS."""
    env = Environment(seed=7)
    topo = Topology("bench-tape")
    spec = HostSpec(nic_rate=gbps(1), bus_rate=None,
                    cpu=CpuModel(coalesce=8),
                    disk=DiskArray(DiskSpec(rate=60 * MB), count=4))
    srv_host = Host(topo, "srv", site="lbnl", spec=spec)
    cli_host = Host(topo, "cli", site="anl", spec=spec)
    srv_host.uplink("r-lbnl")
    cli_host.uplink("r-anl")
    topo.duplex_link("r-lbnl", "r-anl", mbps(622), 0.008, name="wan")
    net = FluidNetwork(env, topo)
    ns = NameService(env)
    ns.register("srv", "srv")
    transport = Transport(env, net, ns)
    server_fs = FileSystem(env, "srv-fs")
    client_fs = FileSystem(env, "cli-fs")
    server = GridFtpServer(env, srv_host, server_fs, hostname="srv",
                           eret_range_staging=range_staging)
    install_standard_plugins(server)
    # Slow drive, quick mount: the sequential read dominates — the
    # regime where staging only the needed prefix pays off.
    mss = MassStorageSystem(env, cache_capacity=2**30, drives=1,
                            tape_spec=TapeSpec(read_rate=32 * KB,
                                               mount_time=1.0,
                                               max_seek_time=1.0,
                                               rewind_time=1.0))
    server.hrm = HierarchicalResourceManager(env, mss, server_fs)
    run = ClimateModelRun(grid=GridSpec(nlat=64, nlon=128, months=12),
                          seed=7)
    blob = run.encode_year(1995, chunks={"time": 1, "lat": 64,
                                         "lon": 128})
    mss.archive(FileObject("year.nc", len(blob), content=blob),
                tape="T1", position=0.0)
    client = GridFtpClient(env, transport, {"srv": server},
                           config=GridFtpConfig())
    time_coord = run.generate_year(1995).coords["time"]
    return env, client, cli_host, client_fs, server, time_coord


def _tape_subset(range_staging):
    env, client, cli_host, client_fs, server, tc = _tape_rig(
        range_staging)

    def main():
        session = yield from client.connect(cli_host, "srv")
        t0 = env.now
        stats = yield from session.get(
            "year.nc", client_fs, cli_host, eret="subset",
            eret_args={"variable": "tas",
                       "time": (float(tc[0]), float(tc[1]))})
        return stats, env.now - t0

    proc = env.process(main())
    env.run(until=proc)
    stats, elapsed = proc.value
    return {"seconds": round(elapsed, 2),
            "server_bytes_decoded": stats.eret_decoded_bytes,
            "range_staged": server.eret_range_staged}


def test_subset_portal(benchmark, show):
    def experiment():
        t0 = time.perf_counter()
        out = {"portal": _portal_rows(),
               "cold_tape": {"range_staging_on": _tape_subset(True),
                             "range_staging_off": _tape_subset(False)}}
        out["wall_s"] = round(time.perf_counter() - t0, 1)
        return out

    results = run_once(benchmark, experiment)
    rows = results["portal"]
    tape = results["cold_tape"]
    cold = rows["portal_chunked_cold"]
    warm = rows["portal_chunked_warm"]
    whole = rows["whole_file"]
    speedup = (tape["range_staging_off"]["seconds"]
               / tape["range_staging_on"]["seconds"])

    show()
    show(f"=== Reduced-data fast path: tas, lat {LAT}, one year "
         f"({whole['files']} files) ===")
    for label, row in rows.items():
        decoded = row["server_bytes_decoded"]
        show(f"  {label:22s} moved {row['bytes_moved'] / KB:8.1f} KB  "
             f"decoded {decoded / KB:8.1f} KB  "
             f"plot in {row['seconds']:7.3f}s")
    show(f"  reduction vs whole files: "
         f"{cold['reduction_vs_whole']:.1f}x (gate >= "
         f"{GATE_REDUCTION:.0f}x)")
    show(f"  decoded vs touched chunks: "
         f"{cold['server_bytes_decoded'] / KB:.1f} / "
         f"{cold['touched_chunk_bytes'] / KB:.1f} KB "
         f"(gate <= {GATE_DECODE_FACTOR:.0f}x)")
    show(f"  warm repeat: decoded "
         f"{warm['server_bytes_decoded']:.0f} B, "
         f"{warm['cache_hits']}/{warm['files']} cache hits")
    show("=== Cold tape subset (slow drive) ===")
    show(f"  range staging on : {tape['range_staging_on']['seconds']}s "
         f"(range_staged={tape['range_staging_on']['range_staged']})")
    show(f"  range staging off: {tape['range_staging_off']['seconds']}s "
         f"-> {speedup:.1f}x sooner (gate >= "
         f"{GATE_TTFB_SPEEDUP:.0f}x)")
    show(f"  total wall: {results['wall_s']}s")

    OUT_PATH.write_text(json.dumps({
        "workload": {
            "seed": SEED,
            "dataset": DATASET,
            "variable": "tas",
            "lat": list(LAT),
            "sdbf_chunks": CHUNKS,
            "quick": _quick(),
        },
        "gates": {
            "reduction_vs_whole": GATE_REDUCTION,
            "decode_factor": GATE_DECODE_FACTOR,
            "tape_speedup": GATE_TTFB_SPEEDUP,
        },
        "results": results,
    }, indent=2) + "\n")
    record(benchmark, results=results)

    # -- gates ---------------------------------------------------------
    assert cold["reduction_vs_whole"] >= GATE_REDUCTION, (
        f"portal shipped only {cold['reduction_vs_whole']:.1f}x less "
        f"than whole files")
    assert cold["server_bytes_decoded"] <= \
        GATE_DECODE_FACTOR * cold["touched_chunk_bytes"]
    assert cold["server_bytes_decoded"] > 0
    assert warm["server_bytes_decoded"] == 0.0
    assert warm["cache_hits"] == warm["files"]
    assert tape["range_staging_on"]["range_staged"] == 1
    assert tape["range_staging_off"]["range_staged"] == 0
    assert speedup >= GATE_TTFB_SPEEDUP, (
        f"range staging only {speedup:.1f}x sooner")
    # Flat replicas decode whole files; chunked replicas decode less.
    if "portal_flat_cold" in rows:
        assert rows["portal_flat_cold"]["server_bytes_decoded"] > \
            cold["server_bytes_decoded"]
    # The portal never beats physics: the subset still moved every byte
    # the plot needed.
    assert cold["bytes_moved"] > 0
