"""Ablation A4 — data-channel caching removes inter-transfer dips.

§7: "The frequent drop in bandwidth to relatively low levels occurs
because the GridFTP implementation used at SC'2000 destroys and rebuilds
its TCP connections between consecutive transfers. Based on this
observation, we ... implemented data channel caching ... without
requiring costly breakdown, restart, and re-authentication operations."

The bench replays a back-to-back sequence of medium files on a
long-RTT path with caching off (SC'2000 behaviour) and on (the fix),
comparing makespans and the reuse of warm TCP windows.
"""

from repro.gridftp import GridFtpConfig
from repro.net import MB, mbps, to_mbps

from tests.gridftp.conftest import Grid

from benchmarks.conftest import record, run_once

N_FILES = 12
SIZE = 12 * MB


def sequence_run(caching: bool):
    grid = Grid(seed=31, wan=mbps(622), latency=0.030)
    for i in range(N_FILES):
        grid.server_fs.create(f"f{i}.nc", SIZE)
    cfg = GridFtpConfig(parallelism=1, buffer_bytes=2 * MB,
                        channel_caching=caching)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        t0 = grid.env.now
        per_file = []
        reused = 0
        for i in range(N_FILES):
            f0 = grid.env.now
            stats = yield from session.get(f"f{i}.nc", grid.client_fs,
                                           grid.client_host, config=cfg)
            per_file.append(grid.env.now - f0)
            reused += int(stats.channel_reused)
        return grid.env.now - t0, per_file, reused

    return grid.run_process(main())


def test_a4_channel_caching(benchmark, show):
    def run():
        cold = sequence_run(caching=False)
        warm = sequence_run(caching=True)
        return cold, warm

    (cold_total, cold_files, cold_reused), \
        (warm_total, warm_files, warm_reused) = run_once(benchmark, run)
    show()
    show(f"=== A4: {N_FILES} consecutive {SIZE // MB} MiB transfers, "
         f"RTT 60 ms ===")
    show(f"  caching OFF: {cold_total:6.1f} s total "
         f"(mean {sum(cold_files) / len(cold_files):.2f} s/file, "
         f"{cold_reused} reused channels)")
    show(f"  caching ON : {warm_total:6.1f} s total "
         f"(mean {sum(warm_files) / len(warm_files):.2f} s/file, "
         f"{warm_reused} reused channels)")
    show(f"  speedup: {cold_total / warm_total:.2f}x")
    record(benchmark, cold_total_s=round(cold_total, 2),
           warm_total_s=round(warm_total, 2),
           speedup=round(cold_total / warm_total, 2),
           warm_reused=warm_reused)

    assert cold_reused == 0
    assert warm_reused >= N_FILES - 1
    # Every transfer after the first is faster warm (no slow start, no
    # channel re-establishment).
    assert warm_total < cold_total * 0.8
    warm_tail = warm_files[1:]
    cold_tail = cold_files[1:]
    assert sum(warm_tail) < sum(cold_tail) * 0.8
