"""Ablation A1 — parallel TCP streams improve aggregate bandwidth.

§6.1: "Parallel data transfer that uses multiple TCP streams between a
source and destination, which can improve aggregate bandwidth in some
situations [15]." The two situations the bench isolates:

- **window-limited paths** (buffer < bandwidth·delay): N streams ≈ N×
  the single-stream rate until another bottleneck binds;
- **lossy paths**: independent per-stream recovery keeps the aggregate
  high where one stream would sit in congestion avoidance.
"""

from repro.gridftp import GridFtpConfig
from repro.net import MB, mbps, to_mbps

from tests.gridftp.conftest import Grid

from benchmarks.conftest import record, run_once

SIZE = 128 * MB


def transfer_rate(parallelism: int, loss_rate: float = 0.0,
                  buffer_bytes: float = 256 * 1024) -> float:
    grid = Grid(seed=13, wan=mbps(622), latency=0.030)
    grid.server_fs.create("f.dat", SIZE)
    cfg = GridFtpConfig(parallelism=parallelism,
                        buffer_bytes=buffer_bytes,
                        loss_rate=loss_rate)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        t0 = grid.env.now
        yield from session.get("f.dat", grid.client_fs,
                               grid.client_host, config=cfg)
        return SIZE / (grid.env.now - t0)

    return grid.run_process(main())


def test_a1_parallel_streams_sweep(benchmark, show):
    def run():
        window = {n: transfer_rate(n) for n in (1, 2, 4, 8, 16)}
        lossy = {n: transfer_rate(n, loss_rate=0.4,
                                  buffer_bytes=1 * MB)
                 for n in (1, 4, 8)}
        return window, lossy

    window, lossy = run_once(benchmark, run)
    show()
    show("=== A1: streams vs throughput (window-limited, 256 KB buf) ===")
    for n, rate in window.items():
        show(f"  {n:>2} streams: {to_mbps(rate):7.1f} Mb/s "
             + "#" * int(to_mbps(rate) / 10))
    show("=== A1: streams vs throughput (lossy path, 1 MB buf) ===")
    for n, rate in lossy.items():
        show(f"  {n:>2} streams: {to_mbps(rate):7.1f} Mb/s")
    record(benchmark,
           window_limited={n: round(to_mbps(r), 1)
                           for n, r in window.items()},
           lossy={n: round(to_mbps(r), 1) for n, r in lossy.items()})

    # Near-linear scaling while window-limited...
    assert window[4] > 3.0 * window[1]
    assert window[8] > 5.0 * window[1]
    # ...with diminishing returns once the path saturates.
    gain_16 = window[16] / window[8]
    assert gain_16 < 1.7
    # Loss resilience: more streams, higher aggregate (4 and 8 streams
    # are statistically close once the path nears saturation).
    assert lossy[4] > 1.3 * lossy[1]
    assert lossy[8] > 2.0 * lossy[1]
