"""Ablation A10 — concurrent multi-site transfers raise aggregate rate.

§4: "We note that the ability to transfer multiple files from various
sites concurrently can enhance the aggregate transfer rate to a client.
Using this capability, one can choose to replicate popular collections
in multiple sites. A RM can then plan concurrent file transfers to
maximize the number of different sites from which files are obtained."

The bench fetches the same 8-file set with (a) every file at one site
(single-source), and (b) files replicated across all sites with NWS
spreading the load — measuring makespan on a client whose downlink is
fat enough to drink from several sites at once.
"""

from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once

N_FILES = 8
SIZE = 64 * 2**20


def widen_client(tb, factor=20):
    """Give the client enough downlink to benefit from concurrency."""
    for name in ("wan-client:fwd", "wan-client:rev"):
        link = tb.topology.links[name]
        link.restore(link.nominal_capacity * factor)
        link.nominal_capacity = link.capacity
    for link in tb.client_host.links.values():
        link.restore(link.nominal_capacity * factor)
        link.nominal_capacity = link.capacity


def makespan(single_source: bool) -> float:
    tb = EsgTestbed(seed=27, file_size_override=SIZE)
    widen_client(tb)
    # The §4 planning behaviour: staging-aware estimates, rotated among
    # near-best sites so concurrent files spread out.
    from repro.replica import NwsSpreadPolicy
    tb.request_manager.policy = NwsSpreadPolicy(tolerance=0.5)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:N_FILES]
    if single_source:
        # Strip every replica except ANL's; put all files there.
        anl = tb.sites["anl"]
        for n in names:
            if not anl.fs.exists(n):
                anl.fs.create(n, SIZE)
        for loc in tb.replica_catalog.locations(ds):
            for n in names:
                if n in loc.files and loc.name != "anl":
                    tb.replica_catalog.remove_file_from_location(
                        ds, loc.name, n)
        anl_files = {l.name: l for l in
                     tb.replica_catalog.locations(ds)}["anl"].files
        for n in names:
            if n not in anl_files:
                tb.replica_catalog.add_file_to_location(ds, "anl", n)
    tb.warm_nws(120.0)
    t0 = tb.env.now
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    assert not ticket.failed_files
    sites = {f.chosen_location for f in ticket.files}
    return tb.env.now - t0, len(sites)


def test_a10_multisite_concurrency(benchmark, show):
    def run():
        single, single_sites = makespan(single_source=True)
        spread, spread_sites = makespan(single_source=False)
        return single, single_sites, spread, spread_sites

    single, single_sites, spread, spread_sites = run_once(benchmark, run)
    show()
    show(f"=== A10: {N_FILES} x {SIZE // 2**20} MiB concurrent fetch ===")
    show(f"  all files at one site : {single:7.1f} s "
         f"({single_sites} source site)")
    show(f"  replicated, NWS-spread: {spread:7.1f} s "
         f"({spread_sites} source sites)")
    show(f"  speedup from multi-site concurrency: "
         f"{single / spread:.2f}x")
    record(benchmark, single_s=round(single, 1),
           spread_s=round(spread, 1),
           speedup=round(single / spread, 2),
           spread_sites=spread_sites)

    assert single_sites == 1
    assert spread_sites >= 3
    assert spread < single * 0.7
