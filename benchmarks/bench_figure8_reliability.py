"""Figure 8 — bandwidth over a long fault-ridden run, Dallas → Chicago.

Paper: ~14 hours of repeated 2 GB transfers over commodity internet on
100 Mb/s NICs; bandwidth "reaches approximately 80 Mbs ... most likely
due to disk bandwidth limitations"; drops from a SCinet power failure,
DNS problems, and backbone problems; restart resumes transfers when the
network returns; extra parallelism late in the run temporarily raises
aggregate bandwidth.

Default run compresses the timeline to 4 hours (same incidents); set
``REPRO_FIGURE8_FULL=1`` for the 14-hour original.
"""

import os

import numpy as np

from repro.net import FaultSchedule, mbps
from repro.scenarios import CommodityTestbed, run_figure8_schedule
from repro.scenarios.commodity import HOURS, default_fault_schedule

from benchmarks.conftest import record, run_once


def compressed_schedule():
    return (FaultSchedule()
            .site_outage("dallas", start=0.8 * HOURS, duration=1200.0,
                         description="SCinet power failure")
            .dns_outage(start=1.8 * HOURS, duration=900.0,
                        description="DNS problems")
            .degrade("commodity:fwd", start=2.8 * HOURS, duration=1500.0,
                     fraction=0.15,
                     description="backbone problems"))


def test_figure8_reliability_timeline(benchmark, show):
    full = bool(os.environ.get("REPRO_FIGURE8_FULL"))
    duration = 14 * HOURS if full else 4 * HOURS
    faults = default_fault_schedule() if full else compressed_schedule()
    parallelism = [(0.0, 2), (duration * 0.55, 4), (duration * 0.8, 8)]

    def run():
        testbed = CommodityTestbed(seed=8)
        return run_figure8_schedule(testbed, duration=duration,
                                    faults=faults,
                                    parallelism=parallelism,
                                    bin_seconds=120.0)

    result = run_once(benchmark, run)
    plateau_mbps = result.plateau_rate * 8 / 1e6
    show()
    show("=== Figure 8 (reproduced): bandwidth timeline ===")
    peak = result.bin_rates.max() or 1.0
    for t, r in list(zip(result.bin_times, result.bin_rates))[::4]:
        bar = "#" * int(44 * r / peak)
        show(f"  {t / HOURS:5.2f} h {r * 8 / 1e6:7.1f} Mb/s {bar}")
    show(f"  plateau {plateau_mbps:.1f} Mb/s (paper ~80); "
         f"{result.transfers_completed} transfers, "
         f"{result.restarts} restarts")
    record(benchmark, duration_h=duration / HOURS,
           measured_plateau_mbps=round(plateau_mbps, 1),
           paper_plateau_mbps=80.0,
           transfers_completed=result.transfers_completed,
           restarts=result.restarts,
           outage_bins=result.outage_bins())

    # Plateau: ~80 Mb/s, disk-limited below the 100 Mb/s NIC.
    assert 70 <= plateau_mbps <= 95
    # The power failure produces near-zero bins; the run recovers.
    assert result.outage_bins() >= 3
    assert result.restarts >= 1
    assert result.transfers_completed >= 20
    # Restart semantics: completed volume matches completed transfers.
    assert result.total_bytes >= result.transfers_completed * 2 * 2**30 \
        * 0.99
    # Drops happened (power failure) and service returned: the last
    # tenth of the run is healthy.
    tail = result.bin_rates[-len(result.bin_rates) // 10:]
    assert tail.mean() > mbps(50)
