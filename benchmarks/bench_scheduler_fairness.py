"""Scheduler fairness — scheduled vs unscheduled contention sweep.

The abstract's scaling concern ("potentially thousands of users") turns
into a stampede the moment every request manager opens connections
greedily: servers refuse connects (421), retries back off, and bulk
tickets crowd out interactive ones.  This bench runs the same
mixed small/bulk workload (:func:`repro.scenarios.run_contention`) in
both configurations at growing ticket counts and asserts the shared
:class:`~repro.rm.scheduler.TransferScheduler` pays for itself where
contention is heaviest:

- aggregate goodput at the largest sweep point is at least the
  unscheduled baseline's (admission control costs nothing), and
- p95 completion latency of the 1-file (interactive) tickets improves
  by at least 2x (priority classes + deficit round robin do the
  ordering the stampede can't).

Results are written to ``BENCH_scheduler_fairness.json`` at the repo
root so the fairness numbers are versioned alongside the code.

Set ``REPRO_FAIRNESS_COUNTS=16`` (comma-separated ticket counts) to run
a reduced sweep, e.g. for CI smoke; the 2x acceptance gate only binds
at the full sweep's largest point (256 tickets).
"""

import json
import os
from pathlib import Path

from repro.scenarios.contention import run_contention

from benchmarks.conftest import record, run_once

TICKET_COUNTS = (16, 64, 256)
N_USERS = 16              # user desktops sharing the testbed
SEED = 0
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_scheduler_fairness.json"

# The acceptance gate from the issue, asserted at this sweep point.
GATE_AT = 256
GATE_P95_IMPROVEMENT = 2.0


def _counts():
    env_counts = os.environ.get("REPRO_FAIRNESS_COUNTS")
    if env_counts:
        return tuple(int(c) for c in env_counts.split(","))
    return TICKET_COUNTS


def _row(n: int) -> dict:
    base = run_contention(n, scheduled=False, seed=SEED, n_users=N_USERS)
    sched = run_contention(n, scheduled=True, seed=SEED, n_users=N_USERS)
    # Apples to apples: both runs must land every byte of the workload.
    assert base.failed_files == 0, f"baseline dropped files at n={n}"
    assert sched.failed_files == 0, f"scheduled dropped files at n={n}"
    assert abs(base.total_bytes - sched.total_bytes) < 1.0
    mib = 2**20
    return {
        "tickets": n,
        "users": N_USERS,
        "total_mib": round(base.total_bytes / mib, 1),
        "baseline": {
            "duration_s": round(base.duration, 2),
            "goodput_mib_s": round(base.goodput / mib, 2),
            "p95_small_s": round(base.p95_small_latency, 2),
            "p95_bulk_s": round(percentile_bulk(base), 2),
            "server_421s": base.server_rejections,
        },
        "scheduled": {
            "duration_s": round(sched.duration, 2),
            "goodput_mib_s": round(sched.goodput / mib, 2),
            "p95_small_s": round(sched.p95_small_latency, 2),
            "p95_bulk_s": round(percentile_bulk(sched), 2),
            "server_421s": sched.server_rejections,
            # scalar counters only; the per-ticket byte map is huge
            "scheduler": {k: v for k, v in sched.scheduler_stats.items()
                          if not isinstance(v, dict)},
        },
        "goodput_ratio": round(sched.goodput / base.goodput, 3)
        if base.goodput else None,
        "p95_small_improvement": round(
            base.p95_small_latency / sched.p95_small_latency, 2)
        if sched.p95_small_latency else None,
    }


def percentile_bulk(result) -> float:
    from repro.scenarios.contention import percentile
    return percentile(result.bulk_latencies, 95.0)


def test_scheduler_fairness_sweep(benchmark, show):
    counts = _counts()
    rows = run_once(benchmark, lambda: [_row(n) for n in counts])

    show()
    show("=== Transfer scheduler fairness (scheduled vs stampede) ===")
    show(f"  {'tickets':>7} {'good(MiB/s)':>22} {'p95 small(s)':>18} "
         f"{'421s':>12}")
    for r in rows:
        b, s = r["baseline"], r["scheduled"]
        show(f"  {r['tickets']:>7} "
             f"{b['goodput_mib_s']:>10.2f} {s['goodput_mib_s']:>10.2f} "
             f"{b['p95_small_s']:>8.2f} {s['p95_small_s']:>8.2f} "
             f"{b['server_421s']:>6} {s['server_421s']:>5}")

    OUT_PATH.write_text(json.dumps({
        "workload": {
            "users": N_USERS, "seed": SEED, "bulk_every": 4,
            "bulk_files": 6, "file_size_mib": 4,
        },
        "rows": rows,
    }, indent=2) + "\n")
    record(benchmark, rows=rows)

    for r in rows:
        # Admission control keeps the servers inside their caps: the
        # scheduled run never trips a 421 stampede.
        assert r["scheduled"]["server_421s"] <= r["baseline"]["server_421s"]
        if r["tickets"] >= GATE_AT:
            assert r["goodput_ratio"] >= 1.0, (
                f"scheduler cost goodput at n={r['tickets']}: "
                f"{r['goodput_ratio']}")
            assert r["p95_small_improvement"] >= GATE_P95_IMPROVEMENT, (
                f"p95 small-ticket latency only improved "
                f"{r['p95_small_improvement']}x at n={r['tickets']}")
