"""Extension bench — community-scale access (the abstract's premise).

"A new class of Data Grid infrastructure is required to support
management, transport, distributed access to, and analysis of these
datasets by potentially thousands of users." Two harnesses:

``test_user_scaling`` (the original shared-services study) attaches
independent ``add_client`` user sites and shows catalog load scaling
linearly while per-user makespan degrades sublinearly.

``test_fleet_scaling_sweep`` pushes the fleet-construction fast path —
``add_fleet`` PoP grouping, the calendar-queue kernel, and fluid flow
aggregation — through n = 10² to 10⁴ users (10⁵ with
``REPRO_USER_SCALING_FULL=1``), recording wall time, events/sec, and
peak RSS per row to ``BENCH_user_scaling.json`` at the repo root. A
heap-kernel/exact-flow baseline at the same n anchors the speedup
claim (>= 10x events/sec at n >= 10³), and
``test_fleet_aggregation_differential`` proves the aggregate fluid
model agrees with the exact per-flow model (per-user makespans within
1% at n = 48) and that both kernel backends replay bit-identically.

Env knobs for CI smoke: ``REPRO_USER_SCALING_COUNTS=100,1000``
(comma-separated sweep), ``REPRO_USER_SCALING_WALL_GATE=240`` (seconds
allowed for the n = 10⁴ row; 0 disables the gate).
"""

import json
import os
import resource
import time
from pathlib import Path

from repro.scenarios import EsgTestbed
from repro.scenarios.esg import fleet_config

from benchmarks.conftest import record, run_once

FILES_PER_USER = 3
SIZE = 24 * 2**20

FLEET_SIZE = 8 * 2**20      # bytes per user in the fleet sweep
FLEET_SWEEP = (100, 1000, 2000, 10000)
BASELINE_N = 2000           # heap/exact anchor for the speedup gate
USERS_PER_POP = 64
AGG_THRESHOLD = 2
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_user_scaling.json"


def fleet_run(n_users: int):
    tb = EsgTestbed(seed=31, file_size_override=SIZE)
    tb.warm_nws(90.0)
    rms = [tb.add_client(f"user{i}") for i in range(n_users)]
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:FILES_PER_USER]
    ops_before = tb.replica_catalog.directory.operations
    t0 = tb.env.now
    tickets = [rm.submit([(ds, n) for n in names]) for rm in rms]
    for t in tickets:
        tb.env.run(until=t.done)
    assert all(not t.failed_files for t in tickets)
    makespans = [max(f.finished_at for f in t.files) - t.submitted_at
                 for t in tickets]
    total_bytes = sum(t.bytes_done for t in tickets)
    wall = tb.env.now - t0
    return {
        "mean_makespan": sum(makespans) / len(makespans),
        "worst_makespan": max(makespans),
        "aggregate_mbps": total_bytes / wall * 8 / 1e6,
        "catalog_ops": tb.replica_catalog.directory.operations
        - ops_before,
    }


def test_user_scaling(benchmark, show):
    def run():
        return {n: fleet_run(n) for n in (1, 4, 12, 48)}

    results = run_once(benchmark, run)
    show()
    show(f"=== User scaling: {FILES_PER_USER} x {SIZE // 2**20} MiB "
         f"per user ===")
    show(f"  {'users':>6} {'mean(s)':>9} {'worst(s)':>9} "
         f"{'agg Mb/s':>9} {'catalog ops':>12}")
    for n, r in results.items():
        show(f"  {n:>6} {r['mean_makespan']:>9.1f} "
             f"{r['worst_makespan']:>9.1f} {r['aggregate_mbps']:>9.1f} "
             f"{r['catalog_ops']:>12}")
    record(benchmark, results={
        n: {k: round(v, 1) for k, v in r.items()}
        for n, r in results.items()})

    # Catalog load scales linearly with users (one lookup per file)...
    assert results[12]["catalog_ops"] >= 10 * results[1]["catalog_ops"]
    # ...aggregate delivered bandwidth grows with the fleet...
    assert results[4]["aggregate_mbps"] > 2 * results[1]["aggregate_mbps"]
    assert results[12]["aggregate_mbps"] > results[4]["aggregate_mbps"]
    # ...and per-user latency degrades sublinearly (replicas spread load).
    assert results[12]["mean_makespan"] < 6 * results[1]["mean_makespan"]
    # At community scale (48 users) the fleet still moves more aggregate
    # traffic than at 12, and catalog load stays linear in users.
    assert results[48]["aggregate_mbps"] >= results[12]["aggregate_mbps"]
    assert results[48]["catalog_ops"] >= 3 * results[12]["catalog_ops"]


# -- fleet fast path (calendar kernel + flow aggregation) ---------------------

def _sweep():
    env_counts = os.environ.get("REPRO_USER_SCALING_COUNTS")
    if env_counts:
        return tuple(int(c) for c in env_counts.split(","))
    sweep = list(FLEET_SWEEP)
    if os.environ.get("REPRO_USER_SCALING_FULL"):
        sweep.append(100_000)
    return tuple(sweep)


def _rss_mib():
    """(current, peak-so-far) resident set in MiB, stdlib only."""
    with open("/proc/self/statm") as fh:
        pages = int(fh.read().split()[1])
    current = pages * resource.getpagesize() / 2**20
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return current, peak


def pop_fleet_run(n_users: int, kernel: str = "calendar",
                  aggregation=AGG_THRESHOLD, seed: int = 31,
                  size: int = FLEET_SIZE):
    """One PoP-grouped fleet request wave; every user pulls one file."""
    tb = EsgTestbed(seed=seed, file_size_override=size, with_tape=False,
                    kernel_queue=kernel, aggregation_threshold=aggregation,
                    log_capacity=4096)
    tb.warm_nws(90.0)
    rms = tb.add_fleet(n_users, users_per_pop=USERS_PER_POP,
                       config=fleet_config())
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:1]
    t0 = time.perf_counter()
    tickets = [rm.submit([(ds, n) for n in names]) for rm in rms]
    for t in tickets:
        tb.env.run(until=t.done)
    wall = time.perf_counter() - t0
    assert all(not t.failed_files for t in tickets)
    makespans = [max(f.finished_at for f in t.files) - t.submitted_at
                 for t in tickets]
    stats = tb.env.kernel_stats
    rss_now, rss_peak = _rss_mib()
    return {
        "users": n_users,
        "kernel": kernel,
        "aggregation": aggregation,
        "wall_s": round(wall, 2),
        "events": stats["events_dispatched"],
        "events_per_s": round(stats["events_dispatched"] / wall),
        "mean_makespan_s": round(sum(makespans) / len(makespans), 3),
        "worst_makespan_s": round(max(makespans), 3),
        "makespans": makespans,
        "aggregates": tb.network.aggregates_created,
        "aggregate_joins": tb.network.aggregate_joins,
        "rss_mib": round(rss_now, 1),
        "peak_rss_mib": round(rss_peak, 1),
    }


def test_fleet_aggregation_differential(benchmark, show):
    """Aggregate fluid classes must reproduce the exact per-flow model.

    At n = 48 the run is cheap enough to do three times: calendar
    kernel with aggregation, calendar kernel exact, and heap kernel
    exact. Per-user makespans must agree within 1% between aggregate
    and exact, and the two kernel backends must replay the exact run
    bit-identically.
    """
    def run():
        agg = pop_fleet_run(48, kernel="calendar")
        exact = pop_fleet_run(48, kernel="calendar", aggregation=None)
        heap = pop_fleet_run(48, kernel="heap", aggregation=None)
        return agg, exact, heap

    agg, exact, heap = run_once(benchmark, run)
    assert agg["aggregates"] > 0, "aggregation never engaged at n=48"
    worst = 0.0
    for m_agg, m_exact in zip(agg["makespans"], exact["makespans"]):
        delta = abs(m_agg - m_exact) / m_exact
        worst = max(worst, delta)
        assert delta <= 0.01, (
            f"aggregate makespan {m_agg:.3f}s vs exact {m_exact:.3f}s "
            f"({delta * 100:.2f}% off)")
    # Kernel backends are interchangeable to the last bit.
    assert heap["makespans"] == exact["makespans"]
    assert heap["events"] == exact["events"]
    show()
    show("=== Aggregation differential (n=48) ===")
    show(f"  worst per-user makespan delta: {worst * 100:.4f}%")
    show(f"  heap vs calendar exact replay: bit-identical "
         f"({exact['events']} events)")
    record(benchmark, worst_delta_pct=round(worst * 100, 4),
           aggregates=agg["aggregates"])


def test_fleet_scaling_sweep(benchmark, show):
    counts = _sweep()
    wall_gate = float(os.environ.get("REPRO_USER_SCALING_WALL_GATE", 240))

    def run():
        rows = [pop_fleet_run(n) for n in counts]
        baseline_n = min(BASELINE_N, max(counts))
        baseline = pop_fleet_run(baseline_n, kernel="heap",
                                 aggregation=None)
        return rows, baseline

    rows, baseline = run_once(benchmark, run)
    show()
    show(f"=== Fleet scaling: 1 x {FLEET_SIZE // 2**20} MiB per user, "
         f"{USERS_PER_POP} users/PoP ===")
    show(f"  {'users':>7} {'kernel':>9} {'wall(s)':>8} {'events':>9} "
         f"{'ev/s':>7} {'mean mk(s)':>10} {'RSS MiB':>8}")
    for r in rows + [baseline]:
        label = (f"{r['kernel'][:4]}"
                 f"{'+agg' if r['aggregation'] else '/exact'}")
        show(f"  {r['users']:>7} {label:>9} {r['wall_s']:>8.2f} "
             f"{r['events']:>9} {r['events_per_s']:>7} "
             f"{r['mean_makespan_s']:>10.1f} {r['rss_mib']:>8.1f}")

    def strip(r):
        return {k: v for k, v in r.items() if k != "makespans"}

    OUT_PATH.write_text(json.dumps({
        "workload": {
            "bytes_per_user": FLEET_SIZE,
            "users_per_pop": USERS_PER_POP,
            "aggregation_threshold": AGG_THRESHOLD,
            "baseline": f"queue=heap, exact flows, n={baseline['users']}",
        },
        "rows": [strip(r) for r in rows],
        "baseline": strip(baseline),
    }, indent=2) + "\n")
    record(benchmark, rows=[strip(r) for r in rows],
           baseline=strip(baseline))

    by_n = {r["users"]: r for r in rows}
    # The fast path must hold >= 10x the baseline's events/sec at fleet
    # scale (n >= 10^3): the calendar queue keeps dispatch O(1) and
    # aggregation keeps the allocator out of the O(flows) regime.
    # Prefer the row at the baseline's own n (identical workload);
    # fall back to the best comparable row on reduced CI sweeps.
    peer = by_n.get(baseline["users"])
    comparable = [peer] if peer else [
        r for r in rows if r["users"] >= 1000]
    if comparable and baseline["users"] >= BASELINE_N:
        fast = max(r["events_per_s"] for r in comparable)
        floor = 10 * baseline["events_per_s"]
        assert fast >= floor, (
            f"fast path {fast} ev/s < 10x baseline "
            f"{baseline['events_per_s']} ev/s")
    # Bounded wall time at n = 10^4 — the headline scaling claim.
    if wall_gate and 10_000 in by_n:
        assert by_n[10_000]["wall_s"] <= wall_gate, (
            f"n=10^4 took {by_n[10_000]['wall_s']}s > {wall_gate}s gate")
    # Aggregation must actually engage in every fleet row.
    for r in rows:
        assert r["aggregates"] > 0, f"no aggregation at n={r['users']}"
