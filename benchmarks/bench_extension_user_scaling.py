"""Extension bench — community-scale access (the abstract's premise).

"A new class of Data Grid infrastructure is required to support
management, transport, distributed access to, and analysis of these
datasets by potentially thousands of users." The bench attaches growing
fleets of independent user sites, each running the same multi-file
request concurrently, and reports per-user makespan, aggregate
delivered bandwidth, and catalog/MDS load — showing that the shared
services scale gracefully while per-user performance degrades only once
the *servers'* capacity saturates (the replication story's motivation).
"""

from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once

FILES_PER_USER = 3
SIZE = 24 * 2**20


def fleet_run(n_users: int):
    tb = EsgTestbed(seed=31, file_size_override=SIZE)
    tb.warm_nws(90.0)
    rms = [tb.add_client(f"user{i}") for i in range(n_users)]
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:FILES_PER_USER]
    ops_before = tb.replica_catalog.directory.operations
    t0 = tb.env.now
    tickets = [rm.submit([(ds, n) for n in names]) for rm in rms]
    for t in tickets:
        tb.env.run(until=t.done)
    assert all(not t.failed_files for t in tickets)
    makespans = [max(f.finished_at for f in t.files) - t.submitted_at
                 for t in tickets]
    total_bytes = sum(t.bytes_done for t in tickets)
    wall = tb.env.now - t0
    return {
        "mean_makespan": sum(makespans) / len(makespans),
        "worst_makespan": max(makespans),
        "aggregate_mbps": total_bytes / wall * 8 / 1e6,
        "catalog_ops": tb.replica_catalog.directory.operations
        - ops_before,
    }


def test_user_scaling(benchmark, show):
    def run():
        return {n: fleet_run(n) for n in (1, 4, 12, 48)}

    results = run_once(benchmark, run)
    show()
    show(f"=== User scaling: {FILES_PER_USER} x {SIZE // 2**20} MiB "
         f"per user ===")
    show(f"  {'users':>6} {'mean(s)':>9} {'worst(s)':>9} "
         f"{'agg Mb/s':>9} {'catalog ops':>12}")
    for n, r in results.items():
        show(f"  {n:>6} {r['mean_makespan']:>9.1f} "
             f"{r['worst_makespan']:>9.1f} {r['aggregate_mbps']:>9.1f} "
             f"{r['catalog_ops']:>12}")
    record(benchmark, results={
        n: {k: round(v, 1) for k, v in r.items()}
        for n, r in results.items()})

    # Catalog load scales linearly with users (one lookup per file)...
    assert results[12]["catalog_ops"] >= 10 * results[1]["catalog_ops"]
    # ...aggregate delivered bandwidth grows with the fleet...
    assert results[4]["aggregate_mbps"] > 2 * results[1]["aggregate_mbps"]
    assert results[12]["aggregate_mbps"] > results[4]["aggregate_mbps"]
    # ...and per-user latency degrades sublinearly (replicas spread load).
    assert results[12]["mean_makespan"] < 6 * results[1]["mean_makespan"]
    # At community scale (48 users) the fleet still moves more aggregate
    # traffic than at 12, and catalog load stays linear in users.
    assert results[48]["aggregate_mbps"] >= results[12]["aggregate_mbps"]
    assert results[48]["catalog_ops"] >= 3 * results[12]["catalog_ops"]
