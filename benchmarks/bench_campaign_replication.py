"""Verified, crash-resumable bulk replication at campaign scale.

The paper's challenge problem is ultimately about *trustworthy* bulk
movement: a climate archive mirrored across sites is worthless if
silent corruption rides along, and a multi-hour campaign that restarts
from file zero after a crash never finishes. This bench drives a
campaign of >= 10^4 files (the "entire model run" scale of Section 2)
through the journaled campaign engine with the full integrity pipeline
on, while an interactive tenant keeps issuing single-file requests —
and injects in-flight corruption windows, at-rest replica corruption,
and one mid-campaign engine crash.

Four runs:

- ``interactive_baseline`` — the interactive tenant alone
  (uncontended request latency to gate fairness against);
- ``clean_verify_off``     — the campaign with digest verification
  disabled (makespan floor);
- ``clean_verify_on``      — the same campaign with verification on
  (gates the verification overhead);
- ``faulted``              — verification on, corruption windows on the
  mirror's WAN path, at-rest corruption on sampled replicas, one
  ``rm_crash`` mid-campaign, interactive tenant running throughout.

Gates (the issue's acceptance criteria, asserted in-bench):

- every campaign file ends VERIFIED; zero corrupted payloads remain on
  the mirror's disk (undetected corruption == 0);
- at least 1% of transfers hit a corruption and were caught;
- exactly one crash and one resume; the resume re-transfers zero
  VERIFIED files (``verified_retransfers == 0``);
- digest verification costs <= 10% extra makespan over verify-off;
- the interactive tenant's p95 latency under the faulted campaign
  stays within 2x its uncontended baseline;
- the journal replays idempotently (journal + journal == journal).

Results land in ``BENCH_campaign_replication.json`` at the repo root.
Set ``REPRO_CAMPAIGN_FILES=600`` (or any multiple of 24) for the
reduced CI-smoke sweep; every gate except the absolute >= 10^4 file
floor binds at whatever scale runs.
"""

import json
import os
from pathlib import Path

from repro.campaign import CampaignJournal, ReplicationCampaign, plan_campaign
from repro.data.digest import marks_of
from repro.gridftp.protocol import GridFtpConfig
from repro.net import FaultSchedule, mbps
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once

MB = 2**20
SEED = 11
FILE_SIZE = 1 * MB
FILES_PER_YEAR = 24          # 2 datasets x 12 monthly files
MIRROR_DOWNLINK = mbps(622)
INTERACTIVE_PERIOD = 3.0
BASELINE_SAMPLES = 40
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign_replication.json"

FULL_SCALE_FLOOR = 10_000
CORRUPTION_GATE = 0.01       # >= 1% of transfers corrupted and caught
OVERHEAD_GATE = 0.10         # verification <= 10% extra makespan
P95_GATE = 2.0               # interactive p95 <= 2x uncontended


def _files_target():
    env_files = os.environ.get("REPRO_CAMPAIGN_FILES")
    return int(env_files) if env_files else FULL_SCALE_FLOOR + 8


def _build(verify):
    years = max(1, -(-_files_target() // FILES_PER_YEAR))
    # aging_rounds is raised well above the default: with hundreds of
    # bulk flows per server, the default bound (4 bypasses) collapses
    # the scheduler into seq-order FIFO and the interactive class waits
    # behind the whole flood. 64 keeps bulk starvation-bounded while
    # letting single-file tickets actually exercise their priority.
    tb = EsgTestbed(
        seed=SEED, years=years, with_tape=False,
        file_size_override=FILE_SIZE,
        scheduler=SchedulerConfig(per_server_cap=4,
                                  max_queue_depth=2048,
                                  aging_rounds=64))
    tb.warm_nws(60.0)
    manifest, replicas = plan_campaign(tb.replica_catalog)
    rm = tb.add_client(
        "mirror", downlink=MIRROR_DOWNLINK, latency=0.012,
        config=GridFtpConfig(parallelism=2, verify_checksum=verify))
    camp = ReplicationCampaign(tb.env, rm, manifest, replicas,
                               max_inflight=6, batch_size=32,
                               max_file_attempts=8, obs=tb.obs)
    return tb, rm, manifest, camp


def _interactive(tb, latencies, stop):
    """Single-file requests on the desktop RM until ``stop()``."""
    ds = tb.dataset_ids()[0]
    names = [str(f["logical_name"]) for f in tb.datasets[ds]][:12]
    i = 0
    while not stop():
        t0 = tb.env.now
        ticket = tb.request_manager.submit([(ds, names[i % len(names)])])
        yield ticket.done
        if all(fr.state.value == "done" for fr in ticket.files):
            latencies.append(tb.env.now - t0)
        i += 1
        yield tb.env.timeout(INTERACTIVE_PERIOD)


def _p95(latencies):
    if not latencies:
        return None
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _estimated_makespan(manifest):
    return manifest.total_bytes * 8 / MIRROR_DOWNLINK


def _sweep_undetected(rm, manifest):
    """Corrupted payloads still sitting on the mirror's disk."""
    bad = 0
    for entry in manifest:
        if (rm.dest_fs.exists(entry.logical_file)
                and marks_of(rm.dest_fs.stat(entry.logical_file))):
            bad += 1
    return bad


def _journal_replays_idempotently(journal):
    once = {f: (e.state, e.delivered_bytes)
            for f, e in journal.replay().items()}
    twice = {f: (e.state, e.delivered_bytes)
             for f, e in journal.replay(
                 journal.records + journal.records).items()}
    round_trip = CampaignJournal.parse(journal.serialize())
    return once == twice and round_trip.states() == journal.states()


def _run_interactive_baseline():
    tb, _rm, _manifest, _camp = _build(verify=False)
    latencies = []
    budget = BASELINE_SAMPLES

    def stop():
        return len(latencies) >= budget

    p = tb.env.process(_interactive(tb, latencies, stop))
    tb.env.run(until=p)
    return {"samples": len(latencies),
            "p95_s": round(_p95(latencies), 3),
            "mean_s": round(sum(latencies) / len(latencies), 3)}


def _run_campaign(verify, faults=False, interactive=False):
    tb, rm, manifest, camp = _build(verify=verify)
    m_est = _estimated_makespan(manifest)
    if faults:
        # In-flight corruption: three windows on the mirror's WAN path,
        # together ~6% of the estimated makespan (amplified by retries,
        # comfortably above the 1% caught-corruption gate).
        window = max(1.0, 0.02 * m_est)
        sched = FaultSchedule()
        for frac in (0.15, 0.50, 0.65):
            sched.corrupt_transfer("wan-mirror:rev", frac * m_est, window)
        # At-rest corruption on one replica of every 200th file (another
        # clean replica always remains, so the campaign can heal).
        for i, entry in enumerate(manifest.entries):
            if i % 200 == 0:
                locs = camp.replicas[(entry.collection,
                                      entry.logical_file)]
                if len(locs) >= 2:
                    sched.corrupt_replica(locs[0].hostname,
                                          entry.logical_file,
                                          1.0, 1.0)
        # One engine crash mid-campaign.
        sched.rm_crash("campaign", 0.30 * m_est,
                       max(5.0, 0.05 * m_est))
        tb.fault_injector(crashables={"campaign": camp}).install(sched)

    latencies = []
    if interactive:
        tb.env.process(_interactive(tb, latencies,
                                    lambda: camp.done.triggered))
    t0 = tb.env.now
    camp.start()
    p = tb.env.process(camp.wait())
    tb.env.run(until=p)
    report = p.value
    row = {
        "files": report["files"],
        "gib": round(report["bytes_total"] / 2**30, 2),
        "makespan_s": round(report["makespan"], 1),
        "states": report["states"],
        "verify_seconds": round(report["verify_seconds"], 1),
        "corruptions_caught": report["corruptions_caught"],
        "verified_retransfers": report["verified_retransfers"],
        "bytes_retransferred_mib": round(
            report["bytes_retransferred"] / MB, 1),
        "crashes": report["crashes"],
        "resumes": report["resumes"],
        "journal_records": report["journal_records"],
        "undetected_corruptions": _sweep_undetected(rm, manifest),
        "journal_idempotent": _journal_replays_idempotently(camp.journal),
        "wall_start": t0,
    }
    if interactive:
        row["interactive_samples"] = len(latencies)
        row["interactive_p95_s"] = round(_p95(latencies), 3)
    return row


def test_campaign_replication(benchmark, show):
    def experiment():
        return {
            "interactive_baseline": _run_interactive_baseline(),
            "clean_verify_off": _run_campaign(verify=False),
            "clean_verify_on": _run_campaign(verify=True),
            "faulted": _run_campaign(verify=True, faults=True,
                                     interactive=True),
        }

    results = run_once(benchmark, experiment)
    base = results["interactive_baseline"]
    off = results["clean_verify_off"]
    on = results["clean_verify_on"]
    faulted = results["faulted"]
    files = faulted["files"]
    overhead = (on["makespan_s"] - off["makespan_s"]) / off["makespan_s"]
    p95_ratio = faulted["interactive_p95_s"] / base["p95_s"]

    show()
    show(f"=== Verified bulk replication campaign ({files} files, "
         f"{faulted['gib']} GiB) ===")
    show(f"  {'run':>18} {'makespan(s)':>12} {'verify(s)':>10} "
         f"{'caught':>7} {'states':>24}")
    for label in ("clean_verify_off", "clean_verify_on", "faulted"):
        r = results[label]
        show(f"  {label:>18} {r['makespan_s']:>12.1f} "
             f"{r['verify_seconds']:>10.1f} "
             f"{r['corruptions_caught']:>7} {str(r['states']):>24}")
    show(f"  verification overhead: {overhead * 100:.1f}% "
         f"(gate <= {OVERHEAD_GATE * 100:.0f}%)")
    show(f"  interactive p95: {faulted['interactive_p95_s']:.3f}s vs "
         f"{base['p95_s']:.3f}s uncontended "
         f"({p95_ratio:.2f}x, gate <= {P95_GATE:.0f}x)")
    show(f"  faulted: crashes={faulted['crashes']} "
         f"resumes={faulted['resumes']} "
         f"verified_retransfers={faulted['verified_retransfers']} "
         f"retransferred={faulted['bytes_retransferred_mib']:.0f} MiB")
    show(f"  undetected corruptions: "
         f"{faulted['undetected_corruptions']} (gate == 0)")

    OUT_PATH.write_text(json.dumps({
        "workload": {
            "seed": SEED, "files": files,
            "file_size_mib": FILE_SIZE // MB,
            "mirror_downlink_mbps": 622,
            "per_server_cap": 4,
            "interactive_period_s": INTERACTIVE_PERIOD,
        },
        "gates": {
            "corruption_fraction": CORRUPTION_GATE,
            "verify_overhead": OVERHEAD_GATE,
            "interactive_p95_ratio": P95_GATE,
        },
        "results": results,
        "derived": {
            "verify_overhead": round(overhead, 4),
            "interactive_p95_ratio": round(p95_ratio, 3),
        },
    }, indent=2) + "\n")
    record(benchmark, results=results, verify_overhead=overhead,
           p95_ratio=p95_ratio)

    # -- gates ---------------------------------------------------------------
    if not os.environ.get("REPRO_CAMPAIGN_FILES"):
        assert files >= FULL_SCALE_FLOOR
    for label in ("clean_verify_off", "clean_verify_on", "faulted"):
        r = results[label]
        assert r["states"] == {"verified": files}, (
            f"{label}: not every file verified: {r['states']}")
        assert r["undetected_corruptions"] == 0, (
            f"{label}: corrupted payload left on the mirror disk")
        assert r["journal_idempotent"], f"{label}: journal replay drifted"
    assert on["verify_seconds"] > 0.0
    assert overhead <= OVERHEAD_GATE, (
        f"verification overhead {overhead * 100:.1f}% over gate")
    assert faulted["corruptions_caught"] >= CORRUPTION_GATE * files, (
        f"only {faulted['corruptions_caught']} corruptions caught "
        f"({files} files): fault windows too small to exercise the "
        f"pipeline")
    assert faulted["crashes"] == 1 and faulted["resumes"] == 1
    assert faulted["verified_retransfers"] == 0, (
        "resume re-transferred a VERIFIED file")
    assert p95_ratio <= P95_GATE, (
        f"interactive p95 degraded {p95_ratio:.2f}x under the campaign")
