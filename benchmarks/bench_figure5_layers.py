"""Figure 5 — the Data Grid reference architecture layers.

The figure's claim is structural: fabric / connectivity / resource /
collective / application, each layer building only on those below. The
bench registers the full prototype in the layer registry, verifies the
no-upward-dependency invariant across the real component graph, and
resolves a request down through the layers.
"""

from repro.esg import LAYERS, EarthSystemGrid

from benchmarks.conftest import record, run_once


def test_figure5_layered_architecture(benchmark, show):
    def run():
        esg = EarthSystemGrid.demo_testbed(seed=9, materialize=False)
        arch = esg.layers
        violations = arch.check_dependencies()
        return esg, arch, violations

    esg, arch, violations = run_once(benchmark, run)
    show()
    show("=== Figure 5: layer inventory ===")
    for layer in LAYERS:
        show(f"  {layer:<13} {', '.join(arch.names(layer))}")
    show(f"  dependency edges checked: {len(arch.dependencies)}; "
         f"violations: {len(violations)}")
    record(benchmark,
           components=sum(len(v) for v in arch.components.values()),
           edges=len(arch.dependencies),
           violations=len(violations))

    assert violations == []
    # The figure's placements hold in the implementation:
    assert arch.layer_of("gridftp") == "resource"
    assert arch.layer_of("mds") == "resource"
    assert arch.layer_of("replica-management") == "collective"
    assert arch.layer_of("replica-selection") == "collective"
    assert arch.layer_of("request-manager") == "collective"
    assert arch.layer_of("metadata-catalog") == "fabric"
    assert arch.layer_of("gsi") == "connectivity"
    assert arch.layer_of("cdat") == "application"
    # Every layer is populated.
    for layer in LAYERS:
        assert arch.names(layer)
