"""Infrastructure bench — simulator throughput (not a paper figure).

Regression guard for the two hot paths everything else stands on: the
event kernel (schedule/fire rate) and the fluid allocator
(reallocations per second at realistic flow counts). The guides' advice
("no optimization without measuring") applied to our own substrate: if
these numbers collapse, every experiment above gets slower.
"""

from repro.net import FluidNetwork, Topology, mbps
from repro.sim import Environment


def test_kernel_event_throughput(benchmark):
    """Fire 50k timeout events through the queue."""
    import time

    def run():
        env = Environment()
        count = [0]

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)
                count[0] += 1

        for _ in range(10):
            env.process(ticker(env, 5000))
        t0 = time.perf_counter()
        env.run()
        wall = time.perf_counter() - t0
        return count[0], env.kernel_stats, wall

    total, stats, wall = benchmark(run)
    assert total == 50_000
    # The kernel's own accounting must agree with the workload: every
    # timeout plus the 10 process bootstraps, nothing cancelled, and no
    # compaction sweeps on a cancel-free run.
    assert stats["queue"] == "calendar"
    assert stats["events_dispatched"] == stats["events_scheduled"]
    assert stats["events_dispatched"] >= 50_000
    assert stats["events_cancelled"] == 0
    assert stats["queue_compactions"] == 0
    # events/sec guard: pure timer dispatch must stay well above the
    # rate everything downstream was sized against.
    assert stats["events_dispatched"] / wall > 100_000, (
        f"kernel too slow: {stats['events_dispatched'] / wall:.0f} ev/s")


def test_allocator_throughput(benchmark):
    """Full reallocation of a 64-flow, 24-link network, 500 times."""
    env = Environment()
    topo = Topology()
    for i in range(8):
        topo.duplex_link(f"h{i}", "core", mbps(1000), 0.001)
        topo.duplex_link(f"g{i}", "edge", mbps(1000), 0.001)
    topo.duplex_link("core", "edge", mbps(2500), 0.005)
    net = FluidNetwork(env, topo)
    for i in range(64):
        net.transfer(f"h{i % 8}", f"g{(i * 3) % 8}", 1e15,
                     cap=mbps(50 + i))

    def run():
        for _ in range(500):
            net.reallocate()
        return net.reallocations

    benchmark(run)
    # Feasibility still holds after the hammering.
    for link in topo.links.values():
        used = sum(f.rate for f in net.flows_on(link))
        assert used <= link.capacity * (1 + 1e-6)


def test_allocator_reallocations_per_second(benchmark):
    """Guard: incremental reallocation rate under realistic cap churn.

    12 disjoint site components × 16 flows, every flow's cap stepping
    on its own ~15 ms clock (the 32-stream slow-start pattern). The
    component-scoped allocator must sustain well north of a thousand
    reallocations per wall-second at this scale — if this collapses,
    every experiment above gets slower.
    """
    env = Environment()
    topo = Topology()
    n_comp, per_comp = 12, 16
    for c in range(n_comp):
        for h in range(4):
            topo.duplex_link(f"c{c}h{h}", f"c{c}core", mbps(1000), 0.001)
    net = FluidNetwork(env, topo)
    flows = []
    for c in range(n_comp):
        for i in range(per_comp):
            flows.append(net.transfer(f"c{c}h{i % 4}",
                                      f"c{c}h{(i + 1) % 4}", 1e15,
                                      cap=mbps(20 + i)))

    def churner(env, flow, period, lo, hi):
        k = 0
        while True:
            yield env.timeout(period)
            k += 1
            flow.set_cap(mbps(lo + (k % 2) * (hi - lo)))

    for i, f in enumerate(flows):
        env.process(churner(env, f, 0.0146 + 1e-4 * (i % 7),
                            20 + i % 16, 120 + i % 16))

    def run():
        env.run(until=env.now + 20.0)
        return net.reallocations

    import time
    t0 = time.perf_counter()
    total = benchmark(run)
    wall = time.perf_counter() - t0
    assert total / wall > 1000, (
        f"allocator too slow: {total / wall:.0f} reallocations/s")


def test_recorder_analysis_throughput(benchmark):
    """Windowed-peak analysis over a 100k-breakpoint series."""
    import numpy as np

    from repro.net import RateSeries

    rng = np.random.default_rng(1)
    n = 100_000
    times = np.cumsum(rng.uniform(0.01, 0.2, n))
    rates = rng.uniform(0, mbps(500), n)
    series = RateSeries(times, rates, float(times[-1]) + 1.0)

    def run():
        return (series.peak_windowed(0.1), series.peak_windowed(5.0),
                series.average())

    peak01, peak5, avg = benchmark(run)
    assert peak01 >= peak5 >= avg
