"""Infrastructure bench — simulator throughput (not a paper figure).

Regression guard for the two hot paths everything else stands on: the
event kernel (schedule/fire rate) and the fluid allocator
(reallocations per second at realistic flow counts). The guides' advice
("no optimization without measuring") applied to our own substrate: if
these numbers collapse, every experiment above gets slower.
"""

from repro.net import FluidNetwork, Topology, mbps
from repro.sim import Environment


def test_kernel_event_throughput(benchmark):
    """Fire 50k timeout events through the queue."""
    def run():
        env = Environment()
        count = [0]

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)
                count[0] += 1

        for _ in range(10):
            env.process(ticker(env, 5000))
        env.run()
        return count[0]

    total = benchmark(run)
    assert total == 50_000


def test_allocator_throughput(benchmark):
    """Reallocate a 64-flow, 24-link network 500 times."""
    env = Environment()
    topo = Topology()
    for i in range(8):
        topo.duplex_link(f"h{i}", "core", mbps(1000), 0.001)
        topo.duplex_link(f"g{i}", "edge", mbps(1000), 0.001)
    topo.duplex_link("core", "edge", mbps(2500), 0.005)
    net = FluidNetwork(env, topo)
    for i in range(64):
        net.transfer(f"h{i % 8}", f"g{(i * 3) % 8}", 1e15,
                     cap=mbps(50 + i))

    def run():
        for _ in range(500):
            net._assign_rates()
        return net.reallocations

    benchmark(run)
    # Feasibility still holds after the hammering.
    for link in topo.links.values():
        used = sum(f.rate for f in net.flows_on(link))
        assert used <= link.capacity * (1 + 1e-6)


def test_recorder_analysis_throughput(benchmark):
    """Windowed-peak analysis over a 100k-breakpoint series."""
    import numpy as np

    from repro.net import RateSeries

    rng = np.random.default_rng(1)
    n = 100_000
    times = np.cumsum(rng.uniform(0.01, 0.2, n))
    rates = rng.uniform(0, mbps(500), n)
    series = RateSeries(times, rates, float(times[-1]) + 1.0)

    def run():
        return (series.peak_windowed(0.1), series.peak_windowed(5.0),
                series.average())

    peak01, peak5, avg = benchmark(run)
    assert peak01 >= peak5 >= avg
