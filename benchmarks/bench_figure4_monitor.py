"""Figure 4 — dynamic monitoring of concurrent file transfers.

The screenshot shows per-file progress bars, the replica locations
chosen "based on the bandwidth and latency measurements provided by
NWS", and initiation messages, updating every few seconds, plus the
total bytes across all requests. The bench runs a 10-file concurrent
request drawn from several sites and validates the monitor's panes and
the multi-site concurrency claim ("the ability to transfer multiple
files from various sites concurrently can enhance the aggregate
transfer rate").
"""

from repro.rm import TransferMonitor
from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once


def test_figure4_transfer_monitor(benchmark, show):
    def run():
        tb = EsgTestbed(seed=17, file_size_override=24 * 2**20)
        tb.warm_nws(90.0)
        ds = tb.dataset_ids()[0]
        names = tb.metadata_catalog.resolve(ds, "tas")[:10]
        ticket = tb.request_manager.submit([(ds, n) for n in names])
        monitor = TransferMonitor(tb.env, tb.request_manager, ticket,
                                  period=3.0)
        tb.env.process(monitor.run())
        # Snapshot mid-flight for the rendering.
        tb.env.run(until=tb.env.now + 12.0)
        mid_render = monitor.render()
        tb.env.run(until=ticket.done)
        return tb, ticket, monitor, mid_render

    tb, ticket, monitor, mid_render = run_once(benchmark, run)
    show()
    show("=== Figure 4 (mid-transfer snapshot) ===")
    show(mid_render)
    sites = {f.chosen_location for f in ticket.files}
    rates = monitor.aggregate_rate_series()
    record(benchmark, files=len(ticket.files),
           distinct_source_sites=len(sites),
           snapshots=len(monitor.snapshots),
           peak_aggregate_mbps=round(
               max(r for _, r in rates) * 8 / 1e6, 1))

    assert ticket.complete and not ticket.failed_files
    # Concurrency from multiple sites (the figure's middle pane).
    assert len(sites) >= 3
    # The monitor polled "every few seconds" and saw partial progress.
    assert len(monitor.snapshots) >= 4
    partial = [b for _, b in monitor.snapshots
               if 0 < b < ticket.total_bytes]
    assert partial
    assert "TOTAL transferred" in mid_render
