"""Ablation A8 — interrupt coalescing and jumbo frames vs CPU ceiling.

§7: "the CPU was running at near 100% capacity. This high CPU usage is
common with Gigabit Ethernet and is caused by the numerous interrupts
that must be serviced. Interrupt coalescing ... can help reduce this
problem. ... A second way of reducing the CPU load is by using Jumbo
Frames. ... However, one of the routers did not support jumbo frames,
so we were unable to evaluate the impact of this mechanism."

The bench evaluates what SC'2000 could not: throughput of one GbE host
pair under (no coalescing / coalescing / coalescing+jumbo).
"""

from repro.hosts import CpuModel, DiskArray, DiskSpec, Host, HostSpec
from repro.net import FluidNetwork, GB, Topology, gbps, to_mbps

from benchmarks.conftest import record, run_once


def host_pair_rate(cpu: CpuModel) -> float:
    topo = Topology()
    spec = HostSpec(nic_rate=gbps(1), bus_rate=None, cpu=cpu,
                    disk=DiskArray(DiskSpec(rate=60 * 2**20), count=4))
    a = Host(topo, "a", spec=spec)
    b = Host(topo, "b", spec=spec)
    a.uplink("r")
    b.uplink("r")
    from repro.sim import Environment
    env = Environment()
    net = FluidNetwork(env, topo)
    flow = net.transfer(a.app_node, b.app_node, 1 * GB)
    net.reallocate()
    rate = flow.rate
    env.run()
    return rate


def test_a8_interrupt_coalescing_and_jumbo(benchmark, show):
    base = CpuModel(copy_cost_per_byte=6e-9, interrupt_cost=25e-6,
                    coalesce=1)

    def run():
        return {
            "no coalescing": host_pair_rate(base),
            "coalescing x8": host_pair_rate(base.with_coalescing(8)),
            "coalescing x8 + jumbo": host_pair_rate(
                base.with_coalescing(8).with_jumbo_frames()),
        }

    rates = run_once(benchmark, run)
    show()
    show("=== A8: GbE host pair, CPU-bound throughput ===")
    for name, r in rates.items():
        util = CpuModel().utilization(r)
        show(f"  {name:<22} {to_mbps(r):7.1f} Mb/s "
             + "#" * int(to_mbps(r) / 25))
    record(benchmark, rates_mbps={k: round(to_mbps(v), 1)
                                  for k, v in rates.items()})

    # The §7 regime: no coalescing → far below line rate.
    assert rates["no coalescing"] < gbps(0.5)
    # Coalescing relieves the interrupt load substantially...
    assert rates["coalescing x8"] > 2 * rates["no coalescing"]
    # ...and jumbo frames push essentially to line rate (the evaluation
    # the paper could not run).
    assert rates["coalescing x8 + jumbo"] > rates["coalescing x8"]
    assert rates["coalescing x8 + jumbo"] >= gbps(0.95)


def test_a8_cpu_saturation_at_peak(benchmark, show):
    """At its achieved rate, the sending host's CPU sits at ~100%."""
    def run():
        cpu = CpuModel(copy_cost_per_byte=6e-9, interrupt_cost=25e-6,
                       coalesce=8)
        rate = host_pair_rate(cpu)
        return rate, cpu.utilization(rate)

    rate, util = run_once(benchmark, run)
    show()
    show(f"=== A8b: at {to_mbps(rate):.0f} Mb/s the CPU runs at "
         f"{util * 100:.0f}% ===")
    record(benchmark, rate_mbps=round(to_mbps(rate), 1),
           cpu_utilization=round(util, 3))
    assert util >= 0.99
