"""Ablation A7 — HRM staging: shared reads and transfer overlap.

§4: the HRM "stages files from the MSS to its local disk cache. After
this action is complete, the RM uses GridFTP to move the file." The
bench measures (a) what tape staging costs relative to the WAN hop,
(b) the cache paying off on re-reads, and (c) request deduplication
when many clients want the same cold file.
"""

from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once

SIZE = 200 * 2**20


def test_a7_hrm_staging_behaviour(benchmark, show):
    def run():
        tb = EsgTestbed(seed=29, file_size_override=SIZE)
        tb.warm_nws(90.0)
        ds = tb.dataset_ids()[0]
        name = tb.metadata_catalog.resolve(ds, "tas")[0]
        # Leave only the tape replica.
        for loc in tb.replica_catalog.locations(ds):
            if loc.name != "lbnl-pdsf" and name in loc.files:
                tb.replica_catalog.remove_file_from_location(
                    ds, loc.name, name)
        pdsf = tb.sites["lbnl-pdsf"]
        # Cold fetch: tape + WAN.
        t0 = tb.env.now
        ticket = tb.request_manager.submit([(ds, name)])
        tb.env.run(until=ticket.done)
        cold = tb.env.now - t0
        stage_time = pdsf.hrm.completed[0].stage_time
        # Warm fetch: cache hit, WAN only.
        t0 = tb.env.now
        ticket2 = tb.request_manager.submit([(ds, name)])
        tb.env.run(until=ticket2.done)
        warm = tb.env.now - t0
        # Dedup: three concurrent requests for one cold file.
        name2 = tb.metadata_catalog.resolve(ds, "tas")[1]
        for loc in tb.replica_catalog.locations(ds):
            if loc.name != "lbnl-pdsf" and name2 in loc.files:
                tb.replica_catalog.remove_file_from_location(
                    ds, loc.name, name2)
        stages_before = pdsf.hrm.mss.stage_count
        tickets = [tb.request_manager.submit([(ds, name2)])
                   for _ in range(3)]
        for t in tickets:
            tb.env.run(until=t.done)
        stages_for_concurrent = pdsf.hrm.mss.stage_count - stages_before
        return cold, warm, stage_time, stages_for_concurrent

    cold, warm, stage_time, dedup_stages = run_once(benchmark, run)
    show()
    show(f"=== A7: HRM staging ({SIZE // 2**20} MiB file on tape) ===")
    show(f"  cold fetch (tape stage + WAN): {cold:7.1f} s "
         f"(staging alone: {stage_time:.1f} s)")
    show(f"  warm fetch (cache hit + WAN) : {warm:7.1f} s")
    show(f"  3 concurrent cold requests   : {dedup_stages} tape read(s)")
    record(benchmark, cold_s=round(cold, 1), warm_s=round(warm, 1),
           stage_s=round(stage_time, 1), dedup_stages=dedup_stages)

    # Staging dominates the cold fetch; the cache removes it entirely.
    assert stage_time > 10.0
    assert cold > warm + stage_time * 0.8
    # One tape read serves all concurrent requesters.
    assert dedup_stages == 1
