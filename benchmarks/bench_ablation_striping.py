"""Ablation A3 — striping across hosts scales aggregate bandwidth.

§6.1: "Striped data transfer that increases parallelism by allowing data
to be striped across multiple hosts." Per-host ceilings (CPU interrupt
load, NIC) bound a single server; striping multiplies them until the
shared WAN binds. The bench sweeps stripe counts on a SciNET-like path.
"""

from repro.gridftp import GridFtpServer, StripedServer
from repro.gsi.credentials import Identity
from repro.hosts import CpuModel, DiskArray, DiskSpec, Host, HostSpec
from repro.net import GB, gbps, to_mbps
from repro.storage import FileSystem

from tests.gridftp.conftest import Grid

from benchmarks.conftest import record, run_once

SIZE = 1 * GB


def striped_rate(n_stripes: int) -> float:
    grid = Grid(seed=23, wan=gbps(2.5), latency=0.007)
    # Strong receiver so the *source side* is what we sweep.
    grid.client_host.spec.cpu = CpuModel(copy_cost_per_byte=5e-10,
                                         interrupt_cost=1e-6)
    grid.client_host.set_coalescing(32)
    for l in ("nic:in", "uplink:in", "uplink:out", "disk:in"):
        grid.client_host.links[l].restore(gbps(5))
        grid.client_host.links[l].nominal_capacity = gbps(5)
    # Era source workstations: CPU-capped near 200 Mb/s each.
    spec = HostSpec(nic_rate=gbps(1), bus_rate=None,
                    cpu=CpuModel(copy_cost_per_byte=3.3e-8,
                                 interrupt_cost=25e-6, coalesce=2),
                    disk=DiskArray(DiskSpec(rate=30 * 2**20), count=4))
    backends = []
    for i in range(n_stripes):
        host = Host(grid.topo, f"stripe{i}", site="lbnl", spec=spec)
        host.uplink("r-lbnl")
        hostname = f"stripe{i}.lbl.gov"
        grid.ns.register(hostname, host.node)
        fs = FileSystem(grid.env, f"s{i}-fs")
        server = GridFtpServer(grid.env, host, fs, gsi=grid.gsi,
                               credential_chain=grid.server.credential_chain,
                               hostname=hostname)
        grid.registry[hostname] = server
        backends.append(server)
    striped = StripedServer("striped.lbl.gov", backends)
    striped.partition_file("big.dat", SIZE)

    def main():
        t0 = grid.env.now
        result = yield from striped.striped_get(
            grid.client, grid.client_host, "big.dat", grid.client_fs)
        return result.total_bytes / (grid.env.now - t0)

    return grid.run_process(main())


def test_a3_striping_sweep(benchmark, show):
    def run():
        return {n: striped_rate(n) for n in (1, 2, 4, 8)}

    rates = run_once(benchmark, run)
    show()
    show("=== A3: stripes vs aggregate bandwidth ===")
    for n, r in rates.items():
        show(f"  {n} stripe(s): {to_mbps(r):7.1f} Mb/s "
             + "#" * int(to_mbps(r) / 40))
    record(benchmark, rates_mbps={n: round(to_mbps(r), 1)
                                  for n, r in rates.items()})

    # Near-linear early scaling past the per-host ceiling...
    assert rates[2] > 1.7 * rates[1]
    assert rates[4] > 3.0 * rates[1]
    # ...total never exceeding the per-host ceiling × stripes or the WAN.
    per_host_ceiling = rates[1] * 1.1
    for n, r in rates.items():
        assert r <= per_host_ceiling * n
    assert rates[8] <= gbps(2.5)
