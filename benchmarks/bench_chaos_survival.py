"""Chaos survival — randomized fault schedules against the ESG testbed.

The Figure 8 run survived a power failure, DNS problems, and backbone
faults; this bench generalizes that to the *control plane*. Each seed
draws a randomized schedule (link outages, a GridFTP server crash,
MDS and replica-catalog outage windows, an HRM failure, a degraded
backbone link) from a named sim RNG stream and slams it into a
multi-file request running under the hardened Request Manager pipeline
(retry-with-backoff, circuit breakers, deadlines, degraded-mode
ranking).

Invariant under test: **every submitted file reaches DONE, FAILED (with
a typed FailureClass), or CANCELLED before its deadline — no file
thread left pending when the simulation drains.** Outcomes are
deterministic per seed (jitter comes from named RNG streams).

``REPRO_CHAOS_SEEDS=N`` limits the run to the first N seeds (CI smoke).
"""

import os

import pytest

from repro.net.faults import FaultSchedule
from repro.rm.request import FileState
from repro.rm.resilience import ResiliencePolicy, RetryPolicy
from repro.scenarios.esg import EsgTestbed

from benchmarks.conftest import record, run_once

SEEDS = [11, 23, 37, 41, 53]
_limit = os.environ.get("REPRO_CHAOS_SEEDS")
if _limit:
    SEEDS = SEEDS[:max(1, int(_limit))]

FILE_DEADLINE = 450.0   # seconds from submit, per file
HORIZON = 1800.0        # run the sim this far past submit
FILE_SIZE = 48 * 2**20  # bytes per catalog file

_TERMINAL = (FileState.DONE, FileState.FAILED, FileState.CANCELLED)


def random_schedule(tb: EsgTestbed) -> FaultSchedule:
    """Draw a randomized fault schedule from the testbed's RNG.

    The draws come from the named stream ``chaos.schedule``, so the
    schedule is a pure function of the testbed seed and never perturbs
    the other simulation streams (NWS probes, loss processes, jitter).
    """
    rng = tb.env.rng.stream("chaos.schedule")
    sites = sorted(tb.sites)
    hosts = sorted(tb.registry)

    def u(lo: float, hi: float) -> float:
        return float(rng.uniform(lo, hi))

    def pick(seq):
        return seq[int(rng.integers(len(seq)))]

    sched = FaultSchedule()
    for _ in range(2):
        site = pick(sites)
        sched.link_outage(f"wan-{site}:fwd", u(5.0, 300.0), u(60.0, 300.0),
                          description=f"{site} uplink outage")
    if rng.random() < 0.5:
        # The user's own downlink goes dark: everything stalls; restart
        # markers and deadlines decide which files still make it.
        sched.link_outage("wan-client:rev", u(20.0, 200.0), u(120.0, 420.0),
                          description="client downlink outage")
    sched.degrade(f"wan-{pick(sites)}:fwd", u(5.0, 300.0), u(120.0, 400.0),
                  fraction=u(0.05, 0.4), description="backbone degraded")
    for _ in range(2):
        sched.server_outage(pick(hosts), u(5.0, 300.0), u(60.0, 300.0),
                            description="gridftp daemon crash")
    # Control-plane outages pinned near submit time, when the initial
    # lookup/rank burst happens — that is what degraded ranking and
    # retry rounds exist for.
    sched.mds_outage(0.0, u(60.0, 240.0), mode="fail",
                     description="MDS/GIIS outage")
    sched.catalog_outage(0.0, u(30.0, 90.0),
                         mode="hang" if rng.random() < 0.5 else "fail",
                         description="replica catalog outage")
    sched.hrm_outage("hrm-pdsf", u(5.0, 400.0), u(60.0, 300.0),
                     description="tape drive failure")
    return sched


def run_chaos(seed: int):
    """One chaos run; returns (testbed, ticket, schedule, injector)."""
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_rounds=4, base_delay=15.0, multiplier=2.0,
                          max_delay=60.0, jitter=0.25),
        breaker_failure_threshold=2, breaker_reset_timeout=120.0,
        file_deadline=FILE_DEADLINE)
    tb = EsgTestbed(seed=seed, years=1, with_tape=True,
                    file_size_override=FILE_SIZE, resilience=resilience)
    tb.warm_nws(120.0)
    sched = random_schedule(tb)
    inj = tb.fault_injector()
    inj.install(sched)
    requests = []
    for ds in tb.dataset_ids():
        requests += [(ds, str(f["logical_name"]))
                     for f in tb.datasets[ds][:6]]
    ticket = tb.request_manager.submit(requests)
    tb.env.run(until=tb.env.now + HORIZON)
    return tb, ticket, sched, inj


def fingerprint(ticket):
    """Deterministic per-file outcome tuple (for the determinism check)."""
    return tuple(
        (f.logical_file, f.state.value,
         f.failure_class.value if f.failure_class is not None else None,
         round(f.finished_at, 6) if f.finished_at is not None else None,
         round(f.bytes_done, 3), f.replica_switches, f.restarts,
         f.breaker_skips, f.degraded_rankings)
        for f in ticket.files)


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_survival(benchmark, show, seed):
    tb, ticket, sched, inj = run_once(benchmark, lambda: run_chaos(seed))

    states = {}
    classes = {}
    for f in ticket.files:
        states[f.state.value] = states.get(f.state.value, 0) + 1
        if f.failure_class is not None:
            key = f.failure_class.value
            classes[key] = classes.get(key, 0) + 1
    board = ticket.breakers
    show()
    show(f"=== chaos seed {seed}: {len(sched)} faults, "
         f"{len(ticket.files)} files ===")
    for t, action, what in inj.log:
        show(f"  {t:7.1f}s {action}: {what}")
    show(f"  states {states}; failure classes {classes or '{}'}; "
         f"breaker trips {board.total_trips}, skips {board.total_skips}; "
         f"degraded rankings "
         f"{sum(f.degraded_rankings for f in ticket.files)}")
    record(benchmark, seed=seed, states=states, failure_classes=classes,
           breaker_trips=board.total_trips, breaker_skips=board.total_skips)

    # The survival contract: every file terminal, classified, on time.
    assert ticket.done.triggered and ticket.complete
    for f in ticket.files:
        assert f.state in _TERMINAL, \
            f"{f.logical_file} left {f.state.value}"
        assert f.finished_at is not None
        if f.deadline_at is not None:
            assert f.finished_at <= f.deadline_at + 1e-6, \
                f"{f.logical_file} finalized after its deadline"
        if f.state is FileState.FAILED:
            assert f.failure_class is not None, \
                f"{f.logical_file} failed unclassified: {f.error}"


def test_chaos_outcomes_deterministic(show):
    """Identical seed → identical per-file outcomes, to the microsecond."""
    _, first, _, _ = run_chaos(SEEDS[0])
    _, second, _, _ = run_chaos(SEEDS[0])
    assert fingerprint(first) == fingerprint(second)
    show(f"\n  seed {SEEDS[0]} reproduced "
         f"{len(fingerprint(first))} file outcomes exactly")
