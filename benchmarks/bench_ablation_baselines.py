"""Ablation A6 — GridFTP vs DODS-style HTTP vs the layered gateway.

Quantifies the paper's qualitative claims:

- §8 on DODS: "not well-suited to HPC applications or very large data
  movement over high-bandwidth wide-area networks" (one TCP stream,
  default buffers);
- §6.1 on the gateway: "performance suffered due to costly translations
  between the layered client and storage system-specific client
  libraries and protocols";
- and the complementary strength of DODS: server-side subsetting makes
  *small extractions* cheap, which is why ESG-II planned to adopt it.
"""

from repro.baselines import DodsClient, DodsServer, GatewayClient, \
    StorageAdapter
from repro.data import ClimateModelRun, GridSpec
from repro.gridftp import GridFtpConfig
from repro.net import MB, mbps, to_mbps

from tests.gridftp.conftest import Grid

from benchmarks.conftest import record, run_once

BULK = 256 * MB


def build_world():
    grid = Grid(seed=41, wan=mbps(622), latency=0.025)
    grid.server_fs.create("bulk.dat", BULK)
    dods_server = DodsServer(grid.env, grid.server_host, grid.server_fs,
                             "srv.lbl.gov")
    dods = DodsClient(grid.env, grid.transport,
                      {"srv.lbl.gov": dods_server})
    gateway = GatewayClient(grid.env, grid.transport)
    gateway.register_adapter("srv.lbl.gov",
                             StorageAdapter("hpss", block_bytes=4 * MB,
                                            translate_cost=0.03))
    return grid, dods, gateway


def test_a6_bulk_transfer_comparison(benchmark, show):
    def run():
        results = {}
        # GridFTP: 4 streams, negotiated buffers.
        grid, dods, gateway = build_world()
        cfg = GridFtpConfig(parallelism=4, buffer_bytes=2 * MB)

        def gridftp_main():
            session = yield from grid.client.connect(
                grid.client_host, "srv.lbl.gov", cfg)
            t0 = grid.env.now
            yield from session.get("bulk.dat", grid.client_fs,
                                   grid.client_host, config=cfg)
            return BULK / (grid.env.now - t0)

        results["gridftp"] = grid.run_process(gridftp_main())

        grid, dods, gateway = build_world()

        def dods_main():
            nbytes, secs, _ = yield from dods.open_url(
                grid.client_host, "srv.lbl.gov", "bulk.dat",
                grid.client_fs)
            return nbytes / secs

        results["dods"] = grid.run_process(dods_main())

        grid, dods, gateway = build_world()

        def gateway_main():
            nbytes, secs = yield from gateway.get(
                grid.client_host, grid.server_host, "srv.lbl.gov",
                grid.server_fs, "bulk.dat", grid.client_fs)
            return nbytes / secs

        results["gateway"] = grid.run_process(gateway_main())
        return results

    rates = run_once(benchmark, run)
    show()
    show(f"=== A6: {BULK // MB} MiB bulk WAN transfer (50 ms RTT) ===")
    for name, r in sorted(rates.items(), key=lambda kv: -kv[1]):
        show(f"  {name:<8} {to_mbps(r):7.1f} Mb/s "
             + "#" * int(to_mbps(r) / 10))
    record(benchmark, rates_mbps={k: round(to_mbps(v), 1)
                                  for k, v in rates.items()})

    # GridFTP dominates bulk movement, by a wide margin.
    assert rates["gridftp"] > 3 * rates["dods"]
    assert rates["gridftp"] > 3 * rates["gateway"]


def test_a6_small_subset_favors_server_side_processing(benchmark, show):
    """The flip side: for a small extraction, shipping the subset
    (DODS filters / GridFTP ERET) beats shipping the file."""
    def run():
        grid, dods, gateway = build_world()
        run_data = ClimateModelRun(grid=GridSpec(64, 128, 12))
        blob = run_data.encode_year(1995)
        grid.server_fs.create("year.nc", len(blob), content=blob)

        def whole():
            _, secs, _ = yield from dods.open_url(
                grid.client_host, "srv.lbl.gov", "year.nc",
                grid.client_fs)
            return secs

        t_whole = grid.run_process(whole())

        def subset():
            _, secs, _ = yield from dods.open_url(
                grid.client_host, "srv.lbl.gov", "year.nc",
                grid.client_fs, variable="tas", lat=(-10.0, 10.0))
            return secs

        t_subset = grid.run_process(subset())
        return len(blob), t_whole, t_subset

    size, t_whole, t_subset = run_once(benchmark, run)
    show()
    show(f"=== A6b: fetch whole {size / MB:.1f} MiB file vs "
         f"server-side subset ===")
    show(f"  whole file : {t_whole:6.2f} s")
    show(f"  subset     : {t_subset:6.2f} s "
         f"({t_whole / t_subset:.1f}x faster)")
    record(benchmark, whole_s=round(t_whole, 2),
           subset_s=round(t_subset, 2))
    assert t_subset < t_whole / 2
