"""Pipelined tape-to-WAN staging — reactive FIFO vs the staging pipeline.

The paper's challenge workload is tape-heavy: every cold request pays a
cartridge mount (~40 s), a wind, and a 14 MB/s stream before the first
WAN byte moves. This bench runs a multi-tenant, cold-MSS workload whose
datasets are striped across cartridges — the pathological case for a
reactive FIFO drive pool, which remounts on nearly every read — and
compares four configurations:

- ``baseline``    — FIFO drive pool, no prefetch, sequential
  stage-then-transfer (the pre-pipeline behaviour);
- ``batch``       — tape-aware batch scheduler only (cartridge
  grouping, SCAN order, aging bound);
- ``cutthrough``  — batch + stage/transfer cut-through (transfers start
  at a 25% staged watermark, rate-capped at the tape drive rate);
- ``pipelined``   — batch + cut-through + dataset-aware prefetch
  (ticket hints stage idle-time siblings in cartridge order).

The bulk sweep runs with ``per_server_cap=8``, which keeps the tape
demand-saturated — the regime where batching dominates. A separate
**interactive** row runs one tenant at ``per_server_cap=2``: demand
trickles in behind the WAN drains, the drive pool has idle time, and
the dataset hint lets prefetch walk the cartridges ahead of demand.

Gates (the issue's acceptance criteria):

- the pipelined run pays at least 2x fewer cartridge mounts than the
  FIFO baseline on the canonical striped workload (the first sweep
  point, where each ticket walks a whole striped dataset in stripe
  order); deeper tenancy interleaves tickets and hands FIFO chance
  same-cartridge adjacency, so those points gate at >= 1.4x and
  strictly fewer mounts;
- mean time-to-first-byte for the cold tape-resident files is lower
  with cut-through enabled, at every sweep point;
- makespan is no worse than the baseline in every configuration, at
  every sweep point;
- in the interactive regime, prefetch demonstrably runs ahead of
  demand (hits >= 4) with fewer mounts and no makespan regression.

Results land in ``BENCH_staging_pipeline.json`` at the repo root. Set
``REPRO_STAGING_TENANTS=2`` (comma-separated tenant counts) for a
reduced CI-smoke sweep; the gates bind at every point of whatever sweep
runs.
"""

import json
import os
from pathlib import Path

from repro.gridftp.protocol import GridFtpConfig
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once

MB = 2**20
FILE_SIZE = 64 * MB
TENANT_COUNTS = (2, 4)
CARTRIDGES_PER_DATASET = 3
SEED = 11
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_staging_pipeline.json"

MOUNT_GATE = 2.0           # canonical striped point: >= 2x fewer mounts
MOUNT_GATE_DEEP = 1.4       # interleaved-tenancy points (see docstring)
MAKESPAN_TOLERANCE = 1.02   # "no worse" with float slack

CONFIGS = (
    ("baseline", dict(tape_policy="fifo", hrm_prefetch=False,
                      watermark=None)),
    ("batch", dict(tape_policy="batch", hrm_prefetch=False,
                   watermark=None)),
    ("cutthrough", dict(tape_policy="batch", hrm_prefetch=False,
                        watermark=0.25)),
    ("pipelined", dict(tape_policy="batch", hrm_prefetch=True,
                       watermark=0.25)),
)


def _tenant_counts():
    env_counts = os.environ.get("REPRO_STAGING_TENANTS")
    if env_counts:
        return tuple(int(c) for c in env_counts.split(","))
    return TENANT_COUNTS


def _build(tape_policy, hrm_prefetch, watermark, cap=8, drives=2):
    tb = EsgTestbed(
        seed=SEED, with_tape=True, file_size_override=FILE_SIZE,
        scheduler=SchedulerConfig(per_server_cap=cap),
        config=GridFtpConfig(parallelism=2, stage_watermark=watermark),
        tape_policy=tape_policy, hrm_prefetch=hrm_prefetch,
        tape_drives=drives)
    tb.warm_nws(60.0)
    pdsf = tb.sites["lbnl-pdsf"]
    for run_idx, ds in enumerate(tb.dataset_ids()):
        names = [str(f["logical_name"]) for f in tb.datasets[ds]]
        for i, name in enumerate(names):
            # Cold MSS: the tape copy is the only copy.
            for site_name in sorted(tb.sites):
                if site_name != "lbnl-pdsf":
                    try:
                        tb.replica_catalog.remove_file_from_location(
                            ds, site_name, name)
                    except KeyError:
                        pass
            # Stripe the dataset round-robin across its cartridges
            # (register() overwrites the populate-time placement).
            cart = i % CARTRIDGES_PER_DATASET
            stripe_depth = i // CARTRIDGES_PER_DATASET
            pdsf.hrm.mss.tape.register(
                pdsf.hrm.mss.tape.lookup(name),
                tape=f"S{run_idx}{cart}",
                position=stripe_depth / 8.0)
    return tb


def _tenant_requests(tb, n_tenants):
    """Split the full 24-file workload into n disjoint tenant tickets.

    Every sweep point moves the same bytes; only the tenancy
    granularity changes."""
    slices = []
    datasets = tb.dataset_ids()
    per_ds = max(1, n_tenants // len(datasets))
    for ds in datasets:
        names = [str(f["logical_name"]) for f in tb.datasets[ds]]
        chunk = len(names) // per_ds
        for k in range(per_ds):
            hi = len(names) if k == per_ds - 1 else (k + 1) * chunk
            slices.append([(ds, n) for n in names[k * chunk:hi]])
    return slices


def _run(n_tenants, tape_policy, hrm_prefetch, watermark, cap=8,
         drives=2, requests_fn=None):
    tb = _build(tape_policy, hrm_prefetch, watermark, cap=cap,
                drives=drives)
    pdsf = tb.sites["lbnl-pdsf"]
    t0 = tb.env.now
    make = requests_fn or (lambda t: _tenant_requests(t, n_tenants))
    tickets = [tb.request_manager.submit(reqs) for reqs in make(tb)]
    for ticket in tickets:
        tb.env.run(until=ticket.done)
    failed = sum(1 for t in tickets for f in t.files
                 if f.state.value != "done")
    assert failed == 0, (
        f"{failed} files failed ({tape_policy}, prefetch={hrm_prefetch})")
    total_bytes = sum(f.bytes_done for t in tickets for f in t.files)
    ttfb = tb.obs.metrics.histogram("rm.ttfb_seconds")
    hrm = pdsf.hrm
    return {
        "makespan_s": round(tb.env.now - t0, 2),
        "total_mib": round(total_bytes / MB, 1),
        "mounts": hrm.mss.tape.mounts_total,
        "mount_reuses": hrm.mss.tape.mount_reuses,
        "ttfb_mean_s": round(ttfb.sum() / ttfb.count(), 2)
        if ttfb.count() else None,
        "prefetch_issued": hrm.prefetch_issued,
        "prefetch_hits": hrm.prefetch_hits,
        "cutthrough_transfers": sum(
            s.cutthrough_served for s in tb.registry.values()),
    }


def _single_dataset_ticket(tb):
    """One ticket for the 12 files of the first dataset."""
    ds = tb.dataset_ids()[0]
    return [[(ds, str(f["logical_name"])) for f in tb.datasets[ds]]]


def _interactive_row():
    """Low-concurrency single-tenant run: per_server_cap=2 keeps most of
    the workload queued behind WAN drains, so the drive pool has idle
    time and dataset prefetch can walk the cartridges ahead of demand.
    This is the regime where the hint pays off; the bulk sweep above
    keeps the tape demand-saturated and measures batching instead."""
    row = {"tenants": 1, "files": 12, "per_server_cap": 2}
    row["reactive"] = _run(1, "fifo", False, None, cap=2,
                           requests_fn=_single_dataset_ticket)
    row["pipelined"] = _run(1, "batch", True, 0.25, cap=2,
                            requests_fn=_single_dataset_ticket)
    base, piped = row["reactive"], row["pipelined"]
    row["mount_ratio"] = (round(base["mounts"] / piped["mounts"], 2)
                          if piped["mounts"] else None)
    row["makespan_speedup"] = round(
        base["makespan_s"] / piped["makespan_s"], 2)
    return row


def _row(n_tenants):
    row = {"tenants": n_tenants, "files": None}
    for label, cfg in CONFIGS:
        row[label] = _run(n_tenants, cfg["tape_policy"],
                          cfg["hrm_prefetch"], cfg["watermark"])
    row["files"] = 24
    base, piped = row["baseline"], row["pipelined"]
    row["mount_ratio"] = (round(base["mounts"] / piped["mounts"], 2)
                          if piped["mounts"] else None)
    row["makespan_speedup"] = round(
        base["makespan_s"] / piped["makespan_s"], 2)
    return row


def test_staging_pipeline_sweep(benchmark, show):
    counts = _tenant_counts()
    rows, interactive = run_once(
        benchmark,
        lambda: ([_row(n) for n in counts], _interactive_row()))

    show()
    show("=== Pipelined tape-to-WAN staging (cold MSS, striped "
         "cartridges) ===")
    for r in rows:
        show(f"  tenants={r['tenants']} ({r['files']} files, "
             f"{r['baseline']['total_mib']:.0f} MiB)")
        show(f"    {'config':>11} {'makespan(s)':>12} {'mounts':>7} "
             f"{'ttfb(s)':>8} {'pf hits':>8} {'cut':>4}")
        for label, _cfg in CONFIGS:
            c = r[label]
            show(f"    {label:>11} {c['makespan_s']:>12.1f} "
                 f"{c['mounts']:>7} {c['ttfb_mean_s']:>8.1f} "
                 f"{c['prefetch_hits']:>8} {c['cutthrough_transfers']:>4}")
        show(f"    mounts {r['mount_ratio']}x fewer, makespan "
             f"{r['makespan_speedup']}x faster (pipelined vs baseline)")

    show(f"  interactive (1 tenant, {interactive['files']} files, "
         f"per_server_cap={interactive['per_server_cap']})")
    show(f"    {'config':>11} {'makespan(s)':>12} {'mounts':>7} "
         f"{'ttfb(s)':>8} {'pf hits':>8} {'cut':>4}")
    for label in ("reactive", "pipelined"):
        c = interactive[label]
        show(f"    {label:>11} {c['makespan_s']:>12.1f} "
             f"{c['mounts']:>7} {c['ttfb_mean_s']:>8.1f} "
             f"{c['prefetch_hits']:>8} {c['cutthrough_transfers']:>4}")
    show(f"    mounts {interactive['mount_ratio']}x fewer, makespan "
         f"{interactive['makespan_speedup']}x faster (pipelined vs "
         f"reactive)")

    OUT_PATH.write_text(json.dumps({
        "workload": {
            "seed": SEED, "file_size_mib": FILE_SIZE // MB,
            "datasets": 2, "files_per_dataset": 12,
            "cartridges_per_dataset": CARTRIDGES_PER_DATASET,
            "per_server_cap": 8, "stage_watermark": 0.25,
        },
        "rows": rows,
        "interactive": interactive,
    }, indent=2) + "\n")
    record(benchmark, rows=rows, interactive=interactive)

    for i, r in enumerate(rows):
        base = r["baseline"]
        # Tape-aware batching amortizes mounts >= 2x on the canonical
        # striped workload; interleaved-tenancy points gate lower
        # because FIFO picks up chance same-cartridge adjacency there.
        gate = MOUNT_GATE if i == 0 else MOUNT_GATE_DEEP
        assert r["mount_ratio"] >= gate, (
            f"tenants={r['tenants']}: only {r['mount_ratio']}x fewer "
            f"mounts (gate {gate}x)")
        assert r["pipelined"]["mounts"] < base["mounts"]
        # Cut-through moves the first byte earlier on cold tape files.
        assert r["cutthrough"]["ttfb_mean_s"] < base["ttfb_mean_s"], (
            f"tenants={r['tenants']}: cut-through TTFB "
            f"{r['cutthrough']['ttfb_mean_s']} not below baseline "
            f"{base['ttfb_mean_s']}")
        assert r["pipelined"]["ttfb_mean_s"] < base["ttfb_mean_s"]
        # And no configuration trades makespan away for it.
        for label, _cfg in CONFIGS:
            assert (r[label]["makespan_s"]
                    <= base["makespan_s"] * MAKESPAN_TOLERANCE), (
                f"tenants={r['tenants']}: {label} makespan "
                f"{r[label]['makespan_s']} worse than baseline "
                f"{base['makespan_s']}")

    # Interactive regime: idle drive time exists, so the dataset hint
    # must actually run ahead of demand and pay off.
    piped = interactive["pipelined"]
    assert piped["prefetch_hits"] >= 4, (
        f"only {piped['prefetch_hits']} prefetch hits in the "
        f"interactive regime")
    assert piped["mounts"] < interactive["reactive"]["mounts"]
    assert (piped["makespan_s"]
            <= interactive["reactive"]["makespan_s"] * MAKESPAN_TOLERANCE)
