"""Infrastructure bench — allocator scaling curve (not a paper figure).

Wall-time to simulate the same cap-churn workload under the incremental
allocator versus ``mode="reference"`` (full recompute on every change),
across growing flow counts. The workload is many disjoint site
components, so the incremental allocator touches only the disturbed
component per change while the reference allocator refills the world —
the gap is the point. Results are written to ``BENCH_fluid_scale.json``
at the repo root so the scale curve is versioned alongside the code.

Set ``REPRO_SCALE_COUNTS=32,96`` (comma-separated flow counts) to run a
reduced sweep, e.g. for CI smoke.
"""

import json
import os
import time
from pathlib import Path

from repro.net import FluidNetwork, Topology, mbps
from repro.sim import Environment

from benchmarks.conftest import record, run_once

N_COMPONENTS = 16          # disjoint site stars (>= 8 per the guard)
HORIZON = 4.0              # simulated seconds per run
CHURN_PERIOD = 0.011       # per-churner cap step, ~32-stream cadence
FLOW_COUNTS = (32, 96, 208, 304)
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fluid_scale.json"


def _counts():
    env_counts = os.environ.get("REPRO_SCALE_COUNTS")
    if env_counts:
        return tuple(int(c) for c in env_counts.split(","))
    return FLOW_COUNTS


def build_and_run(n_flows: int, mode: str):
    """One churny workload; returns (wall_seconds, final_rates, net)."""
    env = Environment(seed=7)
    topo = Topology()
    for c in range(N_COMPONENTS):
        for h in range(4):
            topo.duplex_link(f"c{c}h{h}", f"c{c}core",
                             mbps(800 + 40 * c), 0.001)
    net = FluidNetwork(env, topo, mode=mode)
    flows = []
    for i in range(n_flows):
        c = i % N_COMPONENTS
        f = net.transfer(f"c{c}h{i % 4}", f"c{c}h{(i + 1) % 4}", 1e15,
                         cap=mbps(25 + i % 40), name=f"f{i}")
        f.done.defuse()
        flows.append(f)

    def churner(env, flow, period, base):
        k = 0
        while True:
            yield env.timeout(period)
            k += 1
            flow.set_cap(mbps(base + (k % 11) * 9))

    # Two churners per component, plus a stream of short finite flows so
    # the completion path is exercised too.
    for c in range(N_COMPONENTS):
        mine = flows[c::N_COMPONENTS]
        for j, f in enumerate(mine[:2]):
            env.process(churner(env, f, CHURN_PERIOD + 1e-4 * c,
                                20 + 5 * j))

    def injector(env, c):
        k = 0
        while True:
            yield env.timeout(0.25)
            k += 1
            f = net.transfer(f"c{c}h{k % 4}", f"c{c}core",
                             mbps(5) * 0.05, name=f"s{c}.{k}")
            f.done.defuse()

    for c in range(N_COMPONENTS):
        env.process(injector(env, c))

    t0 = time.perf_counter()
    env.run(until=HORIZON)
    wall = time.perf_counter() - t0
    rates = {f.name: f.rate for f in flows}
    return wall, rates, net


def test_fluid_scale_curve(benchmark, show):
    counts = _counts()

    def run():
        rows = []
        for n in counts:
            wall_inc, rates_inc, net_inc = build_and_run(n, "incremental")
            wall_ref, rates_ref, _ = build_and_run(n, "reference")
            # Differential check rides along: same workload, same rates.
            for name, r_inc in rates_inc.items():
                r_ref = rates_ref[name]
                assert abs(r_inc - r_ref) <= max(abs(r_ref) * 1e-6, 1e-3)
            rows.append({
                "flows": n,
                "components": N_COMPONENTS,
                "incremental_s": round(wall_inc, 3),
                "reference_s": round(wall_ref, 3),
                "speedup": round(wall_ref / wall_inc, 2),
                "reallocations": net_inc.reallocations,
            })
        return rows

    rows = run_once(benchmark, run)
    show()
    show("=== Fluid allocator scaling (incremental vs reference) ===")
    show(f"  {'flows':>6} {'incr(s)':>8} {'ref(s)':>8} {'speedup':>8}")
    for r in rows:
        show(f"  {r['flows']:>6} {r['incremental_s']:>8.3f} "
             f"{r['reference_s']:>8.3f} {r['speedup']:>7.2f}x")

    OUT_PATH.write_text(json.dumps({
        "workload": {
            "components": N_COMPONENTS, "horizon_s": HORIZON,
            "churn_period_s": CHURN_PERIOD,
        },
        "rows": rows,
    }, indent=2) + "\n")
    record(benchmark, rows=rows)

    # Small workloads must not regress: the incremental bookkeeping may
    # not cost more than a modest constant over the full recompute.
    assert rows[0]["incremental_s"] <= rows[0]["reference_s"] * 1.5
    # At >= 200 flows across >= 8 disjoint components, component scoping
    # must pay for itself at least 3x.
    big = [r for r in rows if r["flows"] >= 200]
    for r in big:
        assert r["speedup"] >= 3.0, (
            f"only {r['speedup']}x at {r['flows']} flows")
