"""Observability overhead — instrumentation must be close to free.

The tentpole claim for ``repro.obs``: wiring metrics + tracing + ULM
events through the hot transfer path costs < 5% wall time on the
Table 1 schedule. Every emit helper is a plain function call guarded by
one ``is not None`` check, and spans/counters do no simulation yields,
so the schedule's event count is identical with and without the bundle.

Measured as best-of-N wall time for the same seeded ScinetTestbed run,
with the bundle attached post-construction (the testbed itself takes no
code path differences).
"""

import time

from repro.obs import Observability
from repro.scenarios import ScinetTestbed, run_table1_schedule

from benchmarks.conftest import record, run_once

DURATION = 90.0      # sim seconds of the Table 1 schedule
ROUNDS = 3           # best-of to shave scheduler noise


def _run(with_obs: bool):
    testbed = ScinetTestbed(seed=3)
    obs = None
    if with_obs:
        obs = Observability.create(testbed.env, host="scinet",
                                   prog="table1")
        testbed.client.obs = obs
        for server in testbed.servers:
            server.obs = obs
    t0 = time.perf_counter()
    run_table1_schedule(testbed, duration=DURATION)
    return time.perf_counter() - t0, obs


def test_obs_overhead_under_five_percent(benchmark, show):
    def run():
        bare = min(_run(with_obs=False)[0] for _ in range(ROUNDS))
        timed = [_run(with_obs=True) for _ in range(ROUNDS)]
        instrumented = min(t for t, _ in timed)
        return bare, instrumented, timed[0][1]

    bare, instrumented, obs = run_once(benchmark, run)
    overhead_pct = 100.0 * (instrumented - bare) / bare
    show()
    show("=== observability overhead (Table 1 schedule) ===")
    show(f"  bare:         {bare:8.3f} s")
    show(f"  instrumented: {instrumented:8.3f} s")
    show(f"  overhead:     {overhead_pct:+7.2f} %")
    show(f"  events={obs.logger.emitted} "
         f"metrics={len(obs.metrics.names())}")
    record(benchmark,
           bare_wall_s=round(bare, 4),
           instrumented_wall_s=round(instrumented, 4),
           overhead_pct=round(overhead_pct, 2))

    # The instrumentation must actually observe the run...
    assert obs.logger.emitted > 0
    assert obs.metrics.counter("gridftp.transfers_total").total > 0
    # ...and stay under the 5% wall-time budget.
    assert overhead_pct < 5.0
