"""Figure 2 — attribute-based selection in the metadata browser.

The figure shows VCDAT's selection panes: the user picks model /
variable / time range and the system maps the choice to logical file
names. The bench drives that translation over a realistically sized
catalog (the paper: "a single dataset may consist of thousands of
individual data files") and reports the selection latencies.
"""

from repro.data import ClimateModelRun, GridSpec, monthly_files
from repro.metadata import MetadataCatalog, VariableRecord
from repro.sim import Environment

from benchmarks.conftest import record, run_once

VARS = (VariableRecord("tas", "K", "surface air temperature"),
        VariableRecord("pr", "mm/day", "precipitation"),
        VariableRecord("clt", "%", "total cloud fraction"))


def build_catalog(models=4, years=30):
    """~thousands of file entries across several model runs."""
    env = Environment(seed=1)
    mc = MetadataCatalog(env)
    names = []
    for m in range(models):
        run = ClimateModelRun(model=f"MODEL{m}", run="run1",
                              grid=GridSpec(32, 64, 12),
                              start_year=1970)
        mc.register_dataset(run.dataset_id, run.model, run.run,
                            variables=VARS)
        mc.register_files(run.dataset_id, monthly_files(run, years))
        names.append(run.dataset_id)
    return env, mc, names


def test_figure2_attribute_selection(benchmark, show):
    env, mc, names = build_catalog()
    total_files = sum(d.file_count for d in mc.datasets())

    def select():
        # The Figure 2 flow: browse datasets, pick variables, narrow by
        # time; each step is a timed LDAP query.
        def flow():
            listing = mc.datasets()
            files_all = yield from mc.query_files(names[0], "tas")
            files_decade = yield from mc.query_files(
                names[0], "tas", years=(1980, 1989))
            files_season = yield from mc.query_files(
                names[0], "pr", years=(1985, 1985), months=(6, 8))
            return listing, files_all, files_decade, files_season

        p = env.process(flow())
        env.run(until=p)
        return p.value

    listing, files_all, files_decade, files_season = run_once(
        benchmark, select)
    show()
    show("=== Figure 2: selection by application attributes ===")
    show(f"  catalog: {len(listing)} datasets, {total_files} files")
    show(f"  'tas', all years        -> {len(files_all)} files")
    show(f"  'tas', 1980s            -> {len(files_decade)} files")
    show(f"  'pr',  JJA 1985         -> {len(files_season)} files")
    record(benchmark, datasets=len(listing), total_files=total_files,
           selected_all=len(files_all), selected_decade=len(files_decade),
           selected_season=len(files_season))

    assert total_files == 4 * 30 * 12
    assert len(files_all) == 360
    assert len(files_decade) == 120
    assert files_season == [
        "pcmdi.model0.run1.1985.m06-m06.nc",
        "pcmdi.model0.run1.1985.m07-m07.nc",
        "pcmdi.model0.run1.1985.m08-m08.nc"]
