"""Figure 3 — visualization of climate data (temperature + clouds).

The figure shows VCDAT rendering temperature (color) and clouds after
the grid delivered the data. The bench runs the identical pipeline —
attribute selection → NWS-guided fetch → SDBF decode → analysis →
render — for both variables and checks the physics of what gets drawn.
"""

import numpy as np

from repro.cdat import render_field, time_mean, zonal_mean
from repro.esg import EarthSystemGrid

from benchmarks.conftest import record, run_once


def test_figure3_visualization_pipeline(benchmark, show):
    def run():
        esg = EarthSystemGrid.demo_testbed(seed=33)
        tas_result, tas_viz = esg.fetch_and_analyze(
            "pcmdi.ncar_csm.run1", "tas", months=(1, 12))
        clt_result, _ = esg.fetch_and_analyze(
            "pcmdi.ncar_csm.run1", "clt", months=(1, 12), warm_nws=0.0)
        return esg, tas_result, tas_viz, clt_result

    esg, tas_result, tas_viz, clt_result = run_once(benchmark, run)
    clt_field = time_mean(clt_result.dataset, "clt")
    clt_viz = render_field(clt_field, title="cloud fraction, time mean",
                           units="%", width=64, height=14)
    show()
    show("=== Figure 3: temperature (ASCII edition) ===")
    show(tas_viz)
    show()
    show("=== Figure 3: clouds ===")
    show(clt_viz)

    tas = tas_result.dataset
    lat = tas.coords["lat"]
    tas_zonal = zonal_mean(tas, "tas")
    equator = tas_zonal[np.abs(lat).argmin()]
    pole = tas_zonal[np.abs(lat).argmax()]
    record(benchmark,
           files_fetched=len(tas_result.logical_files)
           + len(clt_result.logical_files),
           equator_minus_pole_K=round(float(equator - pole), 1),
           transfer_seconds=round(tas_result.transfer_seconds, 1))

    # The rendered physics is right: warm equator, bounded clouds.
    assert equator - pole > 20
    assert 0 <= clt_field.min() and clt_field.max() <= 100
    assert "scale:" in tas_viz and "scale:" in clt_viz
    assert len(tas_result.logical_files) == 12
