"""Ablation A2 — TCP buffer sizing against the bandwidth–delay product.

§7: "Proper TCP buffer sizes are critical to obtaining good performance
in TCP wide area links. The appropriate size is determined by
calculating the bandwidth-delay product... We chose 1 MB as a
reasonable buffer size for our transfers" (for ~200-500 Mb/s at
10-20 ms). The bench sweeps SBUF on that exact path profile and also
checks the automatic (BDP) negotiation.
"""

from repro.gridftp import GridFtpConfig
from repro.net import MB, bdp_buffer_size, mbps, to_mbps

from tests.gridftp.conftest import Grid

from benchmarks.conftest import record, run_once

SIZE = 256 * MB
# The paper's path profile: up to ~500 Mb/s, 10-20 ms RTT.
WAN = mbps(500)
ONE_WAY = 0.008


def rate_with_buffer(buffer_bytes):
    grid = Grid(seed=7, wan=WAN, latency=ONE_WAY)
    grid.server_fs.create("f.dat", SIZE)
    cfg = GridFtpConfig(parallelism=1, buffer_bytes=buffer_bytes)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        t0 = grid.env.now
        yield from session.get("f.dat", grid.client_fs,
                               grid.client_host, config=cfg)
        return SIZE / (grid.env.now - t0)

    return grid.run_process(main())


def test_a2_buffer_size_sweep(benchmark, show):
    buffers = [16 * 1024, 64 * 1024, 256 * 1024, 1 * MB, 4 * MB]

    def run():
        swept = {b: rate_with_buffer(b) for b in buffers}
        auto = rate_with_buffer(None)  # BDP negotiation
        return swept, auto

    swept, auto = run_once(benchmark, run)
    rtt = 2 * ONE_WAY + 2e-4  # + uplink hops
    bdp = bdp_buffer_size(WAN, rtt)
    show()
    show(f"=== A2: SBUF sweep (path BDP ≈ {bdp / 1024:.0f} KB) ===")
    for b, r in swept.items():
        label = f"{b / 1024:.0f} KB"
        show(f"  {label:>8}: {to_mbps(r):7.1f} Mb/s "
             + "#" * int(to_mbps(r) / 12))
    show(f"  auto(BDP): {to_mbps(auto):7.1f} Mb/s")
    record(benchmark, bdp_kb=round(bdp / 1024),
           rates_mbps={f"{b//1024}KB": round(to_mbps(r), 1)
                       for b, r in swept.items()},
           auto_mbps=round(to_mbps(auto), 1))

    # Undersized buffers throttle hard: window/RTT.
    expected_64k = 64 * 1024 / rtt
    assert swept[64 * 1024] <= expected_64k * 1.05
    # "Dramatically improve": 1 MB ≈ BDP beats 64 KB by a large factor.
    assert swept[1 * MB] > 5 * swept[64 * 1024]
    # Beyond the BDP there is nothing left to gain.
    assert swept[4 * MB] < swept[1 * MB] * 1.15
    # Auto-negotiation lands at the well-sized rate.
    assert auto > 0.9 * swept[1 * MB]
