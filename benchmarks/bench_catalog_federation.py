"""Federated replica catalog at archive scale, and selection quality
under staleness.

Section 6.2 sizes the metadata problem at "perhaps 10^6 logical files"
and asks for "distribution and replication of the catalog". This bench
drives the federated, sharded catalog at exactly that scale and then
measures what sharding must not cost: answer fidelity and replica
selection quality when shards lag, cache entries go stale, and a whole
site catalog drops out.

Part A — **scale**: publish ~10^6 logical files (collections of 1000,
three locations each) through the federation and through an unsharded
:class:`ReplicaCatalog` union baseline, replicate to quiescence, then
drive sampled timed lookups. Fidelity is gated in-bench: every sampled
federated answer must equal the baseline's, healthy *and* during an
injected shard outage (where answers must additionally be flagged
partial).

Part B — **selection quality**: an :class:`EsgTestbed` with a sharded
catalog, slow sync, and a long-TTL client cache. Half the requested
files lose every fast replica behind the catalog's back (stale
entries), one shard takes an outage mid-run, and a write lands during
the outage (version-lagged peer answers). The gate is the issue's
acceptance criterion: >= 90% of requests still reach a valid replica,
with the demote + re-select loop demonstrably exercised.

Results land in ``BENCH_catalog_federation.json`` at the repo root.
Reduced CI smoke: ``REPRO_FED_FILES=10000 REPRO_FED_SITES=3``; every
gate except the absolute 10^6 floor binds at whatever scale runs.
"""

import json
import os
import time
from pathlib import Path

from repro.net import FaultSchedule
from repro.replica.catalog import ReplicaCatalog
from repro.replica.federation import FederatedReplicaCatalog
from repro.rm.request import FileState
from repro.rm.resilience import ResiliencePolicy, RetryPolicy
from repro.scenarios import EsgTestbed
from repro.sim import Environment

from benchmarks.conftest import record, run_once

MB = 2**20
SEED = 17
FILES_PER_COLLECTION = 1000
LOCATIONS_PER_COLLECTION = 3
SAMPLES = 2000
OUT_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_catalog_federation.json"

FULL_SCALE_FLOOR = 1_000_000
REACH_GATE = 0.90            # >= 90% of requests reach a valid replica


def _files_target():
    env_files = os.environ.get("REPRO_FED_FILES")
    return int(env_files) if env_files else FULL_SCALE_FLOOR


def _sites():
    return int(os.environ.get("REPRO_FED_SITES", "4"))


def _wall_gate():
    return float(os.environ.get("REPRO_FED_WALL_GATE", "600"))


def _loc_key(loc):
    return (loc.name, loc.protocol, loc.hostname, loc.port, loc.path,
            loc.files)


# -- Part A: 10^6 logical files, federated vs unsharded ------------------

def _publish(catalogs, n_collections):
    """Register every collection/location into each catalog.

    Per-file ``lf=`` entries are deliberately omitted — the paper makes
    them optional precisely so the catalog scales to 10^6 files on
    location filename lists alone.
    """
    collections = []
    for c in range(n_collections):
        coll = f"pcmdi.scale.c{c:04d}"
        files = [f"{coll}.y{f // 12:03d}.m{f % 12:02d}.nc"
                 for f in range(FILES_PER_COLLECTION)]
        for catalog in catalogs:
            catalog.create_collection(coll, description="scale")
        for l in range(LOCATIONS_PER_COLLECTION):
            # location 0 is complete; the others hold rolling halves
            held = (files if l == 0
                    else files[l::2] + files[:l])
            for catalog in catalogs:
                catalog.register_location(
                    coll, f"site{l}", "gsiftp",
                    f"gridftp{l}.example.org", 2811, "/archive", held)
        collections.append((coll, files))
    return collections


def _sample_pairs(collections, samples, stride):
    """Deterministic (collection, file) sample without Python RNG."""
    pairs = []
    n = len(collections)
    for i in range(samples):
        coll, files = collections[(i * stride) % n]
        pairs.append((coll, files[(i * 131) % len(files)]))
    return pairs


def _compare(env, fed, base, pairs):
    """Timed federated vs baseline lookups; returns match/partial counts."""
    stats = {"matched": 0, "mismatched": 0, "partial": 0, "stale": 0}

    def driver():
        for coll, name in pairs:
            got, meta = yield from fed.find_replicas_meta(coll, name)
            want = yield from base.find_replicas(coll, name)
            if [_loc_key(l) for l in got] == \
                    sorted((_loc_key(l) for l in want)):
                stats["matched"] += 1
            else:
                stats["mismatched"] += 1
            if meta.partial:
                stats["partial"] += 1
            if meta.stale:
                stats["stale"] += 1

    proc = env.process(driver())
    env.run(until=proc)
    return stats


def _run_scale():
    target = _files_target()
    n_collections = max(2, target // FILES_PER_COLLECTION)
    n_files = n_collections * FILES_PER_COLLECTION
    env = Environment(seed=SEED)
    sites = [f"cat{i}" for i in range(_sites())]
    fed = FederatedReplicaCatalog(env, sites, replication=2,
                                  sync_interval=30.0)
    base = ReplicaCatalog(env, name="esg")

    t0 = time.perf_counter()
    collections = _publish([fed, base], n_collections)
    publish_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    fed.sync_now()
    sync_wall = time.perf_counter() - t0
    assert fed.lag == 0

    # federated directory view matches the union baseline
    fed_names = [c.name for c in fed.collections()]
    base_names = [c.name for c in base.collections()]
    assert fed_names == sorted(base_names)
    assert len(fed_names) == n_collections

    t0 = time.perf_counter()
    healthy = _compare(env, fed, base, _sample_pairs(
        collections, SAMPLES, stride=7919))
    lookup_wall = time.perf_counter() - t0

    # one shard out: answers must stay correct (replication = 2) while
    # queries on its collections degrade to flagged partial answers
    victim = fed.router.sites[0]
    homed = [(coll, files) for coll, files in collections
             if fed.router.home(coll) == victim]
    fed.sites[victim].directory.add_outage(start=env.now,
                                           duration=1e9)
    outage = _compare(env, fed, base, _sample_pairs(
        homed, min(SAMPLES, 4 * len(homed)), stride=104729))

    per_site = {name: len(site.directory)
                for name, site in fed.sites.items()}
    return {
        "sites": len(sites),
        "collections": n_collections,
        "files": n_files,
        "entries_per_shard": per_site,
        "publish_wall_s": round(publish_wall, 2),
        "publish_files_per_s": round(n_files / publish_wall),
        "sync_wall_s": round(sync_wall, 2),
        "replicated_ops": fed.replicated_ops,
        "lookup_samples": SAMPLES,
        "lookup_wall_s": round(lookup_wall, 2),
        "lookups_per_s": round(SAMPLES / lookup_wall),
        "healthy": healthy,
        "outage_shard": victim,
        "outage_samples": outage,
    }


# -- Part B: stale-tolerant selection through the testbed ----------------

def _run_selection():
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_rounds=2, base_delay=2.0, multiplier=2.0,
                          max_delay=10.0, jitter=0.25),
        breaker_failure_threshold=3, file_deadline=300.0)
    tb = EsgTestbed(seed=SEED, with_tape=False,
                    file_size_override=2 * MB, resilience=resilience,
                    catalog_sites=3, catalog_sync_interval=600.0,
                    catalog_cache_ttl=300.0)
    tb.warm_nws(60.0)
    fed = tb.federation
    requests = [(ds, str(f["logical_name"]))
                for ds in tb.dataset_ids()
                for f in tb.datasets[ds]]
    # Warm the client cache: selection below acts on cached entries.
    for ds, name in requests:
        tb.run_process(fed.find_replicas(ds, name))
    # Staleness injection: every other file loses all fast replicas on
    # disk behind the catalog's back; only a slow-WAN copy survives, so
    # ranked selection must hit the mismatch, demote, and re-select.
    slow = {"ncar", "isi", "sdsc", "llnl"}
    doctored = 0
    for i, (ds, name) in enumerate(requests):
        if i % 2:
            continue
        holders = [loc.name for loc in fed.locations(ds)
                   if loc.holds(name)]
        survivor = next(h for h in holders if h in slow)
        for site_name in holders:
            if site_name != survivor:
                tb.sites[site_name].fs.delete(name)
        doctored += 1
    # Converge replication first so every peer holds a real (if soon
    # version-lagged) copy, then take the first dataset's home shard
    # down: a write landing mid-outage leaves the surviving peer
    # answering with a stale view — which selection must tolerate.
    fed.sync_now()
    victim = fed.router.home(tb.dataset_ids()[0])
    # (fault start times are relative to install time)
    tb.fault_injector().install(
        FaultSchedule().catalog_outage(0.0, 600.0, site=victim,
                                       description="shard outage"))
    fed.add_file_to_location(tb.dataset_ids()[0], "lbnl-pdsf",
                             "bench.marker.nc")

    reached = 0
    stale_demotes = 0
    stale_lookups = 0
    switches = 0
    for ds, name in requests:
        ticket = tb.request_manager.submit([(ds, name)])
        tb.env.run(until=ticket.done)
        fr = ticket.files[0]
        if fr.state is FileState.DONE:
            reached += 1
        stale_demotes += fr.stale_demotes
        stale_lookups += fr.stale_lookups
        switches += fr.replica_switches
    stats = fed.stats()
    return {
        "requests": len(requests),
        "doctored": doctored,
        "reached": reached,
        "reach_rate": round(reached / len(requests), 4),
        "stale_demotes": stale_demotes,
        "stale_lookups": stale_lookups,
        "replica_switches": switches,
        "outage_shard": victim,
        "federation": {k: stats[k]
                       for k in ("queries", "cache_hits", "stale_hits",
                                 "partial_queries", "demotes",
                                 "refreshes", "syncs")},
    }


def test_catalog_federation(benchmark, show):
    def experiment():
        t0 = time.perf_counter()
        out = {"scale": _run_scale(), "selection": _run_selection()}
        out["wall_s"] = round(time.perf_counter() - t0, 1)
        return out

    results = run_once(benchmark, experiment)
    scale = results["scale"]
    sel = results["selection"]

    show()
    show(f"=== Federated replica catalog: {scale['files']:,} logical "
         f"files over {scale['sites']} site catalogs ===")
    show(f"  publish: {scale['publish_wall_s']}s wall "
         f"({scale['publish_files_per_s']:,} files/s), "
         f"sync {scale['sync_wall_s']}s "
         f"({scale['replicated_ops']:,} replicated ops)")
    show(f"  lookups: {scale['lookup_samples']} sampled fan-outs in "
         f"{scale['lookup_wall_s']}s wall "
         f"({scale['lookups_per_s']:,}/s), "
         f"matched={scale['healthy']['matched']} "
         f"mismatched={scale['healthy']['mismatched']}")
    show(f"  outage ({scale['outage_shard']} down): "
         f"{scale['outage_samples']['matched']} matched, "
         f"{scale['outage_samples']['partial']} flagged partial, "
         f"{scale['outage_samples']['mismatched']} mismatched")
    show(f"=== Stale-tolerant selection ({sel['requests']} requests, "
         f"{sel['doctored']} doctored stale) ===")
    show(f"  reached a valid replica: {sel['reached']}/"
         f"{sel['requests']} ({sel['reach_rate'] * 100:.1f}%, "
         f"gate >= {REACH_GATE * 100:.0f}%)")
    show(f"  demote/re-select: stale_demotes={sel['stale_demotes']} "
         f"replica_switches={sel['replica_switches']} "
         f"stale_lookups={sel['stale_lookups']}")
    show(f"  federation: {sel['federation']}")
    show(f"  total wall: {results['wall_s']}s "
         f"(gate <= {_wall_gate():.0f}s)")

    OUT_PATH.write_text(json.dumps({
        "workload": {
            "seed": SEED,
            "files": scale["files"],
            "collections": scale["collections"],
            "files_per_collection": FILES_PER_COLLECTION,
            "locations_per_collection": LOCATIONS_PER_COLLECTION,
            "catalog_sites": scale["sites"],
            "replication": 2,
            "selection_requests": sel["requests"],
        },
        "gates": {
            "full_scale_floor": FULL_SCALE_FLOOR,
            "reach_rate": REACH_GATE,
            "wall_s": _wall_gate(),
        },
        "results": results,
    }, indent=2) + "\n")
    record(benchmark, results=results)

    # -- gates ---------------------------------------------------------
    if not os.environ.get("REPRO_FED_FILES"):
        assert scale["files"] >= FULL_SCALE_FLOOR
    assert results["wall_s"] <= _wall_gate()
    # federated answers identical to the unsharded baseline
    assert scale["healthy"]["mismatched"] == 0
    assert scale["healthy"]["partial"] == 0
    assert scale["outage_samples"]["mismatched"] == 0
    # every outage-window sample touched the downed home: all partial
    assert scale["outage_samples"]["partial"] == \
        scale["outage_samples"]["matched"]
    assert scale["outage_samples"]["matched"] > 0
    # >= 90% of requests under injected staleness reach a valid replica
    assert sel["reach_rate"] >= REACH_GATE, (
        f"only {sel['reach_rate'] * 100:.1f}% of requests reached a "
        f"replica under staleness")
    # and they did it the stale-tolerant way, not by luck
    assert sel["stale_demotes"] > 0
    assert sel["federation"]["demotes"] > 0
    assert sel["federation"]["stale_hits"] > 0
    assert sel["federation"]["partial_queries"] > 0
