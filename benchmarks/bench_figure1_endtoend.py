"""Figure 1 — the ESG-I demonstration architecture, end to end.

The figure is structural: client (VCDAT + metadata catalog) → request
manager → {replica catalog, NWS via MDS, GridFTP, HRM} → storage sites
(ANL, both LBNL systems, NCAR, ISI, SDSC, + PCMDI at LLNL). This bench
builds the whole thing and runs a multi-file request through every
component, verifying each one was actually exercised.
"""

from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once


def test_figure1_end_to_end_prototype(benchmark, show):
    def run():
        tb = EsgTestbed(seed=21, file_size_override=32 * 2**20)
        tb.warm_nws(90.0)
        ds = tb.dataset_ids()[0]
        names = tb.metadata_catalog.resolve(ds, "tas")[:6]
        ticket = tb.request_manager.submit([(ds, n) for n in names])
        tb.env.run(until=ticket.done)
        return tb, ticket

    tb, ticket = run_once(benchmark, run)
    show()
    show("=== Figure 1 wiring check ===")
    rows = [
        ("storage sites", len(tb.sites)),
        ("GridFTP servers", len(tb.registry)),
        ("LDAP catalog entries (replica)",
         len(tb.replica_catalog.directory)),
        ("LDAP catalog entries (metadata)",
         len(tb.metadata_catalog.directory)),
        ("NWS sensors", len(tb.nws.sensors)),
        ("MDS publishes", tb.mds.publishes),
        ("GSI handshakes", tb.gsi.handshakes),
        ("files delivered", sum(1 for f in ticket.files
                                if f.state.value == "done")),
    ]
    for label, value in rows:
        show(f"  {label:<36} {value}")
    record(benchmark, **{k.replace(" ", "_"): v for k, v in rows})

    assert len(tb.sites) == 7
    assert ticket.complete and not ticket.failed_files
    # Every component in the figure participated:
    assert tb.replica_catalog.directory.operations >= 6   # RM lookups
    assert tb.mds.directory.operations >= 6               # NWS via MDS
    assert tb.gsi.handshakes >= 6                         # GSI per session
    assert tb.nws.monitored_pairs()                       # NWS active
    assert all(tb.client_fs.exists(f.logical_file)
               for f in ticket.files)
