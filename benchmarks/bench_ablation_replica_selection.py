"""Ablation A5 — NWS-guided replica selection beats naive policies.

§2/§5: "The request manager uses NWS information to select the replica
of the desired data that is likely to provide the best transfer
performance." The bench fetches the same file set under NWS-best,
random, and round-robin policies on the multi-site testbed, where sites
differ 4× in WAN capacity.
"""

import numpy as np

from repro.replica import NwsBestPolicy, RandomPolicy, RoundRobinPolicy
from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once

N_FILES = 8
SIZE = 48 * 2**20


def makespan(policy_name: str) -> float:
    tb = EsgTestbed(seed=19, file_size_override=SIZE)
    # Give the client a fatter pipe than any single site so the source
    # site choice actually matters.
    for name in ("wan-client:fwd", "wan-client:rev"):
        tb.topology.links[name].restore(tb.topology.links[name]
                                        .nominal_capacity * 4)
    for link in tb.client_host.links.values():
        link.restore(link.nominal_capacity * 4)
        link.nominal_capacity = link.capacity
    if policy_name == "nws":
        tb.request_manager.policy = NwsBestPolicy()
    elif policy_name == "random":
        tb.request_manager.policy = RandomPolicy(
            tb.env.rng.stream("policy.random"))
    else:
        tb.request_manager.policy = RoundRobinPolicy()
    tb.warm_nws(120.0)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:N_FILES]
    t0 = tb.env.now
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    assert not ticket.failed_files
    return tb.env.now - t0


def test_a5_replica_selection_policies(benchmark, show):
    def run():
        return {name: makespan(name)
                for name in ("nws", "random", "roundrobin")}

    times = run_once(benchmark, run)
    show()
    show(f"=== A5: {N_FILES} x {SIZE // 2**20} MiB fetch makespan ===")
    for name, t in sorted(times.items(), key=lambda kv: kv[1]):
        show(f"  {name:<11} {t:7.1f} s " + "#" * int(t / 5))
    record(benchmark, makespans_s={k: round(v, 1)
                                   for k, v in times.items()})

    # NWS-guided selection wins (paper's design claim).
    assert times["nws"] < times["random"]
    assert times["nws"] < times["roundrobin"]
    assert times["nws"] < 0.9 * max(times["random"],
                                    times["roundrobin"])
