"""Bottleneck attribution, SLO alerting, and reconciliation gates.

The observability tentpole's acceptance harness. Three legs:

1. **Attribution accuracy** — build two testbeds with a *known*
   dominant bottleneck and check the critical-path analysis names it:

   - *tape-bound*: every request pinned to the LBNL-PDSF tape archive,
     one drive, no prefetch, a fat (622 Mb/s) client downlink — the
     drive serializes everything, so per-file blame must land on
     ``mount``/``stage``;
   - *WAN-bound*: disk replicas everywhere, a thin (20 Mb/s) client
     downlink — blame must land on ``transfer``.

   Gate: >= 90% of files dominantly blamed on the expected stage in
   *both* configurations, and the aggregated report's resource join
   names a series from the expected family (``tape.*`` / ``link.*``).

2. **Analysis-tier overhead** — the same WAN-bound run with the full
   analysis tier attached (5 s time-series recorder + periodic SLO
   engine) must cost < 5% wall time over the instrumented baseline
   (best-of-N, same seed — the analysis rides the existing
   instrumentation, it must not tax the hot path).

3. **Campaign reconciliation** — a verified mirror campaign reconciled
   against catalog + destination + scheduler comes back CLEAN; after
   post-hoc corruption of one delivered file the report must flag
   exactly that file as a discrepancy.

Results land in ``BENCH_bottleneck_attribution.json`` at the repo
root. Set ``REPRO_ATTRIB_FILES`` to shrink the per-config file count
(CI smoke uses 6).
"""

import json
import os
import time
from pathlib import Path

from repro.campaign import (CampaignManifest, ReplicationCampaign,
                            plan_campaign, reconcile)
from repro.data.digest import add_mark
from repro.gridftp.protocol import GridFtpConfig
from repro.net.units import mbps
from repro.netlogger import reconstruct_lifelines, reconstruction_report
from repro.obs.critical_path import (attribute_bottleneck,
                                     extract_critical_paths)
from repro.obs.slo import SloEngine, SloSpec
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once

MB = 2**20
SEED = 13
FILE_SIZE = 48 * MB
ATTRIBUTION_GATE = 0.90
OVERHEAD_GATE = 5.0          # percent
OVERHEAD_ROUNDS = 5
OUT_PATH = (Path(__file__).resolve().parents[1]
            / "BENCH_bottleneck_attribution.json")

#: blame categories that correctly name each engineered bottleneck
EXPECTED = {
    "tape": {"mount", "stage"},
    "wan": {"transfer", "first_byte"},
}
RESOURCE_PREFIX = {"tape": "tape.", "wan": "link."}


def _files_target() -> int:
    return int(os.environ.get("REPRO_ATTRIB_FILES", "10"))


def _build(kind: str, analysis: bool = True):
    """A testbed with the named bottleneck engineered in."""
    sched = SchedulerConfig(per_server_cap=32, max_queue_depth=2048)
    if kind == "tape":
        tb = EsgTestbed(seed=SEED, with_tape=True, tape_drives=1,
                        hrm_prefetch=False,
                        file_size_override=FILE_SIZE, scheduler=sched)
        rm = tb.add_client("sink", downlink=mbps(622), latency=0.010)
    else:
        tb = EsgTestbed(seed=SEED, with_tape=False,
                        file_size_override=FILE_SIZE, scheduler=sched)
        rm = tb.add_client("sink", downlink=mbps(20), latency=0.010)
    ts = tb.start_timeseries(interval=5.0) if analysis else None
    return tb, rm, ts


def _run(kind: str, analysis: bool = True, files: int = None):
    """Drive one configuration; returns (tb, rm, ts, engine, wall)."""
    tb, rm, ts = _build(kind, analysis=analysis)
    engine = None
    if analysis:
        engine = SloEngine(tb.env, tb.obs, eval_interval=15.0)
        engine.add(SloSpec("sink-ttfb", "p95_ttfb", threshold=5.0,
                           tenant="sink", long_window=120.0,
                           short_window=30.0))
        engine.add(SloSpec("sink-goodput", "goodput_floor",
                           threshold=mbps(1) / 8, tenant="sink",
                           long_window=120.0, short_window=30.0))
        engine.start()
    wall0 = time.perf_counter()
    tb.warm_nws(60.0)
    ds = tb.dataset_ids()[0]
    names = [str(f["logical_name"]) for f in tb.datasets[ds]]
    names = names[:(files or _files_target())]
    resolved = None
    if kind == "tape":
        # pin every file to the tape archive so staging is mandatory
        pdsf = [loc for loc in tb.replica_catalog.locations(ds)
                if loc.name == "lbnl-pdsf"]
        assert pdsf, "tape archive location missing"
        resolved = {(ds, n): pdsf for n in names}
    ticket = rm.submit([(ds, n) for n in names], resolved=resolved)
    tb.env.run(until=ticket.done)
    tb.env.run(until=tb.env.now + 30.0)
    wall = time.perf_counter() - wall0
    return tb, rm, ts, engine, wall


def _attribution(kind: str):
    """(accuracy, report, recon_report, engine) for one config."""
    tb, rm, ts, engine, _wall = _run(kind)
    lifelines = reconstruct_lifelines(tb.logger.records)
    recon = reconstruction_report(lifelines, dropped=tb.logger.dropped)
    paths = extract_critical_paths(lifelines)
    expected = EXPECTED[kind]
    hits = sum(1 for p in paths
               if p.dominant() is not None
               and p.dominant()[0] in expected)
    accuracy = hits / len(paths) if paths else 0.0
    report = attribute_bottleneck(paths, timeseries=ts)
    return accuracy, report, recon, engine, len(paths)


def test_attribution_names_the_engineered_bottleneck(benchmark, show):
    def run():
        return {kind: _attribution(kind) for kind in ("tape", "wan")}

    results = run_once(benchmark, run)
    show()
    show("=== dominant-bottleneck attribution ===")
    out = {}
    for kind, (accuracy, report, recon, engine, n) in results.items():
        resource = (report.resource.series
                    if report.resource is not None else None)
        show(f"  {kind}-bound: {n} files, accuracy {accuracy:.0%}, "
             f"dominant={report.dominant_stage}, resource={resource}")
        show("    " + recon.render())
        out[kind] = {"files": n, "accuracy": round(accuracy, 3),
                     "dominant": report.dominant_stage,
                     "resource": resource,
                     "blame_totals": {k: round(v, 2) for k, v
                                      in report.blame_totals.items()}}
        record(benchmark, **{f"{kind}_accuracy": round(accuracy, 3),
                             f"{kind}_dominant": report.dominant_stage})

        # -- gates ---------------------------------------------------
        assert recon.complete == recon.total, \
            f"{kind}: incomplete lifelines {recon.reasons()}"
        assert accuracy >= ATTRIBUTION_GATE, \
            f"{kind}-bound attribution accuracy {accuracy:.0%} < 90%"
        assert report.dominant_stage in EXPECTED[kind], \
            f"{kind}-bound dominant stage {report.dominant_stage!r}"
        assert report.resource is not None, \
            f"{kind}-bound: no resource joined from the time series"
        assert report.resource.series.startswith(RESOURCE_PREFIX[kind]), \
            (f"{kind}-bound resource {report.resource.series!r} not in "
             f"family {RESOURCE_PREFIX[kind]!r}")

    # the tape run's tight TTFB objective must actually page: the
    # engineered drive serialization breaches a 5 s p95 bound.
    tape_engine = results["tape"][3]
    assert tape_engine.alerts, "tape-bound run opened no SLO alert"
    assert any(a.spec == "sink-ttfb" for a in tape_engine.alerts)
    out["slo_alerts_tape"] = len(tape_engine.alerts)
    _merge_out({"attribution": out})


def test_analysis_tier_overhead_under_five_percent(benchmark, show):
    # Heavier than the attribution leg on purpose: the recorder's
    # per-sample cost is fixed per sim-second while transfer work
    # scales with flow count, so a trivially small run would measure
    # the recorder against near-zero baseline work. Bare/full runs are
    # paired back-to-back and the best *ratio* taken, so ambient CPU
    # contention (which hits both runs of a pair) cancels instead of
    # landing on whichever side ran during the noisy window.
    n = max(24, 2 * _files_target())

    def run():
        pairs = []
        for _ in range(OVERHEAD_ROUNDS):
            b = _run("wan", analysis=False, files=n)[4]
            f = _run("wan", analysis=True, files=n)[4]
            pairs.append((f / b, b, f))
        return min(pairs)

    ratio, bare, full = run_once(benchmark, run)
    overhead_pct = 100.0 * (ratio - 1.0)
    show()
    show("=== analysis-tier overhead (WAN-bound run) ===")
    show(f"  instrumented baseline: {bare:8.3f} s")
    show(f"  + timeseries + SLO:    {full:8.3f} s")
    show(f"  overhead:              {overhead_pct:+7.2f} %")
    record(benchmark, bare_wall_s=round(bare, 4),
           full_wall_s=round(full, 4),
           overhead_pct=round(overhead_pct, 2))
    _merge_out({"overhead": {"bare_wall_s": round(bare, 4),
                             "full_wall_s": round(full, 4),
                             "overhead_pct": round(overhead_pct, 2)}})
    assert overhead_pct < OVERHEAD_GATE, \
        f"analysis tier costs {overhead_pct:.1f}% (gate {OVERHEAD_GATE}%)"


def _campaign(inject: bool):
    """A small verified mirror campaign, optionally corrupted post-hoc."""
    tb = EsgTestbed(seed=SEED, with_tape=True,
                    file_size_override=16 * MB,
                    scheduler=SchedulerConfig())
    tb.warm_nws(60.0)
    cfg = GridFtpConfig(parallelism=4, verify_checksum=True)
    rm = tb.add_client("mirror", downlink=mbps(622), config=cfg)
    ds = tb.dataset_ids()[0]
    manifest, replicas = plan_campaign(tb.replica_catalog, [ds])
    manifest = CampaignManifest(
        manifest.entries[:max(4, _files_target() // 2)])
    camp = ReplicationCampaign(tb.env, rm, manifest, replicas,
                               obs=tb.obs, name="mirror", batch_size=4)
    tb.env.run(until=camp.start())
    if inject:
        victim = manifest.entries[0]
        add_mark(rm.dest_fs.stat(victim.logical_file), "bitrot")
    return reconcile(camp), manifest


def test_reconciliation_certifies_and_detects(benchmark, show):
    def run():
        clean, _ = _campaign(inject=False)
        tampered, manifest = _campaign(inject=True)
        return clean, tampered, manifest

    clean, tampered, manifest = run_once(benchmark, run)
    show()
    show("=== campaign reconciliation ===")
    show("  " + clean.render().replace("\n", "\n  "))
    show("  " + tampered.render().replace("\n", "\n  "))
    record(benchmark, clean_discrepancies=len(clean.discrepancies),
           tampered_discrepancies=len(tampered.discrepancies))
    _merge_out({"reconciliation": {
        "files": clean.files,
        "clean_discrepancies": len(clean.discrepancies),
        "tampered_discrepancies": len(tampered.discrepancies)}})

    assert clean.clean and clean.exit_code == 0, \
        [f.render() for f in clean.discrepancies]
    assert clean.verified_files == clean.files
    assert not tampered.clean and tampered.exit_code == 1
    victim_key = manifest.entries[0].key
    assert any(f.name == "destination-digest-mismatch"
               and f.file == victim_key
               for f in tampered.discrepancies), \
        [f.render() for f in tampered.discrepancies]


def _merge_out(fragment: dict) -> None:
    """Accumulate results across the three tests into one JSON file."""
    doc = {}
    if OUT_PATH.exists():
        try:
            doc = json.loads(OUT_PATH.read_text())
        except (ValueError, OSError):
            doc = {}
    doc.update(fragment)
    doc["files_per_config"] = _files_target()
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True))
