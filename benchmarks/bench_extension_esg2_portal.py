"""Extension bench — the §9 ESG-II features, quantified.

Future-work items the paper names, implemented and measured:

1. server-side extraction/subsetting ("similar to those available with
   DODS ... performed local to the data before it is transferred");
2. lightweight-client access (the portal never moves whole files);
3. DODS-protocol access to the same archive.

The bench compares wire bytes and latency for the heavyweight path
(fetch whole files, subset locally) vs the portal path (subset at the
replica), and verifies the products agree exactly.
"""

import numpy as np

from repro.data import GridSpec
from repro.scenarios import EsgTestbed

from benchmarks.conftest import record, run_once


def test_esg2_portal_vs_heavyweight(benchmark, show):
    def run():
        tb = EsgTestbed(seed=14, materialize=True,
                        grid=GridSpec(nlat=48, nlon=96, months=12))
        tb.warm_nws(90.0)
        ds_id = "pcmdi.ncar_csm.run1"

        def portal_path():
            t0 = tb.env.now
            resp = yield from tb.portal.request(
                ds_id, "tas", operation="subset", months=(1, 6),
                lat=(-20.0, 20.0))
            return resp, tb.env.now - t0

        resp, portal_secs = tb.run_process(portal_path())

        def heavy_path():
            t0 = tb.env.now
            result = yield from tb.cdat.fetch(ds_id, "tas",
                                              months=(1, 6))
            return result, tb.env.now - t0

        heavy, heavy_secs = tb.run_process(heavy_path())
        heavy_bytes = sum(tb.client_fs.stat(n).size
                          for n in heavy.logical_files)
        local = heavy.dataset.subset("tas", lat=(-20.0, 20.0))
        agree = np.allclose(resp.dataset["tas"].data,
                            local["tas"].data)
        return resp, portal_secs, heavy_bytes, heavy_secs, agree

    resp, portal_secs, heavy_bytes, heavy_secs, agree = run_once(
        benchmark, run)
    show()
    show("=== ESG-II: subset at the data vs fetch-then-subset ===")
    show(f"  portal : {resp.bytes_shipped / 2**20:6.2f} MiB shipped, "
         f"{portal_secs:5.1f} s")
    show(f"  heavy  : {heavy_bytes / 2**20:6.2f} MiB shipped, "
         f"{heavy_secs:5.1f} s")
    show(f"  wire reduction {heavy_bytes / resp.bytes_shipped:.1f}x; "
         f"products agree: {agree}")
    record(benchmark,
           portal_mib=round(resp.bytes_shipped / 2**20, 2),
           heavy_mib=round(heavy_bytes / 2**20, 2),
           wire_reduction=round(heavy_bytes / resp.bytes_shipped, 1),
           portal_s=round(portal_secs, 1),
           heavy_s=round(heavy_secs, 1))

    assert agree
    assert resp.bytes_shipped < heavy_bytes / 3
    assert portal_secs < heavy_secs
