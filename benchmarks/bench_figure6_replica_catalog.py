"""Figure 6 — a replica catalog for a climate modeling application.

The figure's instance: two logical collections (CO2 measurements 1998 /
1999); the 1998 collection has a *partial* copy on jupiter.isi.edu and a
*complete* copy on sprite.llnl.gov; location entries carry protocol /
hostname / port / path and the filename list; per-file logical entries
(with sizes) are optional — kept optional "to improve catalog
scalability for large collections", which this bench quantifies.
"""

from repro.replica import ReplicaCatalog
from repro.sim import Environment

from benchmarks.conftest import record, run_once


def build_figure6():
    env = Environment(seed=1)
    rc = ReplicaCatalog(env, name="climate")
    files = [f"ua.1998.{m:02d}.nc" for m in range(1, 13)]
    rc.create_collection("CO2 measurements 1998")
    rc.create_collection("CO2 measurements 1999")
    rc.register_location("CO2 measurements 1998", "jupiter.isi.edu",
                         "gsiftp", "jupiter.isi.edu", 2811,
                         "/nfs/v6/climate", files=files[:6])
    rc.register_location("CO2 measurements 1998", "sprite.llnl.gov",
                         "gsiftp", "sprite.llnl.gov", 2811,
                         "/data/climate", files=files)
    for f in files:
        rc.register_logical_file("CO2 measurements 1998", f, 1_200_000)
    return env, rc, files


def test_figure6_replica_catalog(benchmark, show):
    def run():
        env, rc, files = build_figure6()

        def queries():
            early = yield from rc.find_replicas("CO2 measurements 1998",
                                                "ua.1998.03.nc")
            late = yield from rc.find_replicas("CO2 measurements 1998",
                                               "ua.1998.11.nc")
            return early, late

        p = env.process(queries())
        env.run(until=p)
        return env, rc, p.value

    env, rc, (early, late) = run_once(benchmark, run)
    show()
    show("=== Figure 6 catalog (reproduced) ===")
    for coll in rc.collections():
        show(f"  lc={coll.name}: {coll.location_count} locations, "
             f"{coll.file_count} files")
    for loc in rc.locations("CO2 measurements 1998"):
        show(f"    loc={loc.name} -> "
             f"{loc.url_for(loc.files[0])} (+{len(loc.files) - 1} more)")
    show(f"  replicas of ua.1998.03.nc: "
         f"{[l.name for l in early]}")
    show(f"  replicas of ua.1998.11.nc: "
         f"{[l.name for l in late]}")
    record(benchmark, locations=2,
           early_replicas=len(early), late_replicas=len(late))

    # The figure's structure: month 3 in both copies, month 11 only in
    # the complete one.
    assert {l.name for l in early} == {"jupiter.isi.edu",
                                       "sprite.llnl.gov"}
    assert [l.name for l in late] == ["sprite.llnl.gov"]
    assert rc.logical_file_size("CO2 measurements 1998",
                                "ua.1998.01.nc") == 1_200_000


def test_figure6_logical_entries_scalability(benchmark, show):
    """Optional logical-file entries: catalog entry count with and
    without them, at 'large collection' scale."""
    n_files = 2000

    def run():
        env = Environment()
        rc = ReplicaCatalog(env, name="scale")
        files = [f"f{i:05d}.nc" for i in range(n_files)]
        rc.create_collection("lean")
        rc.register_location("lean", "site-a", "gsiftp", "a.gov", 2811,
                             "/d", files=files)
        lean = len(rc.directory)
        rc.create_collection("heavy")
        rc.register_location("heavy", "site-a", "gsiftp", "a.gov", 2811,
                             "/d", files=files)
        for f in files:
            rc.register_logical_file("heavy", f, 1000)
        heavy = len(rc.directory) - lean
        return lean, heavy

    lean, heavy = run_once(benchmark, run)
    show()
    show(f"=== Catalog scalability ({n_files} files/collection) ===")
    show(f"  entries without logical files: {lean}")
    show(f"  additional entries with them : {heavy}")
    record(benchmark, n_files=n_files, lean_entries=lean,
           heavy_extra_entries=heavy)
    # Without per-file entries the catalog is O(locations), not O(files).
    assert lean <= 5
    assert heavy >= n_files
