#!/usr/bin/env python3
"""The Figure 8 reliability experiment, shortened.

One Dallas workstation pushes a 2 GB file to Argonne over commodity
internet, over and over, while the SC'2000 incident timeline plays out:
a SCinet power failure, DNS problems, and backbone trouble. GridFTP's
restartable transfers pick up where they left off each time.

Run:  python examples/reliable_transfer.py            (4 h, ~2 s wall)
      python examples/reliable_transfer.py --full     (the 14 h run)
"""

import sys

from repro.net import FaultSchedule
from repro.scenarios import CommodityTestbed, run_figure8_schedule
from repro.scenarios.commodity import HOURS, default_fault_schedule


def compressed_schedule() -> FaultSchedule:
    """The same three incidents, packed into four hours."""
    return (FaultSchedule()
            .site_outage("dallas", start=0.8 * HOURS, duration=1200.0,
                         description="SCinet power failure")
            .dns_outage(start=1.8 * HOURS, duration=900.0,
                        description="DNS problems")
            .degrade("commodity:fwd", start=2.8 * HOURS, duration=1500.0,
                     fraction=0.15,
                     description="backbone problems on the floor"))


def main() -> None:
    full = "--full" in sys.argv
    duration = 14 * HOURS if full else 4 * HOURS
    faults = default_fault_schedule() if full else compressed_schedule()
    parallelism = ([(0.0, 2), (duration * 0.55, 4),
                    (duration * 0.8, 8)])
    print(f"Simulating {duration / HOURS:.0f} hours...")
    testbed = CommodityTestbed(seed=8)
    result = run_figure8_schedule(testbed, duration=duration,
                                  faults=faults,
                                  parallelism=parallelism,
                                  bin_seconds=duration / 120)

    print(f"\ncompleted transfers: {result.transfers_completed}  "
          f"failed connects: {result.transfers_failed}  "
          f"restarts: {result.restarts}")
    print(f"plateau bandwidth: {result.plateau_rate * 8 / 1e6:.1f} Mb/s "
          f"(paper: ~80 Mb/s, disk-limited)")
    print(f"total moved: {result.total_bytes / 2**30:.1f} GiB")

    print("\n=== Incident log ===")
    for t, action, desc in result.fault_log:
        print(f"  {t / HOURS:5.2f} h  {action:<14} {desc}")

    print("\n=== Bandwidth timeline (Figure 8) ===")
    peak = result.bin_rates.max() or 1.0
    for t, r in list(zip(result.bin_times, result.bin_rates))[::2]:
        bar = "#" * int(48 * r / peak)
        print(f"  {t / HOURS:5.2f} h {r * 8 / 1e6:7.1f} Mb/s {bar}")


if __name__ == "__main__":
    main()
