#!/usr/bin/env python3
"""Quickstart: the whole Earth System Grid prototype in ~20 lines.

Builds the multi-site testbed (7 storage sites, HPSS+HRM at LBNL, LDAP
catalogs, NWS/MDS, request manager), then runs the paper's §7 demo flow:
select climate data by attributes, fetch it through NWS-guided replica
selection and parallel GridFTP, and visualize the result — all on the
simulated WAN, from one object.

Run:  python examples/quickstart.py
"""

from repro.esg import EarthSystemGrid

def main() -> None:
    esg = EarthSystemGrid.demo_testbed(seed=7)

    print("=== Datasets available (Figure 2 selection) ===")
    for entry in esg.browse():
        variables = ", ".join(v["name"] for v in entry["variables"])
        print(f"  {entry['dataset']:<28} model={entry['model']:<10} "
              f"files={entry['files']:>3}  variables: {variables}")

    print("\n=== Fetching boreal-summer temperature (Jun-Aug 1995) ===")
    result, rendering = esg.fetch_and_analyze(
        "pcmdi.ncar_csm.run1", "tas", months=(6, 8))
    print(f"  {len(result.logical_files)} files via "
          f"{[f.chosen_location for f in result.ticket.files]}")
    print(f"  transfer wall-clock: {result.transfer_seconds:.1f} "
          f"simulated seconds")

    print("\n=== Visualization (Figure 3, terminal edition) ===")
    print(rendering)

    print("\n=== Zonal-mean profile ===")
    print(esg.zonal_profile(result, "tas"))


if __name__ == "__main__":
    main()
