#!/usr/bin/env python3
"""ESG-II preview: server-side analysis and lightweight clients (§9).

The paper closes with the ESG-II plan: push extraction/subsetting to the
data, add DODS-protocol access, and serve lightweight clients. All three
are implemented here, on top of GridFTP's ERET plug-ins:

- the portal subsets/extracts/averages *at the replica* and ships only
  the product;
- the same archive answers DODS-style URL requests;
- the heavyweight path (fetch whole files, analyze locally) is run for
  comparison, and the two agree bit-for-bit.

Run:  python examples/lightweight_portal.py
"""

import numpy as np

from repro.cdat import render_field
from repro.data import GridSpec
from repro.scenarios import EsgTestbed


def main() -> None:
    tb = EsgTestbed(seed=12, materialize=True,
                    grid=GridSpec(nlat=32, nlon=64, months=12))
    tb.warm_nws(90.0)
    ds_id = "pcmdi.ncar_csm.run1"

    print("=== Portal: tropical-band subset, computed at the server ===")

    def subset():
        return (yield from tb.portal.request(
            ds_id, "tas", operation="subset", months=(1, 3),
            lat=(-23.5, 23.5)))

    resp = tb.run_process(subset())
    print(f"  shipped {resp.bytes_shipped / 1024:.1f} KB instead of "
          f"{resp.full_bytes / 1024:.1f} KB "
          f"({resp.reduction:.1f}x less wire traffic)")
    print(f"  served by {resp.source_hostname} in {resp.seconds:.2f} s")

    print("\n=== Portal: annual mean computed where the data lives ===")

    def tmean():
        return (yield from tb.portal.request(
            ds_id, "tas", operation="time_mean", months=(1, 1)))

    mean_resp = tb.run_process(tmean())
    print(render_field(mean_resp.dataset["tas"].data,
                       title="January-mean tas (computed server-side)",
                       units="K", width=56, height=12))

    print("\n=== Same archive over DODS protocols ===")
    servers, dods = tb.enable_dods()
    a_file = sorted(f.name for f in tb.sites["anl"].fs)[0]

    def via_dods():
        return (yield from dods.open_dataset(
            tb.client_host, "dods.anl.gov", a_file, "tas",
            lat=(-23.5, 23.5)))

    dods_ds = tb.run_process(via_dods())
    print(f"  opened {a_file!r} via dods.anl.gov: "
          f"tas{dods_ds['tas'].shape}")

    print("\n=== Cross-check: portal product == local analysis ===")

    def heavy():
        return (yield from tb.cdat.fetch(ds_id, "tas", months=(1, 3)))

    heavy_result = tb.run_process(heavy())
    local = heavy_result.dataset.subset("tas", lat=(-23.5, 23.5))
    agree = np.allclose(resp.dataset["tas"].data, local["tas"].data)
    print(f"  heavyweight fetch moved "
          f"{sum(tb.client_fs.stat(n).size for n in heavy_result.logical_files) / 1024:.1f} KB; "
          f"products agree: {agree}")


if __name__ == "__main__":
    main()
