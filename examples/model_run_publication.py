#!/usr/bin/env python3
"""Publishing a new model run into the grid (the intro's workflow).

The introduction's producer side: a climate model emits large files at
~2 MB/s average; they must be archived (HPSS), catalogued (metadata +
replica catalogs), and replicated so the community can analyze them.
This example runs that pipeline on the testbed:

1. the "model" at LLNL writes monthly output files as they complete;
2. each file is uploaded (GridFTP put) to LBNL-PDSF, where the MSS
   ingests it — disk cache immediately, tape migration in background;
3. catalogs are updated; popular months are replicated to two more
   sites by third-party copies;
4. a consumer fetches a freshly published month to prove end-to-end
   freshness.

Run:  python examples/model_run_publication.py
"""

from repro.data import ClimateModelRun, GridSpec
from repro.net import to_mbps
from repro.scenarios import EsgTestbed
from repro.storage import FileObject


def main() -> None:
    tb = EsgTestbed(seed=15, file_size_override=32 * 2**20)
    tb.warm_nws(60.0)
    run = ClimateModelRun(model="CCSM2", run="new-run",
                          grid=GridSpec(32, 64, 12), start_year=2001)
    ds_id = run.dataset_id
    pdsf = tb.sites["lbnl-pdsf"]
    llnl = tb.sites["llnl"]
    file_size = 64 * 2**20

    tb.metadata_catalog.register_dataset(ds_id, run.model, run.run,
                                         description="freshly published")
    tb.replica_catalog.create_collection(ds_id,
                                         description="CCSM2 new run")

    def publish():
        published = []
        for month in range(1, 7):
            # The model "computes" then writes this month's file at LLNL.
            compute_time = file_size / (2 * 2**20)  # ~2 MB/s output rate
            yield tb.env.timeout(compute_time)
            name = f"{ds_id}.2001.m{month:02d}-m{month:02d}.nc"
            llnl.fs.create(name, file_size)
            # Upload to the archive (third-party put into PDSF's MSS).
            session = yield from tb.gridftp.connect(
                tb.client_host, pdsf.hostname)
            stats = yield from session.put(name, llnl.fs, llnl.host)
            session.close()
            # Ingest into HPSS: cache now, tape in background.
            file = pdsf.fs.stat(name)
            yield from pdsf.hrm.mss.store(
                FileObject(name, file.size), tape="T-new",
                position=(month - 1) / 12.0)
            # Catalog the new file.
            if month == 1:
                tb.replica_catalog.register_location(
                    ds_id, "lbnl-pdsf", "gsiftp", pdsf.hostname, 2811,
                    "/hpss/new", files=[name])
            else:
                tb.replica_catalog.add_file_to_location(
                    ds_id, "lbnl-pdsf", name)
            tb.replica_catalog.register_logical_file(ds_id, name,
                                                     file.size)
            tb.metadata_catalog.register_files(ds_id, [{
                "logical_name": name, "size": file.size,
                "year": 2001, "month_range": (month, month),
                "variables": ("tas",)}])
            published.append((tb.env.now, name, stats.mean_rate))
            print(f"  t={tb.env.now:7.1f}s published {name} "
                  f"(upload {to_mbps(stats.mean_rate):.0f} Mb/s, "
                  f"migrating to tape)")
        return published

    print("=== Producing and archiving six months of CCSM2 output ===")
    published = tb.run_process(publish())
    print(f"  tape migrations completed: {pdsf.hrm.mss.migrations}")

    print("\n=== Replicating the first two months to fast sites ===")

    def replicate():
        for _, name, _ in published[:2]:
            for site_name in ("anl", "ncar"):
                site = tb.sites[site_name]
                stats = yield from tb.replica_manager.replicate_file(
                    tb.client_host, ds_id, name,
                    f"{site_name}-new", site.server)
                print(f"  {name} -> {site.hostname} "
                      f"({to_mbps(stats.mean_rate):.0f} Mb/s)")

    tb.run_process(replicate())
    coverage = tb.replica_manager.coverage(ds_id)
    print("  replica counts:",
          {k.split(".")[-2]: v for k, v in sorted(coverage.items())})

    print("\n=== A consumer fetches the fresh data ===")
    name = published[0][1]

    def consume():
        ticket = yield from tb.request_manager.request([(ds_id, name)])
        return ticket

    ticket = tb.run_process(consume())
    fr = ticket.files[0]
    print(f"  {fr.logical_file} delivered from {fr.chosen_location} "
          f"({fr.bytes_done / 2**20:.0f} MiB)")


if __name__ == "__main__":
    main()
