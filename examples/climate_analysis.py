#!/usr/bin/env python3
"""A climate analyst's session: remote data, local analysis (paper §3).

Fetches a full year of two variables from the distributed archive
through the request manager, then runs the standard analyses —
seasonal cycle, area-weighted global means, anomalies — and renders the
results VCDAT-style.

Run:  python examples/climate_analysis.py
"""

import numpy as np

from repro.cdat import (
    global_mean_series,
    render_field,
    render_profile,
    render_timeseries,
    seasonal_cycle,
    zonal_mean,
)
from repro.data import GridSpec
from repro.esg import EarthSystemGrid
from repro.scenarios import EsgTestbed


def main() -> None:
    # A finer grid than the quickstart: bigger files, longer transfers.
    esg = EarthSystemGrid(EsgTestbed(
        seed=11, materialize=True,
        grid=GridSpec(nlat=48, nlon=96, months=12)))

    print("=== Fetching a full year of tas + pr ===")
    tas_result, _ = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "tas",
                                          months=(1, 12))
    pr_result, _ = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "pr",
                                         months=(1, 12), warm_nws=0.0)
    ds_tas = tas_result.dataset
    ds_pr = pr_result.dataset
    print(f"  tas: {ds_tas['tas'].shape}, "
          f"{ds_tas.nbytes / 2**20:.1f} MiB in memory")
    print(f"  chosen replicas: "
          f"{sorted(set(f.chosen_location for f in tas_result.ticket.files))}")

    print("\n=== Seasonal cycle (January vs July zonal means, K) ===")
    cyc = seasonal_cycle(ds_tas, "tas")
    lat = ds_tas.coords["lat"]
    jan, jul = cyc[0].mean(axis=1), cyc[6].mean(axis=1)
    print(render_profile(jul - jan, lat,
                         title="July minus January zonal-mean tas (K)"))

    print("\n=== Global mean temperature through the year ===")
    gm = global_mean_series(ds_tas, "tas")
    print(render_timeseries(gm, title="area-weighted global mean tas",
                            units="K", height=8))

    print("\n=== Anomaly magnitude by month ===")
    from repro.cdat import anomaly
    an = anomaly(ds_tas, "tas")
    monthly_rms = np.sqrt((an ** 2).mean(axis=(1, 2)))
    for m, v in enumerate(monthly_rms, 1):
        print(f"  month {m:2d}: rms anomaly {v:5.2f} K "
              + "#" * int(v * 4))

    print("\n=== Precipitation climatology (mm/day) ===")
    from repro.cdat import time_mean
    print(render_field(time_mean(ds_pr, "pr"),
                       title="annual-mean precipitation",
                       units="mm/day", width=64, height=16))
    print("\nZonal structure (ITCZ + storm tracks):")
    print(render_profile(zonal_mean(ds_pr, "pr"), lat,
                         title="zonal-mean pr (mm/day)"))


if __name__ == "__main__":
    main()
