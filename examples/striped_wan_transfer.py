#!/usr/bin/env python3
"""The SC'2000 striped-transfer experiment (Table 1), shortened.

Reproduces the §7 configuration — 8 striped servers in Dallas sending a
partitioned 2 GB file to 8 workstations at LBNL with up to 4 TCP streams
per server, 1 MB buffers, interrupt coalescing, shared OC-48 — for ten
simulated minutes, and prints the Table 1 rows.

Run:  python examples/striped_wan_transfer.py          (10 min, ~10 s wall)
      python examples/striped_wan_transfer.py --hour   (the full hour)
"""

import sys

from repro.netlogger import bandwidth_timeline
from repro.scenarios import ScinetTestbed, run_table1_schedule


def main() -> None:
    duration = 3600.0 if "--hour" in sys.argv else 600.0
    print(f"Simulating the SC'2000 schedule for {duration:.0f} s...")
    testbed = ScinetTestbed(seed=3)
    result = run_table1_schedule(testbed, duration=duration)

    print("\n=== Table 1 ===")
    for label, value in result.rows():
        print(f"  {label:<48} {value}")
    print(f"  (partition copies completed: {result.copies_completed})")

    print("\n=== Aggregate bandwidth timeline (1-minute bins) ===")
    times, rates = bandwidth_timeline(result.series, bin_seconds=60.0)
    peak = rates.max() if len(rates) else 1.0
    for t, r in zip(times, rates):
        mbit = r * 8 / 1e6
        bar = "#" * int(40 * r / peak)
        print(f"  {t / 60:5.1f} min {mbit:8.1f} Mb/s {bar}")

    print("\nPaper's measured values: peak(0.1s)=1.55 Gb/s, "
          "peak(5s)=1.03 Gb/s,\nsustained(1h)=512.9 Mb/s, "
          "total=230.8 GB — shaped by the same mechanisms\n"
          "(CPU interrupt ceiling, shared-floor contention, 1 MB windows).")


if __name__ == "__main__":
    main()
