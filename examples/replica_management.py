#!/usr/bin/env python3
"""Replica management: the paper's Figure 6 catalog, live.

Recreates the figure's catalog (CO2 collections, a partial copy at
jupiter.isi.edu and a complete one at sprite.llnl.gov), then exercises
the management layer: replica lookup, third-party replication to a new
site, NWS-guided selection, and consistency verification.

Run:  python examples/replica_management.py
"""

from repro.net import to_mbps
from repro.scenarios import EsgTestbed


def main() -> None:
    tb = EsgTestbed(seed=4, file_size_override=64 * 2**20)
    tb.warm_nws(90.0)
    rc = tb.replica_catalog
    ds = tb.dataset_ids()[0]

    print("=== Replica catalog contents (Figure 6 style) ===")
    for coll in rc.collections():
        print(f"collection {coll.name!r}: {coll.file_count} files, "
              f"{coll.location_count} locations")
    total_files = len(tb.metadata_catalog.resolve(ds, "tas"))
    for loc in rc.locations(ds):
        kind = "complete" if len(loc.files) == total_files else "partial"
        print(f"  location {loc.name:<14} {loc.protocol}://"
              f"{loc.hostname}:{loc.port}{loc.path} "
              f"({len(loc.files)} files, {kind})")

    name = tb.metadata_catalog.resolve(ds, "tas")[5]
    print(f"\n=== Replicas of {name} ===")

    def lookup():
        replicas = yield from rc.find_replicas(ds, name)
        return replicas

    replicas = tb.run_process(lookup())
    for loc in replicas:
        print(f"  {loc.url_for(name)}")

    print("\n=== NWS forecasts for the candidate paths ===")
    for loc in replicas:
        server = tb.registry[loc.hostname]
        fc = tb.nws.forecast(server.host.node, tb.client_host.node)
        if fc:
            print(f"  {loc.hostname:<28} {to_mbps(fc.bandwidth):6.1f} Mb/s "
                  f"({fc.samples} samples)")

    print("\n=== Third-party replication to NCAR ===")
    ncar = tb.sites["ncar"]
    before = tb.replica_manager.coverage(ds)[name]

    def replicate():
        stats = yield from tb.replica_manager.replicate_file(
            tb.client_host, ds, name, "ncar-new", ncar.server)
        return stats

    stats = tb.run_process(replicate())
    after = tb.replica_manager.coverage(ds)[name]
    print(f"  moved {stats.transferred_bytes / 2**20:.0f} MiB in "
          f"{stats.duration:.1f}s at "
          f"{to_mbps(stats.mean_rate):.1f} Mb/s "
          f"(server-to-server; the client only controlled it)")
    print(f"  replica count for {name}: {before} -> {after}")

    print("\n=== Consistency check ===")
    missing = tb.replica_manager.verify_location(ds, "ncar-new",
                                                 ncar.server)
    print(f"  files registered at ncar-new but absent: {missing or 'none'}")


if __name__ == "__main__":
    main()
