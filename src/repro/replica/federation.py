"""Federated, sharded replica catalog with stale-tolerant reads.

The paper's replica catalog (§6.2) is one LDAP tree; production ESG
federated many *site* catalogs — the ESG follow-on paper and Magda both
describe the same evolution to distributed, database-backed catalogs
with cross-site search. This module supplies that tier:

- :class:`ShardRouter` — consistent-hash placement of logical
  collections onto site catalogs (with explicit affinity pins), total
  and stable: every collection routes, and removing a site only moves
  the collections it homed;
- :class:`SiteCatalog` — one site's :class:`ReplicaCatalog` over its own
  :class:`~repro.ldap.directory.DirectoryServer`;
- :class:`FederatedReplicaCatalog` — the federation facade. Writes go
  to a collection's *home* shard and replicate asynchronously (bounded
  propagation lag, version-gated conflict resolution) to the other
  shards on its preference list. Timed lookups fan out to the
  preference shards concurrently, merge version-newest-first, dedupe,
  and sort by DN; a downed shard degrades the answer to *partial*
  (flagged, circuit-breaker guarded) instead of failing it. A
  client-side result cache (TTL) lets replica selection act on stale
  entries at zero catalog cost — the request manager verifies on open
  and calls :meth:`FederatedReplicaCatalog.demote` on a mismatch, which
  hides the entry until the collection is refreshed.

The facade implements the full :class:`ReplicaCatalog` surface, so the
request manager, campaign planner, portal, and replica manager run
against a federation without change.

ULM lifeline events: ``catalog.federated_query`` (every fan-out, with
``partial``/``stale`` flags), ``catalog.stale_hit`` (a lookup served
from the cache or a lagging shard), ``catalog.demote`` (an entry hidden
after a verify-on-open mismatch), ``catalog.sync`` (a replication
round that moved ops).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ldap.directory import (
    DirectoryError,
    DirectoryServer,
    DirectoryUnavailable,
)
from repro.replica.catalog import (
    CollectionInfo,
    LocationInfo,
    ReplicaCatalog,
    ReplicaError,
)
from repro.rm.resilience import CircuitBreaker
from repro.sim.core import Environment


def _h(text: str) -> int:
    """Deterministic 32-bit hash (no PYTHONHASHSEED dependence)."""
    return zlib.crc32(text.encode("utf-8"))


class ShardRouter:
    """Consistent-hash placement of collections onto catalog sites.

    Each site contributes ``vnodes`` points on a 32-bit ring; a
    collection's *home* is the owner of the first point at or after the
    collection's hash, and its *preference list* is the home plus the
    next ``replicas - 1`` distinct sites clockwise. Routing is total
    (every name maps) and stable (removing a site only moves the
    collections whose points it owned). ``pin`` overrides the home for
    one collection — explicit site affinity for e.g. "the collection
    lives where the instrument is".
    """

    def __init__(self, sites: Iterable[str], replicas: int = 2,
                 vnodes: int = 64):
        self.sites = list(sites)
        if not self.sites:
            raise ValueError("need at least one site")
        if len(set(self.sites)) != len(self.sites):
            raise ValueError("duplicate site names")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.replicas = min(replicas, len(self.sites))
        self.vnodes = vnodes
        self._pins: Dict[str, str] = {}
        ring = []
        for site in self.sites:
            for v in range(vnodes):
                ring.append((_h(f"{site}#{v}"), site))
        # hash ties broken by site name: deterministic everywhere
        self._ring = sorted(ring)

    def pin(self, collection: str, site: str) -> None:
        """Pin ``collection``'s home to ``site`` (explicit affinity)."""
        if site not in self.sites:
            raise ValueError(f"unknown site {site!r}")
        self._pins[collection] = site

    def _successors(self, key: int) -> List[str]:
        """Distinct sites clockwise from ``key`` on the ring."""
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        out: List[str] = []
        for i in range(len(self._ring)):
            site = self._ring[(lo + i) % len(self._ring)][1]
            if site not in out:
                out.append(site)
                if len(out) == len(self.sites):
                    break
        return out

    def home(self, collection: str) -> str:
        """The shard that owns writes for ``collection``."""
        return self.preference(collection)[0]

    def preference(self, collection: str) -> List[str]:
        """Home + successor shards holding ``collection``'s subtree."""
        order = self._successors(_h(collection))
        pinned = self._pins.get(collection)
        if pinned is not None:
            order = [pinned] + [s for s in order if s != pinned]
        return order[:self.replicas]

    def __repr__(self) -> str:
        return (f"ShardRouter({len(self.sites)} sites, "
                f"replicas={self.replicas}, vnodes={self.vnodes})")


@dataclass
class SiteCatalog:
    """One site's replica catalog shard."""

    name: str
    catalog: ReplicaCatalog
    directory: DirectoryServer


@dataclass(frozen=True)
class QueryMeta:
    """How a federated lookup was answered."""

    served_by: Tuple[str, ...]   # shards (or ("cache",)) that answered
    winner: str                  # shard whose result set was taken
    partial: bool                # some preference shard was unreachable
    stale: bool                  # answer may lag the home's truth
    version: int                 # collection version of the answer
    queried: int                 # shards actually queried (0 = cache)


class FederatedReplicaCatalog:
    """Sharded replica catalog federated across site catalogs.

    Parameters
    ----------
    env:
        Simulation environment.
    sites:
        Site names; one :class:`SiteCatalog` (own directory server) is
        built per site. Every shard uses the same catalog root name so
        entry DNs are identical across sites and merge by DN.
    name:
        Catalog root name (``rc=<name>`` on every shard).
    replication:
        Shards holding each collection (home + ``replication - 1``).
    sync_interval:
        Async replication period, seconds — the bounded propagation lag
        between a home write and the peers seeing it.
    cache_ttl:
        Client-side lookup cache TTL in seconds (0 disables). Cache
        hits cost no simulated time; they may be stale, which the
        request manager's verify-on-open + :meth:`demote` tolerate.
    obs:
        Optional :class:`~repro.obs.Observability` bundle.
    base_latency:
        Per-operation cost of each shard's directory server.
    """

    def __init__(self, env: Environment, sites: Iterable[str],
                 name: str = "esg", replication: int = 2,
                 sync_interval: float = 30.0, cache_ttl: float = 0.0,
                 vnodes: int = 64, base_latency: float = 0.005,
                 obs=None, breaker_failure_threshold: int = 3,
                 breaker_reset_timeout: float = 60.0):
        if sync_interval <= 0:
            raise ValueError("sync_interval must be positive")
        if cache_ttl < 0:
            raise ValueError("cache_ttl must be >= 0")
        self.env = env
        self.name = name
        self.sync_interval = sync_interval
        self.cache_ttl = cache_ttl
        self.obs = obs
        self.router = ShardRouter(sites, replicas=replication,
                                  vnodes=vnodes)
        self.sites: Dict[str, SiteCatalog] = {}
        for site in self.router.sites:
            directory = DirectoryServer(env, f"rc-{name}-{site}",
                                        base_latency=base_latency)
            self.sites[site] = SiteCatalog(
                site, ReplicaCatalog(env, directory=directory, name=name),
                directory)
        self._site_order = list(self.router.sites)
        self._breakers = {
            site: CircuitBreaker(f"catalog:{site}",
                                 breaker_failure_threshold,
                                 breaker_reset_timeout, obs=obs)
            for site in self._site_order}
        # per-collection monotonic version (bumped by every home write)
        self._version: Dict[str, int] = {}
        # (site, collection) -> last version applied at that site
        self._applied: Dict[Tuple[str, str], int] = {}
        # site -> ordered replication log of (version, collection, op, args)
        self._pending: Dict[str, List[tuple]] = {s: []
                                                 for s in self._site_order}
        # (collection, logical_file, location) -> version at demotion;
        # the entry is hidden until the collection moves past it.
        self._demoted: Dict[Tuple[str, str, str], int] = {}
        # collection -> logical_file -> (expires_at, version, locations)
        self._cache: Dict[str, Dict[str, tuple]] = {}
        self._running = False
        # instrumentation
        self.queries = 0
        self.cache_hits = 0
        self.stale_hits = 0
        self.partial_queries = 0
        self.demotes = 0
        self.refreshes = 0
        self.replicated_ops = 0
        self.conflicts_resolved = 0
        self.syncs = 0

    # -- replication machinery --------------------------------------------
    def start(self) -> None:
        """Begin the periodic replication pump (idempotent)."""
        if not self._running and len(self._site_order) > 1:
            self._running = True
            self.env.process(self._sync_loop())

    def _sync_loop(self):
        while True:
            yield self.env.timeout(self.sync_interval)
            self.sync_now()

    def sync_now(self) -> int:
        """Push pending ops to every *reachable* peer; returns count.

        A shard inside an outage window receives nothing (its log keeps
        accumulating), so an outage widens that shard's staleness
        instead of wedging the pump. Conflict resolution is
        version-gated last-writer-wins: an op at or below the version a
        shard has already applied for that collection is discarded (the
        idempotent-replay path real multi-master catalogs need).
        """
        applied = 0
        for site_name in self._site_order:
            queue = self._pending[site_name]
            if not queue:
                continue
            site = self.sites[site_name]
            if not site.directory.available:
                continue
            for version, collection, opname, args in queue:
                if version <= self._applied.get((site_name, collection),
                                                -1):
                    self.conflicts_resolved += 1
                    continue
                self._apply(site.catalog, opname, args)
                self._applied[(site_name, collection)] = version
                self.replicated_ops += 1
                applied += 1
            queue.clear()
        self.syncs += 1
        if applied and self.obs is not None:
            self.obs.event("catalog.sync", prog="replica-catalog",
                           ops=applied)
            self.obs.count("catalog.replicated_ops_total", applied)
        return applied

    @staticmethod
    def _apply(catalog: ReplicaCatalog, opname: str, args: tuple) -> None:
        try:
            getattr(catalog, opname)(*args)
        except (ReplicaError, DirectoryError):
            # Replays against an already-converged shard are no-ops.
            pass

    @property
    def lag(self) -> int:
        """Writes not yet propagated to some peer shard."""
        return sum(len(q) for q in self._pending.values())

    def version(self, collection: str) -> int:
        """Current (home-side) version of a collection (0 = never written)."""
        return self._version.get(collection, 0)

    def _write(self, collection: str, opname: str, *args) -> None:
        """Apply a write at the home shard and log it for the peers."""
        prefs = self.router.preference(collection)
        home = self.sites[prefs[0]]
        getattr(home.catalog, opname)(*args)
        version = self._version.get(collection, 0) + 1
        self._version[collection] = version
        self._applied[(prefs[0], collection)] = version
        for peer in prefs[1:]:
            self._pending[peer].append((version, collection, opname, args))
        # Any write refreshes the collection: cached results are
        # invalidated so the next lookup re-queries the shards.
        self._cache.pop(collection, None)

    # -- registration (the ReplicaCatalog write surface) -------------------
    def create_collection(self, collection: str,
                          description: str = "") -> None:
        """Register a logical collection at its home shard."""
        self._write(collection, "create_collection", collection,
                    description)

    def register_location(self, collection: str, location: str,
                          protocol: str, hostname: str, port: int,
                          path: str, files: Iterable[str]) -> None:
        """Register a physical copy of a collection."""
        self._write(collection, "register_location", collection, location,
                    protocol, hostname, port, path, tuple(files))

    def register_logical_file(self, collection: str, logical_file: str,
                              size: float,
                              attributes: Optional[Dict] = None) -> None:
        """Optionally register a per-file entry (size, digest...)."""
        self._write(collection, "register_logical_file", collection,
                    logical_file, size, attributes)

    def add_file_to_location(self, collection: str, location: str,
                             logical_file: str) -> None:
        """Extend a location's filename list."""
        self._write(collection, "add_file_to_location", collection,
                    location, logical_file)

    def remove_file_from_location(self, collection: str, location: str,
                                  logical_file: str) -> None:
        """Drop one file from a location (replica deleted)."""
        self._write(collection, "remove_file_from_location", collection,
                    location, logical_file)

    def delete_location(self, collection: str, location: str) -> None:
        """Unregister a physical copy."""
        self._write(collection, "delete_location", collection, location)

    # -- immediate reads (setup / planning plane: home-authoritative) ------
    def _home(self, collection: str) -> SiteCatalog:
        return self.sites[self.router.home(collection)]

    def collections(self) -> List[CollectionInfo]:
        """All collections, federated across every shard and deduped.

        Each collection is reported from its home shard (authoritative);
        results are sorted by name so iteration order never depends on
        shard order.
        """
        out: Dict[str, CollectionInfo] = {}
        for site_name in self._site_order:
            site = self.sites[site_name]
            for info in site.catalog.collections():
                if info.name not in out \
                        or self.router.home(info.name) == site_name:
                    out[info.name] = info
        return [out[name] for name in sorted(out)]

    def locations(self, collection: str) -> List[LocationInfo]:
        """Every physical copy of a collection (home-authoritative)."""
        return sorted(self._home(collection).catalog.locations(collection),
                      key=lambda loc: loc.name)

    def logical_file_size(self, collection: str,
                          logical_file: str) -> Optional[float]:
        """Registered size, or None."""
        return self._home(collection).catalog.logical_file_size(
            collection, logical_file)

    def logical_file_digest(self, collection: str,
                            logical_file: str) -> Optional[str]:
        """Publish-time content digest, or None."""
        return self._home(collection).catalog.logical_file_digest(
            collection, logical_file)

    # -- stale-tolerant selection support ---------------------------------
    def demote(self, collection: str, logical_file: str,
               location: str) -> None:
        """Hide one (file, location) entry after a verify-on-open
        mismatch; it is not re-offered until the collection is
        refreshed (any home write bumps the version past the demotion).
        The cached lookup for the file is invalidated so the caller's
        re-selection sees the demotion immediately.
        """
        self._demoted[(collection, logical_file, location)] = \
            self._version.get(collection, 0)
        cached = self._cache.get(collection)
        if cached is not None:
            cached.pop(logical_file, None)
        self.demotes += 1
        if self.obs is not None:
            self.obs.event("catalog.demote", prog="replica-catalog",
                           collection=collection, file=logical_file,
                           location=location)
            self.obs.count("catalog.demotes_total")

    def is_demoted(self, collection: str, logical_file: str,
                   location: str) -> bool:
        """True while a demoted entry is hidden (not yet refreshed)."""
        version = self._demoted.get((collection, logical_file, location))
        if version is None:
            return False
        if self._version.get(collection, 0) > version:
            # The collection moved on: the entry is refreshed, offer it.
            del self._demoted[(collection, logical_file, location)]
            self.refreshes += 1
            return False
        return True

    def _offerable(self, collection: str, logical_file: str,
                   locations: List[LocationInfo]) -> List[LocationInfo]:
        return [loc for loc in locations
                if not self.is_demoted(collection, logical_file, loc.name)]

    def _note_stale(self, collection: str, logical_file: str,
                    source: str) -> None:
        self.stale_hits += 1
        if self.obs is not None:
            self.obs.event("catalog.stale_hit", prog="replica-catalog",
                           collection=collection, file=logical_file,
                           source=source)
            self.obs.count("catalog.stale_hits_total", source=source)

    # -- timed federated lookup (what the request manager calls) -----------
    def find_replicas(self, collection: str, logical_file: str):
        """Simulation process: locations holding ``logical_file``."""
        locations, _meta = yield from self.find_replicas_meta(
            collection, logical_file)
        return locations

    def find_replicas_meta(self, collection: str, logical_file: str):
        """Simulation process: ``(locations, QueryMeta)``.

        Serves from the client cache when fresh enough (zero cost, may
        be stale); otherwise fans out to the collection's preference
        shards concurrently, takes the version-newest answer, flags the
        result ``partial`` when a shard was unreachable (breaker open or
        outage) and ``stale`` when the answer lags the home's version.
        Results are deduplicated and sorted by DN (location name) so
        downstream iteration is deterministic. Raises
        :class:`DirectoryUnavailable` when no shard could answer, and
        :class:`ReplicaError` when every healthy shard agrees the
        collection does not exist.
        """
        self.queries += 1
        env = self.env
        current = self._version.get(collection, 0)
        cached = self._cache.get(collection, {}).get(logical_file)
        if cached is not None and env.now < cached[0]:
            _expires, version, locations = cached
            self.cache_hits += 1
            stale = version < current
            if stale:
                self._note_stale(collection, logical_file, "cache")
            self._emit_query(collection, logical_file, served=1,
                             winner="cache", partial=False, stale=stale)
            return (self._offerable(collection, logical_file, locations),
                    QueryMeta(("cache",), "cache", False, stale, version,
                              0))
        prefs = self.router.preference(collection)
        procs = {}
        skipped = 0
        for site in prefs:
            if self._breakers[site].allow(env.now):
                procs[site] = env.process(
                    self._site_query(site, collection, logical_file))
            else:
                skipped += 1
        if procs:
            yield env.all_of(list(procs.values()))
        responders = []           # (version, -pref_index, site, locations)
        failed = skipped
        absent = 0
        for index, site in enumerate(prefs):
            proc = procs.get(site)
            if proc is None:
                continue
            status, locations = proc.value
            if status == "down":
                self._breakers[site].record_failure(env.now)
                failed += 1
                continue
            self._breakers[site].record_success()
            if status == "absent":
                absent += 1
                continue
            responders.append(
                (self._applied.get((site, collection), -1), -index, site,
                 locations))
        partial = failed > 0
        if partial:
            self.partial_queries += 1
            if self.obs is not None:
                self.obs.count("catalog.partial_queries_total")
        if not responders:
            if failed > 0:
                self._emit_query(collection, logical_file, served=0,
                                 winner="none", partial=True, stale=True)
                raise DirectoryUnavailable(
                    f"federated catalog: no reachable shard holds "
                    f"{collection!r} ({failed} shard(s) down)")
            raise ReplicaError(f"no collection {collection!r}")
        version, _neg, winner, locations = max(responders)
        stale = version < current
        if stale:
            self._note_stale(collection, logical_file, "shard")
        locations = sorted(locations, key=lambda loc: loc.name)
        if self.cache_ttl > 0:
            self._cache.setdefault(collection, {})[logical_file] = (
                env.now + self.cache_ttl, version, locations)
        self._emit_query(collection, logical_file, served=len(responders),
                         winner=winner, partial=partial, stale=stale)
        return (self._offerable(collection, logical_file, locations),
                QueryMeta(tuple(site for _v, _n, site, _l
                                in sorted(responders, key=lambda r: r[2])),
                          winner, partial, stale, version, len(procs)))

    def _site_query(self, site_name: str, collection: str,
                    logical_file: str):
        """One shard's timed lookup; never raises.

        Returns ``("ok", locations)``, ``("absent", [])`` when the shard
        is healthy but has never seen the collection, or
        ``("down", [])`` when it is unreachable.
        """
        site = self.sites[site_name]
        try:
            locations = yield from site.catalog.find_replicas(
                collection, logical_file)
        except DirectoryUnavailable:
            return "down", []
        except ReplicaError:
            return "absent", []
        except DirectoryError:
            return "down", []
        return "ok", locations

    def _emit_query(self, collection: str, logical_file: str, served: int,
                    winner: str, partial: bool, stale: bool) -> None:
        if self.obs is None:
            return
        self.obs.event("catalog.federated_query", prog="replica-catalog",
                       collection=collection, file=logical_file,
                       served=served, winner=winner,
                       partial=int(partial), stale=int(stale))
        self.obs.count("catalog.federated_queries_total")

    # -- fault injection ---------------------------------------------------
    def add_outage(self, start: float, duration: float,
                   mode: str = "fail") -> None:
        """Whole-federation outage: a window on every shard directory
        (the fault injector's generic "catalog" target). Per-shard
        windows go through ``sites[name].directory.add_outage``."""
        for site in self.sites.values():
            site.directory.add_outage(start, duration, mode=mode)

    # -- introspection ----------------------------------------------------
    def shard_map(self) -> Dict[str, List[str]]:
        """collection -> preference list (routing snapshot)."""
        return {info.name: self.router.preference(info.name)
                for info in self.collections()}

    def stats(self) -> Dict[str, object]:
        """Federation health counters (CLI / bench reporting)."""
        return {
            "sites": {name: len(site.directory)
                      for name, site in self.sites.items()},
            "pending": {name: len(queue)
                        for name, queue in self._pending.items()},
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "stale_hits": self.stale_hits,
            "partial_queries": self.partial_queries,
            "demotes": self.demotes,
            "refreshes": self.refreshes,
            "replicated_ops": self.replicated_ops,
            "conflicts_resolved": self.conflicts_resolved,
            "syncs": self.syncs,
            "breakers": {site: breaker.state.value
                         for site, breaker in self._breakers.items()},
        }

    def __repr__(self) -> str:
        entries = {name: len(site.directory)
                   for name, site in self.sites.items()}
        return (f"FederatedReplicaCatalog({self.name!r}, "
                f"{len(self.sites)} shards, entries={entries}, "
                f"lag={self.lag})")
