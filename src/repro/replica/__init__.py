"""Globus-style replica catalog and replica management (paper §6.2).

Three entry types, exactly as the paper describes:

- **logical collections** — user-defined groups of files ("users will
  often find it convenient ... to register and manipulate groups of
  files as a collection");
- **locations** — a complete or partial copy of a collection on one
  storage system, carrying everything needed to build transfer URLs
  (protocol, hostname, port, path) plus the filename list;
- **logical files** — *optional* per-file entries with globally unique
  names ("we chose to make logical file entries optional to improve
  catalog scalability for large collections").

:class:`ReplicaCatalog` stores these in an LDAP directory;
:class:`ReplicaManager` layers registration/publication/copy operations;
``repro.replica.selection`` provides the selection policies the request
manager chooses among (NWS-best, random, round-robin).
"""

from repro.replica.catalog import (
    CollectionInfo,
    LocationInfo,
    ReplicaCatalog,
    ReplicaError,
)
from repro.replica.federation import (
    FederatedReplicaCatalog,
    QueryMeta,
    ShardRouter,
    SiteCatalog,
)
from repro.replica.manager import ReplicaManager
from repro.replica.mapping import MappingRule, MappingTable
from repro.replica.selection import (
    NwsBestPolicy,
    NwsSpreadPolicy,
    RandomPolicy,
    ReplicaCandidate,
    RoundRobinPolicy,
    SelectionPolicy,
)

__all__ = [
    "CollectionInfo",
    "FederatedReplicaCatalog",
    "LocationInfo",
    "MappingRule",
    "MappingTable",
    "NwsBestPolicy",
    "NwsSpreadPolicy",
    "QueryMeta",
    "RandomPolicy",
    "ReplicaCandidate",
    "ReplicaCatalog",
    "ReplicaError",
    "ReplicaManager",
    "RoundRobinPolicy",
    "SelectionPolicy",
    "ShardRouter",
    "SiteCatalog",
]
