"""The replica catalog: collections, locations, optional logical files.

DIT layout (cf. the paper's Figure 6 example)::

    rc=<catalog>
      lc=<collection>                   logical collection
        loc=<location>                  one physical copy (maybe partial)
        lf=<logical file>               optional per-file entry (size...)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ldap.directory import DirectoryServer, Scope
from repro.ldap.dn import DN
from repro.sim.core import Environment


class ReplicaError(Exception):
    """Catalog inconsistency or missing entry."""


@dataclass(frozen=True)
class LocationInfo:
    """One physical copy of (part of) a collection.

    Attributes mirror the paper: "protocol, hostname, port, path —
    required to map from logical names for files to URLs".
    """

    name: str
    protocol: str
    hostname: str
    port: int
    path: str
    files: Tuple[str, ...]

    def url_for(self, logical_file: str) -> str:
        """Transfer URL for a file held at this location."""
        if logical_file not in self.files:
            raise ReplicaError(f"{logical_file!r} not at location "
                               f"{self.name!r}")
        return (f"{self.protocol}://{self.hostname}:{self.port}"
                f"{self.path}/{logical_file}")

    def holds(self, logical_file: str) -> bool:
        return logical_file in self.files


@dataclass(frozen=True)
class CollectionInfo:
    """A logical collection summary."""

    name: str
    description: str
    file_count: int
    location_count: int


class ReplicaCatalog:
    """LDAP-backed replica catalog.

    Parameters
    ----------
    env:
        Simulation environment.
    directory:
        Backing :class:`DirectoryServer` (created if not supplied).
    name:
        Catalog name (root entry ``rc=<name>``).
    """

    def __init__(self, env: Environment,
                 directory: Optional[DirectoryServer] = None,
                 name: str = "esg"):
        self.env = env
        # Explicit None test: an empty DirectoryServer is falsy (len 0),
        # and a caller-supplied backing store must never be discarded.
        self.directory = (directory if directory is not None
                          else DirectoryServer(env, name=f"rc-{name}"))
        # Authoritative view for the write path: a replicated directory
        # serves point reads from possibly-stale replicas, but
        # duplicate/parent guards and read-modify-write need the
        # master's truth (read-your-writes).
        auth = getattr(self.directory, "primary", None)
        self._auth = auth if auth is not None else self.directory
        self.name = name
        self.root = DN.parse(f"rc={name}")
        if not self._auth.exists(self.root):
            self.directory.add(self.root, {"objectclass": "replicacatalog"})

    # -- registration (setup-time, immediate) -----------------------------
    def create_collection(self, collection: str,
                          description: str = "") -> None:
        """Register a logical collection."""
        dn = self.root.child("lc", collection)
        if self._auth.exists(dn):
            raise ReplicaError(f"collection {collection!r} exists")
        self.directory.add(dn, {"objectclass": "logicalcollection",
                                "description": description})

    def register_location(self, collection: str, location: str,
                          protocol: str, hostname: str, port: int,
                          path: str, files: Iterable[str]) -> None:
        """Register a (possibly partial) physical copy of a collection."""
        files = tuple(files)
        cdn = self._collection_dn(collection)
        dn = cdn.child("loc", location)
        if self._auth.exists(dn):
            raise ReplicaError(f"location {location!r} exists in "
                               f"{collection!r}")
        self.directory.add(dn, {
            "objectclass": "location",
            "protocol": protocol, "hostname": hostname,
            "port": str(port), "path": path,
            "filename": list(files)})

    def register_logical_file(self, collection: str, logical_file: str,
                              size: float,
                              attributes: Optional[Dict] = None) -> None:
        """Optionally register a per-file entry (size etc.)."""
        cdn = self._collection_dn(collection)
        dn = cdn.child("lf", logical_file)
        if self._auth.exists(dn):
            raise ReplicaError(f"logical file {logical_file!r} exists")
        attrs = {"objectclass": "logicalfile", "size": str(size)}
        attrs.update(attributes or {})
        self.directory.add(dn, attrs)

    def add_file_to_location(self, collection: str, location: str,
                             logical_file: str) -> None:
        """Extend a location's filename list (after a copy completes)."""
        dn = self._location_dn(collection, location)
        self.directory.modify(dn, add_values={"filename": logical_file})

    def remove_file_from_location(self, collection: str, location: str,
                                  logical_file: str) -> None:
        """Drop one file from a location (replica deleted)."""
        dn = self._location_dn(collection, location)
        entry = self._auth.lookup(dn)
        files = [f for f in entry.get("filename") if f != logical_file]
        self.directory.modify(dn, replace={"filename": files})

    def delete_location(self, collection: str, location: str) -> None:
        """Unregister a physical copy."""
        self.directory.delete(self._location_dn(collection, location))

    # -- immediate queries --------------------------------------------------------
    def collections(self) -> List[CollectionInfo]:
        """All registered collections."""
        out = []
        for entry in self.directory.search(
                self.root, Scope.ONELEVEL, "(objectclass=logicalcollection)"):
            coll = entry.dn.rdn[1]
            locs = self.locations(coll)
            files = {f for l in locs for f in l.files}
            out.append(CollectionInfo(coll,
                                      entry.first("description", ""),
                                      len(files), len(locs)))
        return out

    def locations(self, collection: str) -> List[LocationInfo]:
        """Every physical copy of a collection."""
        cdn = self._collection_dn(collection)
        out = []
        for entry in self.directory.search(cdn, Scope.ONELEVEL,
                                           "(objectclass=location)"):
            out.append(LocationInfo(
                name=entry.dn.rdn[1],
                protocol=entry.first("protocol", "gsiftp"),
                hostname=entry.first("hostname", ""),
                port=int(entry.first("port", "2811")),
                path=entry.first("path", "/"),
                files=tuple(entry.get("filename"))))
        return out

    def logical_file_size(self, collection: str,
                          logical_file: str) -> Optional[float]:
        """Registered size, or None (logical file entries are optional)."""
        dn = self._collection_dn(collection).child("lf", logical_file)
        if not self._auth.exists(dn):
            return None
        return float(self._auth.lookup(dn).first("size", "0"))

    def logical_file_digest(self, collection: str,
                            logical_file: str) -> Optional[str]:
        """Publish-time content digest, or None if never recorded.

        The digest is written once when the pristine copy is registered;
        verification compares every delivered copy against it.
        """
        dn = self._collection_dn(collection).child("lf", logical_file)
        if not self._auth.exists(dn):
            return None
        return self._auth.lookup(dn).first("digest", "") or None

    # -- timed query (what the request manager calls) ------------------------------
    def find_replicas(self, collection: str, logical_file: str):
        """Simulation process: locations holding ``logical_file``.

        This is RM step (1): "it finds all replicas for the file from the
        Replica Catalog using an LDAP protocol".
        """
        cdn = self._collection_dn(collection)
        entries = yield from self.directory.query(
            cdn, Scope.ONELEVEL,
            f"(&(objectclass=location)(filename={logical_file}))")
        return [LocationInfo(
            name=e.dn.rdn[1],
            protocol=e.first("protocol", "gsiftp"),
            hostname=e.first("hostname", ""),
            port=int(e.first("port", "2811")),
            path=e.first("path", "/"),
            files=tuple(e.get("filename"))) for e in entries]

    # -- internals ------------------------------------------------------------------
    def _collection_dn(self, collection: str) -> DN:
        dn = self.root.child("lc", collection)
        if not self._auth.exists(dn):
            raise ReplicaError(f"no collection {collection!r}")
        return dn

    def _location_dn(self, collection: str, location: str) -> DN:
        dn = self._collection_dn(collection).child("loc", location)
        if not self._auth.exists(dn):
            raise ReplicaError(f"no location {location!r} in "
                               f"{collection!r}")
        return dn

    def __repr__(self) -> str:
        return f"ReplicaCatalog({self.name!r}, {len(self.directory)} entries)"
