"""Replica selection policies.

RM step (3): "it selects the 'best' replica based on the NWS
information"; "the current implementation ... selects the 'best' replica
based on the highest bandwidth between the candidate replica and the
destination of the data transfer" (§5). Random and round-robin policies
exist as the ablation baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

import numpy as np

from repro.replica.catalog import LocationInfo


@dataclass(frozen=True)
class ReplicaCandidate:
    """A location annotated with forecast network performance."""

    location: LocationInfo
    bandwidth: float          # forecast bytes/s to the destination
    latency: float            # forecast one-way seconds
    stage_wait: float = 0.0   # expected HRM staging delay, seconds
    stale: bool = False       # came from a stale/cached catalog answer

    def transfer_estimate(self, nbytes: float) -> float:
        """Predicted seconds to move ``nbytes`` from this replica."""
        bw = max(self.bandwidth, 1.0)
        return self.stage_wait + self.latency + nbytes / bw


class SelectionPolicy(Protocol):
    """Ranks candidates; the first element of the result is tried first."""

    def rank(self, candidates: List[ReplicaCandidate],
             nbytes: float) -> List[ReplicaCandidate]:
        """Best-first ordering of the candidates."""
        ...  # pragma: no cover


def _record_rank(obs, policy: str,
                 candidates: List[ReplicaCandidate]) -> None:
    """Selection metrics shared by all policies (no-op without obs)."""
    if obs is None:
        return
    obs.count("replica.ranks_total", policy=policy)
    obs.gauge("replica.candidates", len(candidates), policy=policy)
    n_stale = sum(1 for c in candidates if c.stale)
    if n_stale:
        obs.count("replica.stale_candidates_total", n_stale, policy=policy)


class NwsBestPolicy:
    """Highest forecast bandwidth first (the paper's policy).

    ``consider_staging`` additionally folds expected HRM staging time
    into the ranking for size-aware decisions.
    """

    def __init__(self, consider_staging: bool = False, obs=None):
        self.consider_staging = consider_staging
        self.obs = obs

    def rank(self, candidates: List[ReplicaCandidate],
             nbytes: float) -> List[ReplicaCandidate]:
        _record_rank(self.obs, "nws-best", candidates)
        if self.consider_staging:
            return sorted(candidates,
                          key=lambda c: c.transfer_estimate(nbytes))
        return sorted(candidates, key=lambda c: -c.bandwidth)


class NwsSpreadPolicy:
    """NWS-guided selection that spreads concurrent load across sites.

    §4: "A RM can then plan concurrent file transfers to maximize the
    number of different sites from which files are obtained." Greedy
    per-file best-bandwidth selection sends every file of a burst to
    the same site; this policy rotates among the candidates whose
    (staging-aware) transfer estimate is within ``tolerance`` of the
    best, so a multi-file request drinks from several near-best
    replicas at once.
    """

    def __init__(self, tolerance: float = 0.5, obs=None):
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.tolerance = tolerance
        self.obs = obs
        self._counter = 0

    def rank(self, candidates: List[ReplicaCandidate],
             nbytes: float) -> List[ReplicaCandidate]:
        _record_rank(self.obs, "nws-spread", candidates)
        if not candidates:
            return []
        ranked = sorted(candidates,
                        key=lambda c: c.transfer_estimate(nbytes))
        best = ranked[0].transfer_estimate(nbytes)
        cut = 1
        while (cut < len(ranked)
               and ranked[cut].transfer_estimate(nbytes)
               <= best * (1 + self.tolerance)):
            cut += 1
        top, rest = ranked[:cut], ranked[cut:]
        k = self._counter % len(top)
        self._counter += 1
        return top[k:] + top[:k] + rest


class RandomPolicy:
    """Uniform random order (ablation baseline)."""

    def __init__(self, rng: np.random.Generator, obs=None):
        self.rng = rng
        self.obs = obs

    def rank(self, candidates: List[ReplicaCandidate],
             nbytes: float) -> List[ReplicaCandidate]:
        _record_rank(self.obs, "random", candidates)
        order = self.rng.permutation(len(candidates))
        return [candidates[i] for i in order]


class RoundRobinPolicy:
    """Rotates through replicas across successive calls (ablation
    baseline; also what a load-balancing selector without performance
    information would do)."""

    def __init__(self, obs=None):
        self.obs = obs
        self._counter = 0

    def rank(self, candidates: List[ReplicaCandidate],
             nbytes: float) -> List[ReplicaCandidate]:
        _record_rank(self.obs, "round-robin", candidates)
        if not candidates:
            return []
        ordered = sorted(candidates, key=lambda c: c.location.name)
        k = self._counter % len(ordered)
        self._counter += 1
        return ordered[k:] + ordered[:k]
