"""Replica management: publish, copy, verify.

"These two services [GridFTP + replica catalog] are used to construct a
range of higher-level data management services, such as reliable
creation of a copy of a large data collection at a new location" (§6).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.gridftp.client import GridFtpClient
from repro.gridftp.server import GridFtpServer
from repro.replica.catalog import ReplicaCatalog, ReplicaError
from repro.sim.core import Environment


class ReplicaManager:
    """Registration and copy operations over a :class:`ReplicaCatalog`."""

    def __init__(self, env: Environment, catalog: ReplicaCatalog,
                 client: Optional[GridFtpClient] = None):
        self.env = env
        self.catalog = catalog
        self.client = client
        self.copies_made = 0

    # -- publication ---------------------------------------------------------
    def publish_server(self, collection: str, location: str,
                       server: GridFtpServer,
                       files: Optional[Iterable[str]] = None,
                       path: str = "/data",
                       register_sizes: bool = False) -> List[str]:
        """Register files already on a GridFTP server as a location.

        ``files`` defaults to everything in the server's filesystem.
        With ``register_sizes`` each file also gets an optional logical
        file entry (the Figure 6 catalog registers sizes this way).
        """
        if files is None:
            names = [f.name for f in server.fs]
        else:
            names = [f for f in files if server.fs.exists(f)]
            missing = set(files) - set(names)
            if missing:
                raise ReplicaError(
                    f"{server.hostname}: missing files {sorted(missing)}")
        self.catalog.register_location(
            collection, location, protocol="gsiftp",
            hostname=server.hostname, port=2811, path=path, files=names)
        if register_sizes:
            for name in names:
                if self.catalog.logical_file_size(collection, name) is None:
                    self.catalog.register_logical_file(
                        collection, name, server.fs.stat(name).size)
        return names

    # -- replication -----------------------------------------------------------
    def replicate_file(self, control_host, collection: str,
                       logical_file: str, dest_location: str,
                       dest_server: GridFtpServer):
        """Simulation process: copy one file to a new location.

        Picks any existing replica as the source, performs a third-party
        GridFTP copy, and registers the new copy (creating the location
        entry if needed). Returns the TransferStats.
        """
        if self.client is None:
            raise ReplicaError("no GridFTP client configured")
        replicas = yield from self.catalog.find_replicas(collection,
                                                         logical_file)
        if not replicas:
            raise ReplicaError(f"no replica of {logical_file!r}")
        src = replicas[0]
        stats = yield from self.client.third_party_copy(
            control_host, src.hostname, dest_server.hostname, logical_file)
        existing = {l.name for l in self.catalog.locations(collection)}
        if dest_location not in existing:
            self.catalog.register_location(
                collection, dest_location, protocol="gsiftp",
                hostname=dest_server.hostname, port=2811, path="/data",
                files=[logical_file])
        else:
            self.catalog.add_file_to_location(collection, dest_location,
                                              logical_file)
        self.copies_made += 1
        return stats

    # -- verification ---------------------------------------------------------------
    def verify_location(self, collection: str, location: str,
                        server: GridFtpServer) -> List[str]:
        """Files the catalog claims are at a location but are not there."""
        locs = {l.name: l for l in self.catalog.locations(collection)}
        info = locs.get(location)
        if info is None:
            raise ReplicaError(f"no location {location!r}")
        return [f for f in info.files if not server.exists(f)]

    def coverage(self, collection: str) -> dict:
        """logical file → number of locations holding it."""
        counts: dict = {}
        for loc in self.catalog.locations(collection):
            for f in loc.files:
                counts[f] = counts.get(f, 0) + 1
        return counts
