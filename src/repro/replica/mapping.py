"""Flexible logical→physical name mappings.

§6.2: "Current design effort for the replica catalog is focused on
support for ... more flexible mappings between logical and physical
file names."

A :class:`MappingRule` maps a logical-name pattern to a physical URL
template, so a location need not enumerate every filename ("pattern
locations" — the design that later became the Replica Location
Service's attribute mappings). Patterns use ``*`` wildcards; templates
substitute captured groups as ``{1}``, ``{2}`` ... and the whole name as
``{name}``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class MappingRule:
    """One pattern → template rule.

    >>> rule = MappingRule("pcmdi.*.nc",
    ...                    "gsiftp://a.gov:2811/esg/{1}.nc")
    >>> rule.map("pcmdi.run1.1995.nc")
    'gsiftp://a.gov:2811/esg/run1.1995.nc'
    """

    pattern: str
    template: str

    def __post_init__(self) -> None:
        if not self.pattern or not self.template:
            raise ValueError("pattern and template required")
        # Compile eagerly so bad rules fail at registration time; each
        # `*` becomes a lazy capture group usable as {1}, {2}, ...
        parts = self.pattern.split("*")
        regex = "^" + "(.*?)".join(re.escape(p) for p in parts) + "$"
        object.__setattr__(self, "_regex", re.compile(regex))

    def matches(self, logical_name: str) -> bool:
        """True if this rule applies to the name."""
        return self._regex.match(logical_name) is not None

    def map(self, logical_name: str) -> Optional[str]:
        """The physical URL, or None when the pattern doesn't match."""
        m = self._regex.match(logical_name)
        if m is None:
            return None
        out = self.template.replace("{name}", logical_name)
        for i, group in enumerate(m.groups(), start=1):
            out = out.replace("{" + str(i) + "}", group)
        return out


class MappingTable:
    """An ordered rule list: first matching rule wins."""

    def __init__(self):
        self.rules: List[MappingRule] = []

    def add_rule(self, pattern: str, template: str) -> MappingRule:
        """Append a rule."""
        rule = MappingRule(pattern, template)
        self.rules.append(rule)
        return rule

    def resolve(self, logical_name: str) -> Optional[str]:
        """Physical URL for a logical name, or None."""
        for rule in self.rules:
            url = rule.map(logical_name)
            if url is not None:
                return url
        return None

    def resolve_all(self, logical_name: str) -> List[str]:
        """Every rule's mapping (all replicas reachable by pattern)."""
        out = []
        for rule in self.rules:
            url = rule.map(logical_name)
            if url is not None and url not in out:
                out.append(url)
        return out

    def __len__(self) -> int:
        return len(self.rules)
