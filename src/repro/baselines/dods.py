"""A DODS-style (OPeNDAP ancestor) data server and client.

Architecture per §8: clients link a DODS API and access remote data via
URL over plain HTTP; servers run per-format filters offering subsetting
and translation. One TCP stream, default OS buffers, no security
handshake, no restart, no replica awareness — great deployability, poor
fit for bulk WAN movement. The quantitative comparison against GridFTP
is ablation bench A6.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.data.ncformat import decode, encode
from repro.data.variables import Dataset
from repro.hosts.host import Host
from repro.net.fluid import FlowError
from repro.net.tcp import TcpParams
from repro.net.transport import ConnectionRefused, Transport
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


class DodsError(Exception):
    """Request failed (missing file, bad constraint, dead connection)."""


class DodsServer:
    """Serves files over HTTP with optional constraint-based subsetting.

    Constraint expressions select a variable and coordinate ranges
    (``?tas&lat=(-30,30)``-style, passed structured here). Subsetting
    requires SDBF content; size-only files can only be shipped whole.
    """

    def __init__(self, env: Environment, host: Host, fs: FileSystem,
                 hostname: str, filter_cost_per_mb: float = 0.02):
        self.env = env
        self.host = host
        self.fs = fs
        self.hostname = hostname
        self.filter_cost_per_mb = filter_cost_per_mb
        self.requests_served = 0

    def evaluate(self, path: str, variable: Optional[str] = None,
                 **ranges: Tuple[float, float]):
        """Simulation process: run the server-side filter.

        Returns (nbytes, content) of the response body. Applying a
        constraint costs CPU time proportional to the file scanned.
        """
        if not self.fs.exists(path):
            raise DodsError(f"404 {path}")
        file = self.fs.stat(path)
        if variable is None and not ranges:
            self.requests_served += 1
            return file.size, file.content
        if file.content is None:
            raise DodsError(f"422 {path}: no content to subset")
        yield self.env.timeout(
            self.filter_cost_per_mb * file.size / 2**20)
        ds = decode(file.content)
        sub = ds.subset(variable, **ranges)
        body = encode(sub)
        self.requests_served += 1
        return float(len(body)), body


class DodsClient:
    """Fetches DODS URLs: one HTTP GET, one TCP stream, OS defaults."""

    def __init__(self, env: Environment, transport: Transport,
                 registry: dict):
        self.env = env
        self.transport = transport
        self.registry = registry

    def open_url(self, client_host: Host, hostname: str, path: str,
                 dest_fs: FileSystem, variable: Optional[str] = None,
                 record: bool = False,
                 **ranges: Tuple[float, float]):
        """Simulation process: GET the (possibly constrained) dataset.

        Returns (nbytes, seconds, series). No retry: a broken transfer
        raises :class:`DodsError` (HTTP has no restart markers).
        """
        server: DodsServer = self.registry.get(hostname)
        if server is None:
            raise DodsError(f"unknown host {hostname!r}")
        started = self.env.now
        try:
            # Plain HTTP: no auth handshake, default 64 KB buffers.
            conn = yield from self.transport.connect(
                client_host.node, hostname, TcpParams())
        except ConnectionRefused as exc:
            raise DodsError(f"connect failed: {exc}") from exc
        # Request line + headers.
        yield from conn.request(request_bytes=512, response_bytes=512)
        nbytes, content = yield from server.evaluate(path, variable,
                                                     **ranges)
        # The body rides one stream server→client; model it as a flow
        # from the server's disk to the client's disk.
        from repro.net.recorder import RateRecorder
        rec = RateRecorder(f"dods:{path}") if record else None
        flow = self.transport.network.transfer(
            server.host.store_node, client_host.store_node, nbytes,
            cap=conn.stream.window_cap, name=f"dods:{path}",
            recorder=rec)
        self.env.process(conn.stream.drive(flow))
        # Plain-TCP stall watchdog: a dead connection times out; HTTP has
        # no restart markers, so that is the end of the request.
        timeout = conn.params.stall_timeout
        last_progress, last_change = 0.0, self.env.now
        try:
            while flow.active:
                tick = self.env.timeout(min(timeout / 4.0, 5.0))
                yield self.env.any_of([flow.done, tick])
                if flow.done.processed:
                    break
                progress = flow.progress()
                if progress > last_progress + 1e-9:
                    last_progress, last_change = progress, self.env.now
                elif self.env.now - last_change >= timeout:
                    flow.abort(f"TCP timeout after {timeout:.0f}s")
                    break
            _ = flow.done.value
        except FlowError as exc:
            conn.close()
            raise DodsError(f"connection reset: {exc}") from exc
        conn.close()
        dest_fs.create(path.rsplit("/", 1)[-1], nbytes, content=content,
                       overwrite=True)
        series = [rec.close(self.env.now)] if rec is not None else []
        return nbytes, self.env.now - started, series

    def open_dataset(self, client_host: Host, hostname: str, path: str,
                     variable: str,
                     **ranges: Tuple[float, float]):
        """Simulation process: constrained GET decoded to a Dataset."""
        scratch = FileSystem(self.env, "dods-scratch")
        yield from self.open_url(client_host, hostname, path, scratch,
                                 variable=variable, **ranges)
        name = path.rsplit("/", 1)[-1]
        blob = scratch.stat(name).content
        if blob is None:
            raise DodsError(f"{path}: server returned no content")
        return decode(blob)
