"""The layered-gateway design that motivated GridFTP (§6.1).

"Our first approach to dealing with these incompatible protocols was to
design a layered client or gateway that would present the user with one
interface to these heterogeneous storage systems. ... However ...
performance suffered due to costly translations between the layered
client and storage system-specific client libraries and protocols."

Model: each storage system speaks its own protocol through a
:class:`StorageAdapter` with a per-block translation cost and a block
size; the :class:`GatewayClient` pulls a file block by block through the
adapter — serialization of translate→transfer per block is what kills
throughput relative to a streaming common protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hosts.host import Host
from repro.net.tcp import TcpParams
from repro.net.transport import ConnectionRefused, Transport
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


@dataclass(frozen=True)
class StorageAdapter:
    """Protocol-specific plumbing for one storage system.

    Attributes
    ----------
    protocol:
        Label ("hpss", "dpss", "srb", ...).
    block_bytes:
        Transfer granularity of the system's client library.
    translate_cost:
        CPU seconds to marshal one block between protocol stacks.
    request_rtts:
        Control round trips needed per block request.
    """

    protocol: str
    block_bytes: float = 4 * 2**20
    translate_cost: float = 0.02
    request_rtts: float = 1.0

    def __post_init__(self) -> None:
        if self.block_bytes <= 0 or self.translate_cost < 0:
            raise ValueError("bad adapter parameters")


class GatewayClient:
    """One interface over heterogeneous systems, block translation each."""

    def __init__(self, env: Environment, transport: Transport):
        self.env = env
        self.transport = transport
        self.adapters: Dict[str, StorageAdapter] = {}
        self.blocks_translated = 0

    def register_adapter(self, hostname: str,
                         adapter: StorageAdapter) -> None:
        """Install the protocol adapter for one storage host."""
        self.adapters[hostname] = adapter

    def get(self, client_host: Host, server_host: Host, hostname: str,
            fs: FileSystem, path: str, dest_fs: FileSystem):
        """Simulation process: fetch ``path`` block by block.

        Each block: control round trip(s) + translation + transfer,
        strictly serialized (the gateway cannot pipeline across its
        protocol boundary). Returns (nbytes, seconds).
        """
        adapter = self.adapters.get(hostname)
        if adapter is None:
            raise KeyError(f"no adapter for {hostname!r}")
        file = fs.stat(path)
        env = self.env
        started = env.now
        try:
            conn = yield from self.transport.connect(
                client_host.node, server_host.node, TcpParams())
        except ConnectionRefused as exc:
            raise RuntimeError(f"gateway connect failed: {exc}") from exc
        remaining = file.size
        rtt = conn.rtt
        while remaining > 0:
            block = min(adapter.block_bytes, remaining)
            yield env.timeout(adapter.request_rtts * rtt)
            yield env.timeout(adapter.translate_cost)
            self.blocks_translated += 1
            # The data leg rides the reverse direction of the connection
            # path; block arrival is serialized with translation.
            flow = self.transport.network.transfer(
                server_host.store_node, client_host.store_node, block,
                cap=conn.stream.window_cap, name=f"gw:{path}")
            yield flow.done
            remaining -= block
        conn.close()
        dest_fs.create(path, file.size, content=file.content,
                       overwrite=True)
        return file.size, env.now - started
