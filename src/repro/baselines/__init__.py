"""Comparator systems from the paper's Related Work (§8) and §6.1.

- :class:`DodsServer`/:class:`DodsClient` — DODS-style remote data
  access: multi-tier client/server over plain HTTP, single TCP stream,
  server-side subsetting/format filters, no GSI, no replica management,
  no restart. "While this approach facilitates easy deployment, it is
  not well-suited to HPC applications or very large data movement over
  high-bandwidth wide-area networks."
- :class:`SrbBroker` — SRB-style integrated middleware: one broker
  mediates every access through its MCAT metadata catalog and its own
  protocol; replication is broker-controlled, clients never talk to
  storage directly (contrast with Globus's layered architecture).
- :class:`GatewayClient` — the *layered gateway* design GridFTP
  replaced (§6.1): a translation layer in front of heterogeneous
  storage protocols, paying per-block translation overhead — "first,
  performance suffered due to costly translations between the layered
  client and storage system-specific client libraries and protocols."
"""

from repro.baselines.dods import DodsClient, DodsError, DodsServer
from repro.baselines.srb import SrbBroker, SrbError
from repro.baselines.gateway import GatewayClient, StorageAdapter

__all__ = [
    "DodsClient",
    "DodsError",
    "DodsServer",
    "GatewayClient",
    "SrbBroker",
    "SrbError",
    "StorageAdapter",
]
