"""An SRB-style integrated storage broker.

§8: "Using its Metadata Catalog (MCAT), SRB provides collection-based
access to data based on high-level attributes rather than on physical
filenames. SRB also supports automatic replication ... In contrast to
the layered Globus architecture with direct user and application control
over replication, SRB uses an integrated architecture, with all access
to data via the SRB interface and MCAT and with SRB control over
replication and replica selection."

The modelling consequence: every byte flows *through the broker host*
(two WAN hops instead of one, broker CPU shared by all clients), and the
MCAT is consulted on every open. Replication is automatic on read
(configurable threshold), not user-directed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hosts.host import Host
from repro.net.fluid import FlowError
from repro.net.tcp import TcpParams
from repro.net.transport import ConnectionRefused, Transport
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


class SrbError(Exception):
    """Broker-level failure (unknown object, unreachable resource)."""


class SrbBroker:
    """The broker: MCAT + mediated access + automatic replication.

    Parameters
    ----------
    env, transport:
        Simulation environment and transport.
    host:
        The broker's host (all data transits it).
    mcat_latency:
        Cost of an MCAT lookup, seconds.
    auto_replicate_after:
        Reads of one object from one client site before the broker
        replicates it to the site's resource automatically (0 disables).
    """

    def __init__(self, env: Environment, transport: Transport,
                 host: Host, mcat_latency: float = 0.02,
                 auto_replicate_after: int = 3):
        self.env = env
        self.transport = transport
        self.host = host
        self.mcat_latency = mcat_latency
        self.auto_replicate_after = auto_replicate_after
        # object -> [(resource_host, fs)]
        self._locations: Dict[str, List[Tuple[Host, FileSystem]]] = {}
        self._attributes: Dict[str, Dict[str, str]] = {}
        self._read_counts: Dict[Tuple[str, str], int] = {}
        self.mcat_queries = 0
        self.replications = 0

    # -- registration -------------------------------------------------------
    def register(self, obj: str, resource_host: Host, fs: FileSystem,
                 attributes: Optional[Dict[str, str]] = None) -> None:
        """Register an object replica on a storage resource."""
        if not fs.exists(obj):
            raise SrbError(f"{obj!r} not present on {resource_host.name}")
        self._locations.setdefault(obj, []).append((resource_host, fs))
        if attributes:
            self._attributes.setdefault(obj, {}).update(attributes)

    def query_mcat(self, **attrs: str):
        """Simulation process: attribute search → object names."""
        self.mcat_queries += 1
        yield self.env.timeout(self.mcat_latency)
        out = []
        for obj, recorded in self._attributes.items():
            if all(recorded.get(k) == v for k, v in attrs.items()):
                out.append(obj)
        return sorted(out)

    # -- mediated read ---------------------------------------------------------
    def sget(self, client_host: Host, client_fs: FileSystem, obj: str,
             client_resource: Optional[FileSystem] = None):
        """Simulation process: read an object through the broker.

        Data path: storage resource → broker host → client (both legs
        through the broker's CPU/NIC). Returns (nbytes, seconds).
        """
        env = self.env
        self.mcat_queries += 1
        yield env.timeout(self.mcat_latency)  # MCAT on every open
        replicas = self._locations.get(obj)
        if not replicas:
            raise SrbError(f"no such object {obj!r}")
        src_host, src_fs = replicas[0]  # broker picks; client has no say
        for host, fs in replicas:
            if host.site == client_host.site:
                src_host, src_fs = host, fs
                break
        file = src_fs.stat(obj)
        started = env.now
        try:
            leg1 = yield from self.transport.connect(
                src_host.node, self.host.node, TcpParams())
            leg2 = yield from self.transport.connect(
                self.host.node, client_host.node, TcpParams())
        except ConnectionRefused as exc:
            raise SrbError(f"resource unreachable: {exc}") from exc
        try:
            yield from leg1.send(file.size)
            yield from leg2.send(file.size)
        except FlowError as exc:
            raise SrbError(f"transfer failed: {exc}") from exc
        finally:
            leg1.close()
            leg2.close()
        client_fs.create(obj, file.size, content=file.content,
                         overwrite=True)
        # Automatic replication: the broker, not the user, decides.
        key = (obj, client_host.site)
        self._read_counts[key] = self._read_counts.get(key, 0) + 1
        if (self.auto_replicate_after
                and client_resource is not None
                and self._read_counts[key] == self.auto_replicate_after
                and not client_resource.exists(obj)):
            client_resource.store(file.with_name(obj))
            self._locations[obj].append((client_host, client_resource))
            self.replications += 1
        return file.size, env.now - started

    def replica_count(self, obj: str) -> int:
        """How many replicas the broker currently manages."""
        return len(self._locations.get(obj, []))
