"""ULM-format event logging."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.core import Environment


@dataclass(frozen=True)
class LogRecord:
    """One ULM event."""

    t: float
    host: str
    prog: str
    event: str
    fields: Dict[str, str] = field(default_factory=dict)

    def to_ulm(self) -> str:
        """Render in NetLogger's Universal Logger Message format.

        Values containing whitespace, quotes, or backslashes are
        double-quoted with backslash escapes so that free-text fields
        (e.g. failure reasons) survive the round trip through
        :func:`parse_ulm`.
        """
        parts = [f"DATE={_stamp(self.t)}", f"HOST={_quote(self.host)}",
                 f"PROG={_quote(self.prog)}",
                 f"NL.EVNT={_quote(self.event)}"]
        parts.extend(f"{k.upper()}={_quote(v)}" for k, v in
                     sorted(self.fields.items()))
        return " ".join(parts)


def _stamp(t: float) -> str:
    """Simulated seconds → a sortable pseudo-timestamp."""
    return f"{t:014.3f}"


def _quote(value: str) -> str:
    """Quote a field value if it would break space-delimited parsing."""
    value = str(value)
    if value and not any(c in value for c in ' \t"\\'):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _tokenize(line: str) -> Iterator[Tuple[str, str]]:
    """Yield (KEY, value) pairs, honouring double-quoted values."""
    i, n = 0, len(line)
    while i < n:
        while i < n and line[i] in " \t":
            i += 1
        if i >= n:
            return
        eq = line.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed ULM token {line[i:].split()[0]!r}")
        key = line[i:eq]
        if not key or any(c in key for c in ' \t"'):
            raise ValueError(f"malformed ULM token {line[i:eq + 1]!r}")
        i = eq + 1
        if i < n and line[i] == '"':
            i += 1
            buf: List[str] = []
            closed = False
            while i < n:
                c = line[i]
                if c == "\\" and i + 1 < n:
                    buf.append(line[i + 1])
                    i += 2
                    continue
                if c == '"':
                    closed = True
                    i += 1
                    break
                buf.append(c)
                i += 1
            if not closed:
                raise ValueError(
                    f"unterminated quoted value for {key!r}")
            if i < n and line[i] not in " \t":
                raise ValueError(
                    f"malformed ULM token after quoted {key!r}")
            yield key, "".join(buf)
        else:
            end = i
            while end < n and line[end] not in " \t":
                end += 1
            yield key, line[i:end]
            i = end


def parse_ulm(line: str) -> LogRecord:
    """Parse one ULM line back into a :class:`LogRecord`.

    Real NetLogger pipelines write logs on many hosts and analyze them
    centrally; round-tripping through text is the interchange format.
    """
    fields = {}
    for key, value in _tokenize(line):
        fields[key] = value
    try:
        t = float(fields.pop("DATE"))
        host = fields.pop("HOST")
        prog = fields.pop("PROG")
        event = fields.pop("NL.EVNT")
    except KeyError as exc:
        raise ValueError(f"missing required ULM field {exc}") from exc
    return LogRecord(t, host, prog, event,
                     {k.lower(): v for k, v in fields.items()})


def parse_ulm_log(text: str) -> List[LogRecord]:
    """Parse a whole ULM log (one record per non-empty line)."""
    return [parse_ulm(line) for line in text.splitlines() if line.strip()]


class NetLogger:
    """An append-only event log shared by instrumented components.

    Parameters
    ----------
    env, host, prog:
        Environment and the default HOST/PROG stamped on records.
    capacity:
        When set, the log becomes a ring buffer holding the most recent
        ``capacity`` records; evictions are counted in :attr:`dropped`.
        The default (None) keeps every record — the historical
        behaviour, right for short runs and tests. Long Figure 8 runs
        should bound it.
    """

    def __init__(self, env: Environment, host: str = "localhost",
                 prog: str = "repro", capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 when set")
        self.env = env
        self.default_host = host
        self.default_prog = prog
        self.capacity = capacity
        self.records = (deque(maxlen=capacity) if capacity is not None
                        else [])
        self.dropped = 0        # records evicted by the ring buffer
        self.emitted = 0        # records ever appended

    def event(self, name: str, host: Optional[str] = None,
              prog: Optional[str] = None, **fields) -> LogRecord:
        """Append one event at the current simulated time."""
        record = LogRecord(self.env.now, host or self.default_host,
                           prog or self.default_prog, name,
                           {k: str(v) for k, v in fields.items()})
        if (self.capacity is not None
                and len(self.records) == self.capacity):
            self.dropped += 1
        self.records.append(record)
        self.emitted += 1
        return record

    def select(self, event: Optional[str] = None,
               host: Optional[str] = None) -> List[LogRecord]:
        """Filter by event name and/or host."""
        out = list(self.records)
        if event is not None:
            out = [r for r in out if r.event == event]
        if host is not None:
            out = [r for r in out if r.host == host]
        return out

    def dump_ulm(self) -> str:
        """The whole log as ULM text."""
        return "\n".join(r.to_ulm() for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)
