"""ULM-format event logging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.sim.core import Environment


@dataclass(frozen=True)
class LogRecord:
    """One ULM event."""

    t: float
    host: str
    prog: str
    event: str
    fields: Dict[str, str] = field(default_factory=dict)

    def to_ulm(self) -> str:
        """Render in NetLogger's Universal Logger Message format."""
        parts = [f"DATE={_stamp(self.t)}", f"HOST={self.host}",
                 f"PROG={self.prog}", f"NL.EVNT={self.event}"]
        parts.extend(f"{k.upper()}={v}" for k, v in
                     sorted(self.fields.items()))
        return " ".join(parts)


def _stamp(t: float) -> str:
    """Simulated seconds → a sortable pseudo-timestamp."""
    return f"{t:014.3f}"


def parse_ulm(line: str) -> LogRecord:
    """Parse one ULM line back into a :class:`LogRecord`.

    Real NetLogger pipelines write logs on many hosts and analyze them
    centrally; round-tripping through text is the interchange format.
    """
    fields = {}
    for token in line.split():
        if "=" not in token:
            raise ValueError(f"malformed ULM token {token!r}")
        key, _, value = token.partition("=")
        fields[key] = value
    try:
        t = float(fields.pop("DATE"))
        host = fields.pop("HOST")
        prog = fields.pop("PROG")
        event = fields.pop("NL.EVNT")
    except KeyError as exc:
        raise ValueError(f"missing required ULM field {exc}") from exc
    return LogRecord(t, host, prog, event,
                     {k.lower(): v for k, v in fields.items()})


def parse_ulm_log(text: str) -> List[LogRecord]:
    """Parse a whole ULM log (one record per non-empty line)."""
    return [parse_ulm(line) for line in text.splitlines() if line.strip()]


class NetLogger:
    """An append-only event log shared by instrumented components."""

    def __init__(self, env: Environment, host: str = "localhost",
                 prog: str = "repro"):
        self.env = env
        self.default_host = host
        self.default_prog = prog
        self.records: List[LogRecord] = []

    def event(self, name: str, host: Optional[str] = None,
              prog: Optional[str] = None, **fields) -> LogRecord:
        """Append one event at the current simulated time."""
        record = LogRecord(self.env.now, host or self.default_host,
                           prog or self.default_prog, name,
                           {k: str(v) for k, v in fields.items()})
        self.records.append(record)
        return record

    def select(self, event: Optional[str] = None,
               host: Optional[str] = None) -> List[LogRecord]:
        """Filter by event name and/or host."""
        out = self.records
        if event is not None:
            out = [r for r in out if r.event == event]
        if host is not None:
            out = [r for r in out if r.host == host]
        return list(out)

    def dump_ulm(self) -> str:
        """The whole log as ULM text."""
        return "\n".join(r.to_ulm() for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)
