"""Turning raw rate series into the paper's reported numbers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.net.recorder import RateSeries, aggregate_series
from repro.net.units import to_gbps, to_mbps


@dataclass(frozen=True)
class BandwidthSummary:
    """The Table 1 measurement block for one experiment.

    All rates in bytes/s; the ``*_mbps``/``*_gbps`` helpers convert for
    reporting.
    """

    peak_100ms: float
    peak_5s: float
    sustained: float
    sustained_window: float
    total_bytes: float
    duration: float

    @property
    def peak_100ms_gbps(self) -> float:
        return to_gbps(self.peak_100ms)

    @property
    def peak_5s_gbps(self) -> float:
        return to_gbps(self.peak_5s)

    @property
    def sustained_mbps(self) -> float:
        return to_mbps(self.sustained)

    @property
    def total_gbytes(self) -> float:
        """Total volume in decimal gigabytes (as the paper reports)."""
        return self.total_bytes / 1e9

    def rows(self) -> list:
        """(label, value) rows in the Table 1 layout."""
        if self.sustained_window >= 3600:
            window = f"{self.sustained_window / 3600:.0f} hour"
        else:
            window = f"{self.sustained_window / 60:.0f} minutes"
        return [
            ("Peak transfer rate over 0.1 seconds",
             f"{self.peak_100ms_gbps:.2f} Gbits/sec"),
            ("Peak transfer rate over 5 seconds",
             f"{self.peak_5s_gbps:.2f} Gbits/sec"),
            (f"Sustained transfer rate over {window}",
             f"{self.sustained_mbps:.1f} Mbits/sec"),
            ("Total data transferred",
             f"{self.total_gbytes:.1f} Gbytes"),
        ]


def bandwidth_timeline(series: Iterable[RateSeries],
                       bin_seconds: float = 60.0
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate per-flow series into a binned bandwidth timeline.

    Returns (bin_start_times, mean_rates) — the Figure 8 plot data.
    """
    agg = aggregate_series(series)
    return agg.sample(bin_seconds)


def summarize(series: Iterable[RateSeries],
              sustained_window: Optional[float] = None,
              t0: Optional[float] = None,
              t1: Optional[float] = None) -> BandwidthSummary:
    """Compute the Table 1 measurement block from per-flow series.

    ``sustained_window`` defaults to the full [t0, t1] span; pass 3600
    for the paper's one-hour sustained figure (the best one-hour window
    is used).
    """
    agg = aggregate_series(series)
    lo = agg.t_start if t0 is None else t0
    hi = agg.t_end if t1 is None else t1
    span = hi - lo
    if span <= 0:
        raise ValueError("empty measurement interval")
    window = sustained_window if sustained_window is not None else span
    sustained = (agg.peak_windowed(window) if window < span
                 else agg.bytes_between(lo, hi) / span)
    return BandwidthSummary(
        peak_100ms=agg.peak_windowed(0.1),
        peak_5s=agg.peak_windowed(5.0),
        sustained=sustained,
        sustained_window=window,
        total_bytes=agg.bytes_between(lo, hi),
        duration=span)
