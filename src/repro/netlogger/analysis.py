"""Turning raw rate series and event logs into the paper's numbers.

Two halves:

- the **bandwidth half** (:func:`summarize`, :func:`bandwidth_timeline`)
  turns per-flow rate series into the Table 1 block and the Figure 8
  timeline;
- the **lifeline half** (:func:`reconstruct_lifelines`,
  :func:`stage_breakdown`, :func:`ttfb_values`,
  :func:`failure_breakdown`) replays a ULM event log into per-file
  *lifelines* — the NetLogger methodology: every file's path through
  request → select → connect → first byte → done/failed, with per-stage
  latency, time-to-first-byte, failure-class attribution, and the fault
  windows that overlapped it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.net.recorder import RateSeries, aggregate_series
from repro.net.units import to_gbps, to_mbps
from repro.netlogger.log import LogRecord


@dataclass(frozen=True)
class BandwidthSummary:
    """The Table 1 measurement block for one experiment.

    All rates in bytes/s; the ``*_mbps``/``*_gbps`` helpers convert for
    reporting.
    """

    peak_100ms: float
    peak_5s: float
    sustained: float
    sustained_window: float
    total_bytes: float
    duration: float

    @property
    def peak_100ms_gbps(self) -> float:
        return to_gbps(self.peak_100ms)

    @property
    def peak_5s_gbps(self) -> float:
        return to_gbps(self.peak_5s)

    @property
    def sustained_mbps(self) -> float:
        return to_mbps(self.sustained)

    @property
    def total_gbytes(self) -> float:
        """Total volume in decimal gigabytes (as the paper reports)."""
        return self.total_bytes / 1e9

    def rows(self) -> list:
        """(label, value) rows in the Table 1 layout."""
        if self.sustained_window >= 3600:
            window = f"{self.sustained_window / 3600:.0f} hour"
        else:
            window = f"{self.sustained_window / 60:.0f} minutes"
        return [
            ("Peak transfer rate over 0.1 seconds",
             f"{self.peak_100ms_gbps:.2f} Gbits/sec"),
            ("Peak transfer rate over 5 seconds",
             f"{self.peak_5s_gbps:.2f} Gbits/sec"),
            (f"Sustained transfer rate over {window}",
             f"{self.sustained_mbps:.1f} Mbits/sec"),
            ("Total data transferred",
             f"{self.total_gbytes:.1f} Gbytes"),
        ]


def bandwidth_timeline(series: Iterable[RateSeries],
                       bin_seconds: float = 60.0
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate per-flow series into a binned bandwidth timeline.

    Returns (bin_start_times, mean_rates) — the Figure 8 plot data.
    """
    agg = aggregate_series(series)
    return agg.sample(bin_seconds)


def summarize(series: Iterable[RateSeries],
              sustained_window: Optional[float] = None,
              t0: Optional[float] = None,
              t1: Optional[float] = None) -> BandwidthSummary:
    """Compute the Table 1 measurement block from per-flow series.

    ``sustained_window`` defaults to the full [t0, t1] span; pass 3600
    for the paper's one-hour sustained figure (the best one-hour window
    is used).
    """
    agg = aggregate_series(series)
    lo = agg.t_start if t0 is None else t0
    hi = agg.t_end if t1 is None else t1
    span = hi - lo
    if span <= 0:
        raise ValueError("empty measurement interval")
    window = sustained_window if sustained_window is not None else span
    sustained = (agg.peak_windowed(window) if window < span
                 else agg.bytes_between(lo, hi) / span)
    return BandwidthSummary(
        peak_100ms=agg.peak_windowed(0.1),
        peak_5s=agg.peak_windowed(5.0),
        sustained=sustained,
        sustained_window=window,
        total_bytes=agg.bytes_between(lo, hi),
        duration=span)


# ---------------------------------------------------------------------------
# Lifelines: per-file event timelines reconstructed from the ULM log.
# ---------------------------------------------------------------------------

#: Milestone event → name of the pipeline stage that *begins* at it.
#: Stages run until the next milestone (or the terminal event), so the
#: per-stage durations of a lifeline telescope to exactly
#: ``finished_at - requested_at``.
MILESTONE_STAGES: Dict[str, str] = {
    "rm.request": "select",          # catalog lookup + forecast + rank
    "rm.select": "connect",          # control connection + auth
    "rm.queue": "queue",             # scheduler admission queue wait
    "rm.granted": "connect",         # admitted; connect resumes
    "gridftp.connect": "first_byte", # command setup, staging, data start
    "hrm.stage.request": "stage",    # tape → disk staging in progress
    "tape.read.begin": "read",       # drive streaming the cartridge
    "hrm.stage.done": "first_byte",  # staging over; waiting on data again
    "gridftp.first_byte": "stream",  # bytes flowing
    "rm.verify": "verify",           # checksum scan on arrival
    "rm.retry": "backoff",           # waiting out a retry round
}

#: Terminal event → lifeline outcome.
TERMINAL_EVENTS: Dict[str, str] = {
    "rm.transfer.done": "done",
    "rm.failure": "failed",
    "rm.cancelled": "cancelled",
}

#: The milestones a successful lifeline must have visited, in order.
COMPLETE_PATH = ("rm.request", "rm.select", "gridftp.connect",
                 "gridftp.first_byte")


@dataclass(frozen=True)
class LifeStage:
    """One contiguous pipeline stage within a lifeline."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultWindow:
    """One injected fault's active window (from fault.begin/fault.end)."""

    kind: str
    target: str
    start: float
    end: float
    description: str = ""

    def overlaps(self, t0: float, t1: float) -> bool:
        return self.start < t1 and self.end > t0


@dataclass
class Lifeline:
    """Everything one logical file went through, reconstructed."""

    file: str
    ticket: Optional[str] = None
    events: List[LogRecord] = field(default_factory=list)
    stages: List[LifeStage] = field(default_factory=list)
    outcome: Optional[str] = None          # done | failed | cancelled
    failure_class: Optional[str] = None    # FailureClass value on failure
    error: Optional[str] = None
    requested_at: Optional[float] = None
    finished_at: Optional[float] = None
    faults: List[FaultWindow] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.requested_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.requested_at

    @property
    def ttfb(self) -> Optional[float]:
        """Time from first GridFTP connect to the first byte arriving."""
        connect = self._first("gridftp.connect")
        first = self._first("gridftp.first_byte")
        if connect is None or first is None:
            return None
        return first - connect

    @property
    def complete(self) -> bool:
        """True when the lifeline is terminal and — for successes —
        visited every milestone of the canonical path in order."""
        if self.outcome is None:
            return False
        if self.outcome != "done":
            return True
        t = -float("inf")
        for name in COMPLETE_PATH:
            at = self._first(name, after=t)
            if at is None:
                return False
            t = at
        return True

    def stage_totals(self) -> Dict[str, float]:
        """Total seconds per stage name (repeats summed)."""
        totals: Dict[str, float] = {}
        for stage in self.stages:
            totals[stage.name] = totals.get(stage.name, 0.0) \
                + stage.duration
        return totals

    def _first(self, event: str,
               after: float = -float("inf")) -> Optional[float]:
        for rec in self.events:
            if rec.event == event and rec.t >= after:
                return rec.t
        return None

    def __repr__(self) -> str:
        dur = f"{self.duration:.3f}s" if self.duration is not None else "?"
        return (f"Lifeline({self.file!r}, {self.outcome or 'incomplete'}, "
                f"{len(self.stages)} stages, {dur})")


@dataclass(frozen=True)
class StageStats:
    """Aggregate latency statistics for one stage name."""

    name: str
    count: int
    total: float
    mean: float
    max: float


def extract_fault_windows(records: Iterable[LogRecord]
                          ) -> List[FaultWindow]:
    """Pair fault.begin / fault.end events into windows.

    Unmatched begins (the run ended mid-fault) close at +inf so they
    still overlap everything after their onset.
    """
    open_faults: Dict[Tuple[str, str], LogRecord] = {}
    windows: List[FaultWindow] = []
    for rec in records:
        if rec.event == "fault.begin":
            key = (rec.fields.get("kind", "?"),
                   rec.fields.get("target", "?"))
            open_faults[key] = rec
        elif rec.event == "fault.end":
            key = (rec.fields.get("kind", "?"),
                   rec.fields.get("target", "?"))
            begin = open_faults.pop(key, None)
            if begin is not None:
                windows.append(FaultWindow(
                    key[0], key[1], begin.t, rec.t,
                    begin.fields.get("description", "")))
    for key, begin in open_faults.items():
        windows.append(FaultWindow(key[0], key[1], begin.t,
                                   float("inf"),
                                   begin.fields.get("description", "")))
    windows.sort(key=lambda w: (w.start, w.kind, w.target))
    return windows


def reconstruct_lifelines(records: Iterable[LogRecord],
                          attach_faults: bool = True
                          ) -> Dict[str, Lifeline]:
    """Group a ULM log into per-file lifelines with stage breakdowns.

    Any record carrying a ``file`` field joins that file's lifeline;
    records are processed in time order. With ``attach_faults`` (the
    default), fault windows overlapping a lifeline's active period are
    attached to it — the injected cause lands on the same timeline as
    its symptom.
    """
    ordered = sorted(records, key=lambda r: r.t)
    lifelines: Dict[str, Lifeline] = {}
    for rec in ordered:
        name = rec.fields.get("file")
        if name is None:
            continue
        life = lifelines.get(name)
        if life is None:
            life = lifelines[name] = Lifeline(file=name)
        life.events.append(rec)
        if life.ticket is None and "ticket" in rec.fields:
            life.ticket = rec.fields["ticket"]
    for life in lifelines.values():
        _build_stages(life)
    if attach_faults:
        for window in extract_fault_windows(ordered):
            for life in lifelines.values():
                t0 = life.requested_at
                t1 = (life.finished_at if life.finished_at is not None
                      else float("inf"))
                if t0 is not None and window.overlaps(t0, t1):
                    life.faults.append(window)
    return lifelines


def _build_stages(life: Lifeline) -> None:
    """Derive the stage list from a lifeline's milestone events."""
    current: Optional[Tuple[str, float]] = None
    for rec in life.events:
        if rec.event == "rm.request" and life.requested_at is None:
            life.requested_at = rec.t
        if rec.event in TERMINAL_EVENTS:
            if current is not None:
                life.stages.append(LifeStage(current[0], current[1],
                                             rec.t))
                current = None
            life.outcome = TERMINAL_EVENTS[rec.event]
            life.finished_at = rec.t
            if rec.event == "rm.failure":
                life.failure_class = rec.fields.get("cls")
                life.error = rec.fields.get("reason")
            continue
        stage_name = MILESTONE_STAGES.get(rec.event)
        if stage_name is None:
            continue
        if (rec.event == "hrm.stage.done" and current is not None
                and current[0] == "stream"):
            # Cut-through: bytes were already flowing when staging
            # finished — the client-visible phase does not regress to
            # "waiting for first byte".
            continue
        if current is not None:
            life.stages.append(LifeStage(current[0], current[1], rec.t))
        current = (stage_name, rec.t)
    if current is not None:
        # Run ended mid-flight: close the open stage at its own start so
        # durations stay well-defined (zero-length tail).
        life.stages.append(LifeStage(current[0], current[1], current[1]))


@dataclass
class ReconstructionReport:
    """How much of the ULM log survived into usable lifelines.

    A bounded ring buffer (``log_capacity``) drops the *oldest* records
    first, so long runs lose the early milestones of early files —
    their lifelines reconstruct without a request event or without a
    terminal. This report makes that loss explicit instead of letting
    incomplete lifelines silently vanish from downstream analysis.
    """

    total: int
    complete: int
    incomplete: List[Tuple[str, str]] = field(default_factory=list)
    dropped: int = 0                 # ring-buffer evictions (if known)

    @property
    def incomplete_count(self) -> int:
        return len(self.incomplete)

    @property
    def complete_fraction(self) -> float:
        return self.complete / self.total if self.total else 1.0

    def reasons(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _file, reason in self.incomplete:
            out[reason] = out.get(reason, 0) + 1
        return dict(sorted(out.items()))

    def render(self) -> str:
        lines = [f"lifelines: {self.total} total, {self.complete} "
                 f"complete ({self.complete_fraction:.0%}), "
                 f"{self.incomplete_count} incomplete; "
                 f"{self.dropped} log records dropped"]
        for reason, n in self.reasons().items():
            lines.append(f"  {reason}: {n}")
        return "\n".join(lines)


def reconstruction_report(lifelines: Iterable[Lifeline],
                          dropped: int = 0) -> ReconstructionReport:
    """Partition lifelines into complete vs incomplete, with reasons.

    ``dropped`` is the source log's ring-buffer eviction count (pass
    ``logger.dropped``), reported alongside so a nonzero incomplete
    count can be traced to its cause.
    """
    if isinstance(lifelines, dict):
        lifelines = lifelines.values()
    lives = list(lifelines)
    report = ReconstructionReport(total=len(lives), complete=0,
                                  dropped=dropped)
    for life in lives:
        if life.requested_at is None:
            report.incomplete.append((life.file, "no-request-event"))
        elif life.outcome is None:
            report.incomplete.append((life.file, "no-terminal-event"))
        elif not life.complete:
            report.incomplete.append((life.file, "missing-milestones"))
        else:
            report.complete += 1
    return report


def stage_breakdown(lifelines: Iterable[Lifeline]
                    ) -> Dict[str, StageStats]:
    """Aggregate per-stage latency statistics across lifelines."""
    acc: Dict[str, List[float]] = {}
    for life in lifelines:
        for stage in life.stages:
            acc.setdefault(stage.name, []).append(stage.duration)
    return {name: StageStats(name=name, count=len(vals),
                             total=float(sum(vals)),
                             mean=float(sum(vals) / len(vals)),
                             max=float(max(vals)))
            for name, vals in sorted(acc.items())}


def ttfb_values(lifelines: Iterable[Lifeline]) -> List[float]:
    """Time-to-first-byte distribution across lifelines (where known)."""
    return [life.ttfb for life in lifelines if life.ttfb is not None]


def failure_breakdown(lifelines: Iterable[Lifeline]) -> Dict[str, int]:
    """Failed-lifeline counts per FailureClass value."""
    out: Dict[str, int] = {}
    for life in lifelines:
        if life.outcome == "failed":
            cls = life.failure_class or "?"
            out[cls] = out.get(cls, 0) + 1
    return dict(sorted(out.items()))
