"""NetLogger-style instrumentation and analysis.

"The graph was produced with the NetLogger system [13]" — Figure 8 is a
bandwidth-vs-time plot assembled from distributed event logs. This
package provides:

- :class:`NetLogger` — ULM-format event records
  (``DATE=... HOST=... PROG=... NL.EVNT=... ...``) with simulated
  timestamps;
- ``repro.netlogger.analysis`` — turning per-flow rate series and
  transfer events into the binned bandwidth timeline and the summary
  numbers (peak over a window, sustained average, total volume) that
  Table 1 and Figure 8 report.
"""

from repro.netlogger.log import (LogRecord, NetLogger, parse_ulm,
                                 parse_ulm_log)
from repro.netlogger.analysis import (
    BandwidthSummary,
    FaultWindow,
    Lifeline,
    LifeStage,
    ReconstructionReport,
    StageStats,
    bandwidth_timeline,
    extract_fault_windows,
    failure_breakdown,
    reconstruct_lifelines,
    reconstruction_report,
    stage_breakdown,
    summarize,
    ttfb_values,
)

__all__ = [
    "BandwidthSummary",
    "FaultWindow",
    "LifeStage",
    "Lifeline",
    "LogRecord",
    "NetLogger",
    "ReconstructionReport",
    "StageStats",
    "bandwidth_timeline",
    "extract_fault_windows",
    "failure_breakdown",
    "parse_ulm",
    "parse_ulm_log",
    "reconstruct_lifelines",
    "reconstruction_report",
    "stage_breakdown",
    "summarize",
    "ttfb_values",
]
