"""NetLogger-style instrumentation and analysis.

"The graph was produced with the NetLogger system [13]" — Figure 8 is a
bandwidth-vs-time plot assembled from distributed event logs. This
package provides:

- :class:`NetLogger` — ULM-format event records
  (``DATE=... HOST=... PROG=... NL.EVNT=... ...``) with simulated
  timestamps;
- ``repro.netlogger.analysis`` — turning per-flow rate series and
  transfer events into the binned bandwidth timeline and the summary
  numbers (peak over a window, sustained average, total volume) that
  Table 1 and Figure 8 report.
"""

from repro.netlogger.log import (LogRecord, NetLogger, parse_ulm,
                                 parse_ulm_log)
from repro.netlogger.analysis import (
    BandwidthSummary,
    bandwidth_timeline,
    summarize,
)

__all__ = [
    "BandwidthSummary",
    "LogRecord",
    "NetLogger",
    "parse_ulm",
    "parse_ulm_log",
    "bandwidth_timeline",
    "summarize",
]
