"""The EarthSystemGrid facade: the whole prototype behind one object.

Also home of the **Data Grid Reference Architecture** registry
(Figure 5): components register at the fabric / connectivity / resource /
collective / application layers, and :meth:`EarthSystemGrid.layers`
exposes the wired instance — the structural claim of the figure is that
each layer only builds on the ones below, which
:meth:`LayeredArchitecture.check_dependencies` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cdat.analysis import time_mean, zonal_mean
from repro.cdat.viz import render_field, render_profile
from repro.scenarios.esg import EsgTestbed

LAYERS = ("fabric", "connectivity", "resource", "collective",
          "application")


@dataclass
class LayeredArchitecture:
    """The Figure 5 component registry."""

    components: Dict[str, List[Tuple[str, object]]] = field(
        default_factory=lambda: {layer: [] for layer in LAYERS})
    dependencies: List[Tuple[str, str]] = field(default_factory=list)

    def register(self, layer: str, name: str, component: object) -> None:
        """Place a component at a layer."""
        if layer not in self.components:
            raise ValueError(f"unknown layer {layer!r} "
                             f"(have {list(self.components)})")
        self.components[layer].append((name, component))

    def depends(self, user: str, used: str) -> None:
        """Record that component ``user`` builds on ``used``."""
        self.dependencies.append((user, used))

    def layer_of(self, name: str) -> Optional[str]:
        """Which layer a named component sits at."""
        for layer, entries in self.components.items():
            if any(n == name for n, _ in entries):
                return layer
        return None

    def check_dependencies(self) -> List[str]:
        """Violations of "higher layers depend only on lower/equal ones".

        Returns human-readable violation strings (empty = clean).
        """
        rank = {layer: i for i, layer in enumerate(LAYERS)}
        problems = []
        for user, used in self.dependencies:
            lu, ld = self.layer_of(user), self.layer_of(used)
            if lu is None or ld is None:
                problems.append(f"unregistered component in {user}->{used}")
            elif rank[ld] > rank[lu]:
                problems.append(
                    f"{user} ({lu}) depends on {used} ({ld}): "
                    f"upward dependency")
        return problems

    def names(self, layer: str) -> List[str]:
        """Component names at one layer."""
        return [n for n, _ in self.components[layer]]


class EarthSystemGrid:
    """One object wiring the entire ESG-I prototype.

    Wraps an :class:`~repro.scenarios.esg.EsgTestbed` and exposes the
    user-level workflow of §7's demonstration: select by attributes,
    fetch via the request manager, analyze and visualize.
    """

    def __init__(self, testbed: EsgTestbed):
        self.testbed = testbed
        self._layers = self._build_layers()

    # -- construction -------------------------------------------------------
    @classmethod
    def demo_testbed(cls, seed: int = 0, years: int = 1,
                     materialize: bool = True,
                     **kwargs) -> "EarthSystemGrid":
        """The standard demo: full multi-site testbed, real data bytes."""
        return cls(EsgTestbed(seed=seed, years=years,
                              materialize=materialize, **kwargs))

    def _build_layers(self) -> LayeredArchitecture:
        tb = self.testbed
        arch = LayeredArchitecture()
        arch.register("fabric", "storage", list(tb.sites.values()))
        arch.register("fabric", "networks", tb.network)
        arch.register("fabric", "metadata-catalog", tb.metadata_catalog)
        arch.register("fabric", "replica-catalog-store",
                      tb.replica_catalog.directory)
        arch.register("connectivity", "transport", tb.transport)
        arch.register("connectivity", "dns", tb.dns)
        arch.register("connectivity", "gsi", tb.gsi)
        arch.register("resource", "gridftp", tb.gridftp)
        arch.register("resource", "mds", tb.mds)
        arch.register("resource", "hrm",
                      tb.sites["lbnl-pdsf"].hrm)
        arch.register("collective", "replica-management",
                      tb.replica_manager)
        arch.register("collective", "replica-selection",
                      tb.request_manager.policy)
        arch.register("collective", "request-manager",
                      tb.request_manager)
        arch.register("collective", "nws", tb.nws)
        arch.register("application", "cdat", tb.cdat)
        for user, used in [("gridftp", "transport"), ("gridftp", "gsi"),
                           ("mds", "transport"),
                           ("replica-management", "gridftp"),
                           ("replica-selection", "nws"),
                           ("request-manager", "gridftp"),
                           ("request-manager", "mds"),
                           ("request-manager", "hrm"),
                           ("cdat", "request-manager"),
                           ("cdat", "metadata-catalog")]:
            arch.depends(user, used)
        return arch

    @property
    def layers(self) -> LayeredArchitecture:
        """The Figure 5 registry for this instance."""
        return self._layers

    # -- user workflow ------------------------------------------------------------
    def browse(self) -> List[dict]:
        """The Figure 2 selection listing."""
        return self.testbed.cdat.browse()

    def fetch_and_analyze(self, dataset: str, variable: str,
                          years: Optional[Tuple[int, int]] = None,
                          months: Optional[Tuple[int, int]] = None,
                          warm_nws: float = 90.0):
        """Blocking convenience: run the whole §7 demo flow.

        Returns (AnalysisResult, rendered_visualization_str).
        """
        tb = self.testbed
        if warm_nws > 0:
            tb.warm_nws(warm_nws)

        def flow():
            result = yield from tb.cdat.fetch(dataset, variable,
                                              years=years, months=months)
            return result

        result = tb.run_process(flow())
        var = result.dataset[variable]
        field = time_mean(result.dataset, variable)
        rendering = render_field(
            field,
            title=(f"{dataset} :: {variable} "
                   f"({var.attrs.get('long_name', '')}), time mean"),
            units=var.attrs.get("units", ""))
        return result, rendering

    def zonal_profile(self, result, variable: str) -> str:
        """Zonal-mean rendering of a fetched result."""
        profile = zonal_mean(result.dataset, variable)
        return render_profile(profile, result.dataset.coords["lat"],
                              title=f"zonal mean {variable}")

    def __repr__(self) -> str:
        return f"EarthSystemGrid({self.testbed!r})"
