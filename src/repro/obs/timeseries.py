"""Windowed time-series recording of gauges over simulated time.

The metrics registry holds *current* values; bottleneck attribution
needs to know what a resource looked like **while** a ticket was in
flight. :class:`TimeSeriesRecorder` closes that gap: a single sampler
process wakes at aligned window boundaries (multiples of ``interval``)
and evaluates registered probes — plain callables reading live objects
(link utilization from the fluid network, tape-drive busy state,
DiskCache occupancy, scheduler queue depths, server connection slots).

Because every probe is read in the same tick, samples are aligned
across series by construction: ``sample k`` of every series was taken
at the same simulated instant, so cross-series joins ("was the tape
library saturated while this file sat in its stage stage?") are exact
index lookups, not interpolation.

Probes come in two shapes:

- :meth:`add_probe` — one named series from one ``fn() -> float``;
- :meth:`add_multi_probe` — one ``fn() -> {name: value}`` feeding many
  series from a single evaluation (e.g. one ``network.snapshot()`` call
  fans into every per-link utilization series instead of N snapshots).

Series with holes (a multi-probe stopped reporting a key) stay aligned:
missing ticks read as ``None`` and the aggregation helpers either skip
or zero-fill them, explicitly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.core import Environment


class TimeSeriesRecorder:
    """Aligned-window sampler over live probe callables.

    Parameters
    ----------
    env:
        Simulation environment.
    interval:
        Window width in simulated seconds; samples are taken at
        multiples of it (the first at the next boundary at/after
        :meth:`start`).
    max_samples:
        Optional bound on retained ticks per series (oldest dropped) —
        long campaigns cannot grow the recorder without limit.
    """

    def __init__(self, env: Environment, interval: float = 5.0,
                 max_samples: Optional[int] = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1 when set")
        self.env = env
        self.interval = float(interval)
        self.max_samples = max_samples
        self._single: List[Tuple[str, Callable[[], float]]] = []
        self._multi: List[Callable[[], Dict[str, float]]] = []
        # per series: tick index -> value (dict keeps holes explicit)
        self._series: Dict[str, Dict[int, float]] = {}
        self._ticks: List[float] = []   # sample times, in order
        self._dropped_ticks = 0         # ticks aged out by max_samples
        self.started = False
        self.samples_taken = 0

    # -- wiring -----------------------------------------------------------
    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register one named series fed by ``fn()`` each tick."""
        self._single.append((name, fn))

    def add_multi_probe(self, fn: Callable[[], Dict[str, float]]) -> None:
        """Register a probe feeding many series from one evaluation."""
        self._multi.append(fn)

    def start(self) -> None:
        """Launch the sampler process (idempotent)."""
        if self.started:
            return
        self.started = True
        self.env.process(self._run())

    # -- sampling ---------------------------------------------------------
    def _next_boundary(self) -> float:
        now = self.env.now
        k = int(now / self.interval)
        boundary = k * self.interval
        if boundary < now - 1e-12:
            boundary = (k + 1) * self.interval
        return boundary

    def _run(self):
        boundary = self._next_boundary()
        if boundary > self.env.now:
            yield self.env.timeout(boundary - self.env.now)
        while True:
            self.sample_now()
            yield self.env.timeout(self.interval)

    def sample_now(self) -> None:
        """Evaluate every probe once at the current instant."""
        tick = len(self._ticks) + self._dropped_ticks
        self._ticks.append(self.env.now)
        for name, fn in self._single:
            self._record(name, tick, fn())
        for fn in self._multi:
            for name, value in fn().items():
                self._record(name, tick, value)
        self.samples_taken += 1
        if self.max_samples is not None \
                and len(self._ticks) > self.max_samples:
            horizon = tick - self.max_samples + 1
            self._ticks = self._ticks[-self.max_samples:]
            self._dropped_ticks = horizon
            for data in self._series.values():
                for old in [i for i in data if i < horizon]:
                    del data[old]

    def _record(self, name: str, tick: int, value: float) -> None:
        self._series.setdefault(name, {})[tick] = float(value)

    # -- access -----------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> List[Tuple[float, Optional[float]]]:
        """(time, value) per tick; ``None`` where the probe had a hole."""
        data = self._series.get(name, {})
        return [(t, data.get(i + self._dropped_ticks))
                for i, t in enumerate(self._ticks)]

    def value_at(self, name: str, t: float) -> Optional[float]:
        """The sample of the window containing ``t`` (None if absent)."""
        for tick_t, value in reversed(self.series(name)):
            if tick_t <= t + 1e-12:
                return value
        return None

    def _window(self, name: str, t0: float, t1: float,
                fill: Optional[float]) -> List[float]:
        out = []
        for tick_t, value in self.series(name):
            if t0 - 1e-12 <= tick_t <= t1 + 1e-12:
                if value is None:
                    if fill is not None:
                        out.append(fill)
                else:
                    out.append(value)
        return out

    def mean(self, name: str, t0: float, t1: float,
             fill: Optional[float] = 0.0) -> Optional[float]:
        """Mean over samples in [t0, t1]; holes count as ``fill``
        (pass ``fill=None`` to skip holes instead)."""
        vals = self._window(name, t0, t1, fill)
        return sum(vals) / len(vals) if vals else None

    def peak(self, name: str, t0: float, t1: float) -> Optional[float]:
        """Max over samples in [t0, t1] (holes skipped)."""
        vals = self._window(name, t0, t1, None)
        return max(vals) if vals else None

    def busy_fraction(self, name: str, t0: float, t1: float,
                      threshold: float = 0.9) -> Optional[float]:
        """Fraction of windows in [t0, t1] at/above ``threshold``
        (holes count as idle — an unreported resource was not busy)."""
        vals = self._window(name, t0, t1, 0.0)
        if not vals:
            return None
        return sum(1 for v in vals if v >= threshold) / len(vals)

    def to_json(self) -> dict:
        """Aligned-window export: one tick axis, one row per series."""
        return {
            "interval": self.interval,
            "ticks": list(self._ticks),
            "dropped_ticks": self._dropped_ticks,
            "series": {name: [v for _t, v in self.series(name)]
                       for name in self.names()},
        }

    def __repr__(self) -> str:
        return (f"TimeSeriesRecorder({len(self._series)} series, "
                f"{len(self._ticks)} ticks @ {self.interval:g}s)")
