"""Simulation-time metrics: counters, gauges, histograms with labels.

The paper's SC'2000 runs were reported through hand-assembled NetLogger
plots; the ESG follow-on systems (Bernholdt et al.) ran production
telemetry. This module is the simulation-scale equivalent: every sample
is stamped with the *simulated* clock, label sets distinguish hosts /
files / failure classes, and the whole registry exports as
Prometheus-style text or JSON so a run's numbers can be diffed across
seeds and configurations.

Metrics are deliberately allocation-light: a metric is a dict from a
sorted label tuple to a float (or bucket array), and the registry
get-or-creates by name so instrumented components never hold more than
an :class:`~repro.obs.Observability` reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.core import Environment

#: Default histogram buckets: spans sim-seconds from RTT scale to the
#: Figure 8 multi-hour scale (values beyond the last bound land in +Inf).
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
                   300.0, 1800.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _sanitize(name: str) -> str:
    """A logical metric name → a Prometheus-legal one."""
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Metric:
    """Base: one named family of labelled samples."""

    kind = "untyped"

    def __init__(self, env: Environment, name: str, help: str = ""):
        self.env = env
        self.name = name
        self.help = help
        self._samples: Dict[LabelKey, float] = {}
        self._updated: Dict[LabelKey, float] = {}

    def labelsets(self) -> List[LabelKey]:
        return list(self._samples)

    def value(self, **labels) -> float:
        """The current value for one label set (0.0 if never touched)."""
        return self._samples.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._samples.values())

    def _touch(self, key: LabelKey) -> None:
        self._updated[key] = self.env.now

    # -- export -----------------------------------------------------------
    def render(self) -> List[str]:
        name = _sanitize(self.name)
        lines = []
        if self.help:
            lines.append(f"# HELP {name} {self.help}")
        lines.append(f"# TYPE {name} {self.kind}")
        for key in sorted(self._samples):
            lines.append(f"{name}{_render_labels(key)} "
                         f"{self._samples[key]:g}")
        return lines

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [{"labels": dict(key), "value": self._samples[key],
                         "t": self._updated.get(key)}
                        for key in sorted(self._samples)],
        }


class Counter(Metric):
    """Monotonically increasing count (events, bytes, failures)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount
        self._touch(key)


class Gauge(Metric):
    """A value that can go up and down (queue depth, bytes in flight)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(labels)
        self._samples[key] = float(value)
        self._touch(key)

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount
        self._touch(key)


class Histogram(Metric):
    """Cumulative-bucket histogram (latency, transfer-time breakdowns)."""

    kind = "histogram"

    def __init__(self, env: Environment, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(env, name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # per labelset: [counts per bound] + overflow; plus sum/count
        self._buckets: Dict[LabelKey, List[int]] = {}
        self._counts: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        row = self._buckets.get(key)
        if row is None:
            row = [0] * (len(self.bounds) + 1)
            self._buckets[key] = row
            self._counts[key] = 0
            self._samples[key] = 0.0
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                row[i] += 1
                break
        else:
            row[-1] += 1
        self._samples[key] += value          # running sum
        self._counts[key] += 1
        self._touch(key)

    def count(self, **labels) -> int:
        """Number of observations for one label set."""
        return self._counts.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        """Sum of observations for one label set."""
        return self._samples.get(_label_key(labels), 0.0)

    @property
    def total_count(self) -> int:
        return sum(self._counts.values())

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation); None if empty."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be in [0, 1]")
        row = self._buckets.get(_label_key(labels))
        n = self.count(**labels)
        if row is None or n == 0:
            return None
        target = q * n
        running = 0
        for i, bound in enumerate(self.bounds):
            running += row[i]
            if running >= target:
                return bound
        return float("inf")

    def render(self) -> List[str]:
        name = _sanitize(self.name)
        lines = []
        if self.help:
            lines.append(f"# HELP {name} {self.help}")
        lines.append(f"# TYPE {name} histogram")
        for key in sorted(self._buckets):
            row = self._buckets[key]
            running = 0
            for i, bound in enumerate(self.bounds):
                running += row[i]
                le = 'le="%g"' % bound
                lines.append(f"{name}_bucket{_render_labels(key, le)} "
                             f"{running}")
            running += row[-1]
            le_inf = 'le="+Inf"'
            lines.append(f"{name}_bucket{_render_labels(key, le_inf)} "
                         f"{running}")
            lines.append(f"{name}_sum{_render_labels(key)} "
                         f"{self._samples[key]:g}")
            lines.append(f"{name}_count{_render_labels(key)} "
                         f"{self._counts[key]}")
        return lines

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.bounds),
            "samples": [{"labels": dict(key),
                         "counts": list(self._buckets[key]),
                         "sum": self._samples[key],
                         "count": self._counts[key],
                         "t": self._updated.get(key)}
                        for key in sorted(self._buckets)],
        }


class MetricsRegistry:
    """Get-or-create home for every metric of a simulation run."""

    def __init__(self, env: Environment):
        self.env = env
        self._metrics: Dict[str, Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(self.env, name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        """Look a metric up without creating it."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export -----------------------------------------------------------
    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines)

    def to_json(self) -> dict:
        """The whole registry as one JSON-serializable dict."""
        return {"t": self.env.now,
                "metrics": {name: m.to_json()
                            for name, m in sorted(self._metrics.items())}}

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
