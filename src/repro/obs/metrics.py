"""Simulation-time metrics: counters, gauges, histograms with labels.

The paper's SC'2000 runs were reported through hand-assembled NetLogger
plots; the ESG follow-on systems (Bernholdt et al.) ran production
telemetry. This module is the simulation-scale equivalent: every sample
is stamped with the *simulated* clock, label sets distinguish hosts /
files / failure classes, and the whole registry exports as
Prometheus-style text or JSON so a run's numbers can be diffed across
seeds and configurations.

Metrics are deliberately allocation-light: a metric is a dict from a
sorted label tuple to a float (or bucket array), and the registry
get-or-creates by name so instrumented components never hold more than
an :class:`~repro.obs.Observability` reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.core import Environment

#: Default histogram buckets: spans sim-seconds from RTT scale to the
#: Figure 8 multi-hour scale (values beyond the last bound land in +Inf).
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
                   300.0, 1800.0)

LabelKey = Tuple[Tuple[str, str], ...]

#: Where samples land once a metric's label-set budget is exhausted:
#: one shared fold-over series, so totals stay exact while memory stays
#: bounded (campaign-scale per-file labels cannot blow up the registry).
OVERFLOW_KEY: LabelKey = (("overflow", "true"),)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def quantile_from_counts(bounds: Tuple[float, ...], row: List[int],
                         q: float) -> Optional[float]:
    """Interpolated quantile from one cumulative-histogram count row.

    ``row`` is per-bucket counts (+ trailing overflow), as stored by
    :class:`Histogram` — or a *delta* of two such rows, which is how the
    SLO engine evaluates sliding windows. Linear interpolation within
    the bucket holding the q-th observation; the overflow bucket has no
    upper bound, so quantiles landing there return ``inf``. ``None``
    when the row is empty.
    """
    if not (0.0 <= q <= 1.0):
        raise ValueError("q must be in [0, 1]")
    n = sum(row)
    if n == 0:
        return None
    target = q * n
    running = 0
    lo = 0.0
    for i, bound in enumerate(bounds):
        cnt = row[i]
        if cnt and running + cnt >= target:
            frac = (target - running) / cnt
            return lo + frac * (bound - lo)
        running += cnt
        lo = bound
    return float("inf")


def count_over_threshold(bounds: Tuple[float, ...], row: List[int],
                         threshold: float) -> float:
    """Interpolated count of observations above ``threshold``.

    Same row convention as :func:`quantile_from_counts`; observations
    in the bucket straddling the threshold are apportioned linearly.
    The SLO engine's error-budget arithmetic (fraction of requests over
    the objective) is built on this.
    """
    total = float(sum(row))
    below = 0.0
    lo = 0.0
    for i, bound in enumerate(bounds):
        if bound <= threshold:
            below += row[i]
        else:
            if threshold > lo:
                below += row[i] * (threshold - lo) / (bound - lo)
            return total - below
        lo = bound
    # threshold at/beyond the last finite bound: only overflow is above.
    return float(row[-1])


def _sanitize(name: str) -> str:
    """A logical metric name → a Prometheus-legal one."""
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Metric:
    """Base: one named family of labelled samples."""

    kind = "untyped"

    def __init__(self, env: Environment, name: str, help: str = ""):
        self.env = env
        self.name = name
        self.help = help
        self._samples: Dict[LabelKey, float] = {}
        self._updated: Dict[LabelKey, float] = {}
        # Cardinality guard (wired by the registry): at most this many
        # distinct label sets; extra ones fold into OVERFLOW_KEY.
        self.max_labelsets: Optional[int] = None
        self.overflowed = 0          # samples folded into OVERFLOW_KEY
        self._on_overflow = None     # registry callback (warning + counter)

    def labelsets(self) -> List[LabelKey]:
        return list(self._samples)

    def _admit(self, key: LabelKey) -> LabelKey:
        """Apply the label-cardinality bound: returns ``key`` or the
        shared overflow key when the budget is exhausted."""
        if (self.max_labelsets is None or key in self._samples
                or key == OVERFLOW_KEY):
            return key
        if len(self._samples) < self.max_labelsets:
            return key
        self.overflowed += 1
        if self._on_overflow is not None:
            self._on_overflow(self)
        return OVERFLOW_KEY

    def value(self, **labels) -> float:
        """The current value for one label set (0.0 if never touched)."""
        return self._samples.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._samples.values())

    def _touch(self, key: LabelKey) -> None:
        self._updated[key] = self.env.now

    # -- export -----------------------------------------------------------
    def render(self) -> List[str]:
        name = _sanitize(self.name)
        lines = []
        if self.help:
            lines.append(f"# HELP {name} {self.help}")
        lines.append(f"# TYPE {name} {self.kind}")
        for key in sorted(self._samples):
            lines.append(f"{name}{_render_labels(key)} "
                         f"{self._samples[key]:g}")
        return lines

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [{"labels": dict(key), "value": self._samples[key],
                         "t": self._updated.get(key)}
                        for key in sorted(self._samples)],
        }


class Counter(Metric):
    """Monotonically increasing count (events, bytes, failures)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._admit(_label_key(labels))
        self._samples[key] = self._samples.get(key, 0.0) + amount
        self._touch(key)


class Gauge(Metric):
    """A value that can go up and down (queue depth, bytes in flight)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._admit(_label_key(labels))
        self._samples[key] = float(value)
        self._touch(key)

    def add(self, amount: float, **labels) -> None:
        key = self._admit(_label_key(labels))
        self._samples[key] = self._samples.get(key, 0.0) + amount
        self._touch(key)


class Histogram(Metric):
    """Cumulative-bucket histogram (latency, transfer-time breakdowns)."""

    kind = "histogram"

    def __init__(self, env: Environment, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(env, name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # per labelset: [counts per bound] + overflow; plus sum/count
        self._buckets: Dict[LabelKey, List[int]] = {}
        self._counts: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._admit(_label_key(labels))
        row = self._buckets.get(key)
        if row is None:
            row = [0] * (len(self.bounds) + 1)
            self._buckets[key] = row
            self._counts[key] = 0
            self._samples[key] = 0.0
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                row[i] += 1
                break
        else:
            row[-1] += 1
        self._samples[key] += value          # running sum
        self._counts[key] += 1
        self._touch(key)

    def count(self, **labels) -> int:
        """Number of observations for one label set."""
        return self._counts.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        """Sum of observations for one label set."""
        return self._samples.get(_label_key(labels), 0.0)

    @property
    def total_count(self) -> int:
        return sum(self._counts.values())

    def bucket_row(self, **labels) -> Optional[List[int]]:
        """A copy of one label set's per-bucket counts (+ overflow);
        ``None`` if the label set was never observed. Snapshots of this
        row diffed over time give *windowed* distributions — the SLO
        engine's sliding-window quantiles."""
        row = self._buckets.get(_label_key(labels))
        return list(row) if row is not None else None

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Quantile estimate, linearly interpolated within the bucket
        holding the q-th observation; None if empty, ``inf`` when the
        quantile lands in the unbounded overflow bucket."""
        row = self._buckets.get(_label_key(labels))
        if row is None:
            if not (0.0 <= q <= 1.0):
                raise ValueError("q must be in [0, 1]")
            return None
        return quantile_from_counts(self.bounds, row, q)

    def render(self) -> List[str]:
        name = _sanitize(self.name)
        lines = []
        if self.help:
            lines.append(f"# HELP {name} {self.help}")
        lines.append(f"# TYPE {name} histogram")
        for key in sorted(self._buckets):
            row = self._buckets[key]
            running = 0
            for i, bound in enumerate(self.bounds):
                running += row[i]
                le = 'le="%g"' % bound
                lines.append(f"{name}_bucket{_render_labels(key, le)} "
                             f"{running}")
            running += row[-1]
            le_inf = 'le="+Inf"'
            lines.append(f"{name}_bucket{_render_labels(key, le_inf)} "
                         f"{running}")
            lines.append(f"{name}_sum{_render_labels(key)} "
                         f"{self._samples[key]:g}")
            lines.append(f"{name}_count{_render_labels(key)} "
                         f"{self._counts[key]}")
        return lines

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.bounds),
            "samples": [{"labels": dict(key),
                         "counts": list(self._buckets[key]),
                         "sum": self._samples[key],
                         "count": self._counts[key],
                         "t": self._updated.get(key)}
                        for key in sorted(self._buckets)],
        }


class MetricsRegistry:
    """Get-or-create home for every metric of a simulation run.

    Parameters
    ----------
    max_labelsets:
        Distinct label sets each metric may hold before further new
        label sets fold into one shared overflow series (``None``
        disables the guard). Folded samples are counted in
        ``obs.labelsets_dropped_total{metric=...}`` and announced once
        per metric as an ``obs.cardinality.overflow`` ULM warning.
    logger:
        Optional :class:`~repro.netlogger.log.NetLogger` the overflow
        warning is emitted to (wired by ``Observability.create``).
    """

    def __init__(self, env: Environment,
                 max_labelsets: Optional[int] = 1024, logger=None):
        if max_labelsets is not None and max_labelsets < 1:
            raise ValueError("max_labelsets must be >= 1 when set")
        self.env = env
        self.max_labelsets = max_labelsets
        self.logger = logger
        self._metrics: Dict[str, Metric] = {}
        self._overflow_warned: set = set()

    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(self.env, name, help, **kwargs)
            metric.max_labelsets = self.max_labelsets
            metric._on_overflow = self._overflow
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}")
        return metric

    def _overflow(self, metric: Metric) -> None:
        """One metric just folded a sample into its overflow series."""
        if metric.name != "obs.labelsets_dropped_total":
            self.counter("obs.labelsets_dropped_total",
                         help="samples folded by the cardinality guard"
                         ).inc(metric=metric.name)
        if metric.name not in self._overflow_warned:
            self._overflow_warned.add(metric.name)
            if self.logger is not None:
                self.logger.event("obs.cardinality.overflow", prog="obs",
                                  metric=metric.name,
                                  limit=str(metric.max_labelsets))

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        """Look a metric up without creating it."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export -----------------------------------------------------------
    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines)

    def to_json(self) -> dict:
        """The whole registry as one JSON-serializable dict."""
        return {"t": self.env.now,
                "metrics": {name: m.to_json()
                            for name, m in sorted(self._metrics.items())}}

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
