"""Declarative per-tenant SLOs with multi-window burn-rate alerting.

The ESG follow-on made federation-wide monitoring a first-class
service; this module is the *enforcement* half of that: a tenant
declares objectives (p95 TTFB, a goodput floor, a queue-wait bound, an
integrity-detection latency bound) and the engine evaluates them over
sliding windows of the live metrics registry.

Cumulative histograms cannot answer windowed questions directly, so the
engine keeps periodic **bucket-row snapshots** per objective and diffs
them: the delta of two cumulative rows is the distribution of exactly
the observations that landed between the snapshots, and the
interpolated quantile/over-threshold helpers in :mod:`repro.obs.metrics`
turn that delta into a windowed p95 or an error rate.

Alerting follows the SRE multi-window multi-burn-rate recipe: an
objective *pages* only when both the long window (sustained damage) and
the short window (still happening right now) burn error budget faster
than the configured rate. Breach begin/end are emitted as ULM events
and as spans on the shared ``"faults"`` trace, so an SLO breach lands
on the same timeline as the injected faults that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import Observability
from repro.obs.metrics import (
    Histogram,
    count_over_threshold,
    quantile_from_counts,
)

#: objective keyword → (metric name, evaluation kind). Latency
#: objectives read a tenant-labelled histogram; throughput objectives
#: read a tenant-labelled byte counter.
OBJECTIVES: Dict[str, Tuple[str, str]] = {
    "p95_ttfb": ("rm.tenant_ttfb_seconds", "latency"),
    "queue_wait_p95": ("rm.queue_seconds", "latency"),
    "integrity_latency": ("rm.tenant_verify_seconds", "latency"),
    "goodput_floor": ("rm.tenant_bytes_total", "throughput"),
}


@dataclass(frozen=True)
class SloSpec:
    """One tenant's declared objective.

    Attributes
    ----------
    name:
        Alert/report identifier (unique per engine).
    objective:
        One of :data:`OBJECTIVES`.
    threshold:
        Seconds for latency objectives (the bound a request should stay
        under); bytes/second for ``goodput_floor`` (the floor).
    tenant:
        Metric label selector; empty string matches the unlabelled
        series.
    error_budget:
        Allowed fraction of requests over the threshold (latency
        objectives only) — p95 bounds use the default 0.05.
    long_window / short_window:
        Sliding windows in simulated seconds (sustained vs current).
    burn_threshold:
        Error-budget burn rate at/above which a window counts as
        burning; both windows must burn to open an alert.
    """

    name: str
    objective: str
    threshold: float
    tenant: str = ""
    error_budget: float = 0.05
    long_window: float = 300.0
    short_window: float = 60.0
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(f"unknown objective {self.objective!r} "
                             f"(have: {sorted(OBJECTIVES)})")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not (0.0 < self.error_budget < 1.0):
            raise ValueError("error_budget must be in (0, 1)")
        if self.short_window <= 0 or self.long_window < self.short_window:
            raise ValueError("need 0 < short_window <= long_window")

    @property
    def labels(self) -> Dict[str, str]:
        return {"tenant": self.tenant} if self.tenant else {}


@dataclass(frozen=True)
class SloEvaluation:
    """One spec's state at one evaluation instant."""

    t: float
    spec: str
    value_long: Optional[float]    # windowed p95 (latency) / goodput
    value_short: Optional[float]
    burn_long: float
    burn_short: float
    breaching: bool


@dataclass
class SloAlert:
    """One open/closed breach episode."""

    spec: str
    tenant: str
    opened_at: float
    closed_at: Optional[float] = None
    peak_burn: float = 0.0

    @property
    def open(self) -> bool:
        return self.closed_at is None


class SloEngine:
    """Periodic evaluator for a set of :class:`SloSpec` objectives.

    Call :meth:`add` for each spec, then :meth:`start`; or call
    :meth:`evaluate` manually at instants of your choosing (tests).
    """

    def __init__(self, env, obs: Observability,
                 eval_interval: float = 15.0, trace: str = "faults"):
        if eval_interval <= 0:
            raise ValueError("eval_interval must be positive")
        self.env = env
        self.obs = obs
        self.eval_interval = float(eval_interval)
        self.trace = trace
        self.specs: List[SloSpec] = []
        # per spec: [(t, state)] snapshots; state is a bucket row copy
        # (latency) or a counter value (throughput).
        self._snaps: Dict[str, List[Tuple[float, object]]] = {}
        # window baseline before any snapshot exists: engine creation
        self._started_at: float = float(env.now)
        self.evaluations: List[SloEvaluation] = []
        self.alerts: List[SloAlert] = []
        self._open: Dict[str, Tuple[SloAlert, object]] = {}
        self.started = False

    def add(self, spec: SloSpec) -> SloSpec:
        if any(s.name == spec.name for s in self.specs):
            raise ValueError(f"duplicate SLO name {spec.name!r}")
        self.specs.append(spec)
        return spec

    def start(self) -> None:
        """Launch the periodic evaluation process (idempotent)."""
        if self.started:
            return
        self.started = True
        self.env.process(self._run())

    def _run(self):
        while True:
            yield self.env.timeout(self.eval_interval)
            self.evaluate()

    # -- evaluation -------------------------------------------------------
    def _observe_state(self, spec: SloSpec):
        """Read the spec's metric right now (None = no data yet)."""
        metric_name, kind = OBJECTIVES[spec.objective]
        metric = (self.obs.metrics.get(metric_name)
                  if self.obs.metrics is not None else None)
        if metric is None:
            return None
        if kind == "latency":
            if not isinstance(metric, Histogram):
                return None
            return metric.bucket_row(**spec.labels)
        return metric.value(**spec.labels)

    def _window_state(self, spec: SloSpec, window: float):
        """The newest snapshot at least ``window`` old (the baseline the
        current state is diffed against), plus the span it covers."""
        now = self.env.now
        snaps = self._snaps.get(spec.name, [])
        baseline = None
        baseline_t = (self._started_at if self._started_at is not None
                      else now)
        for t, state in snaps:
            if t <= now - window + 1e-9:
                baseline, baseline_t = state, t
            else:
                break
        return baseline, max(now - baseline_t, 1e-9)

    def _burn(self, spec: SloSpec, window: float
              ) -> Tuple[Optional[float], float]:
        """(windowed value, burn rate) for one window of one spec."""
        metric_name, kind = OBJECTIVES[spec.objective]
        current = self._observe_state(spec)
        baseline, span = self._window_state(spec, window)
        if kind == "latency":
            metric = self.obs.metrics.get(metric_name)
            if current is None or metric is None:
                return None, 0.0
            row = list(current)
            if baseline is not None:
                row = [c - b for c, b in zip(row, baseline)]
            n = sum(row)
            if n <= 0:
                return None, 0.0   # no traffic in window: nothing burns
            over = count_over_threshold(metric.bounds, row,
                                        spec.threshold)
            p95 = quantile_from_counts(metric.bounds, row, 0.95)
            return p95, (over / n) / spec.error_budget
        # throughput: goodput over the window vs the declared floor.
        if current is None:
            return None, 0.0
        delta = float(current) - (float(baseline) if baseline is not None
                                  else 0.0)
        goodput = delta / span
        if delta <= 0:
            return 0.0, 0.0        # no data, not a breach (SRE practice)
        return goodput, spec.threshold / max(goodput, 1e-9)

    def evaluate(self) -> List[SloEvaluation]:
        """Evaluate every spec once at the current instant."""
        now = self.env.now
        out: List[SloEvaluation] = []
        for spec in self.specs:
            value_long, burn_long = self._burn(spec, spec.long_window)
            value_short, burn_short = self._burn(spec, spec.short_window)
            breaching = (burn_long >= spec.burn_threshold
                         and burn_short >= spec.burn_threshold)
            ev = SloEvaluation(now, spec.name, value_long, value_short,
                              burn_long, burn_short, breaching)
            out.append(ev)
            self.evaluations.append(ev)
            self._transition(spec, ev)
            # snapshot *after* evaluating, so windows never see their
            # own snapshot as a zero-delta baseline.
            state = self._observe_state(spec)
            if state is not None:
                snaps = self._snaps.setdefault(spec.name, [])
                snaps.append((now, list(state)
                              if isinstance(state, list) else state))
                # retain one snapshot older than the long window
                horizon = now - spec.long_window
                while len(snaps) > 1 and snaps[1][0] <= horizon:
                    snaps.pop(0)
        return out

    def _transition(self, spec: SloSpec, ev: SloEvaluation) -> None:
        """Open/close alerts; emit ULM events + faults-trace spans."""
        open_entry = self._open.get(spec.name)
        if ev.breaching:
            if open_entry is None:
                alert = SloAlert(spec.name, spec.tenant, ev.t)
                span = self.obs.span(
                    "slo.breach", trace=self.trace, slo=spec.name,
                    tenant=spec.tenant, objective=spec.objective)
                self._open[spec.name] = (alert, span)
                self.alerts.append(alert)
                self.obs.event("slo.breach.begin", prog="slo",
                               slo=spec.name, tenant=spec.tenant,
                               objective=spec.objective,
                               burn_long=f"{ev.burn_long:.2f}",
                               burn_short=f"{ev.burn_short:.2f}")
                self.obs.count("slo.breaches_total", slo=spec.name)
                open_entry = self._open[spec.name]
            alert = open_entry[0]
            alert.peak_burn = max(alert.peak_burn, ev.burn_long,
                                  ev.burn_short)
        elif open_entry is not None:
            alert, span = self._open.pop(spec.name)
            alert.closed_at = ev.t
            if span is not None:
                span.finish(status="recovered",
                            peak_burn=f"{alert.peak_burn:.2f}")
            self.obs.event("slo.breach.end", prog="slo", slo=spec.name,
                           tenant=spec.tenant,
                           seconds=f"{ev.t - alert.opened_at:.1f}")
        self.obs.gauge("slo.burn_rate", ev.burn_long, slo=spec.name,
                       window="long")
        self.obs.gauge("slo.burn_rate", ev.burn_short, slo=spec.name,
                       window="short")

    # -- reporting --------------------------------------------------------
    def summary(self) -> List[dict]:
        """Last evaluation + alert history per spec (CLI table rows)."""
        rows = []
        for spec in self.specs:
            last = next((ev for ev in reversed(self.evaluations)
                         if ev.spec == spec.name), None)
            episodes = [a for a in self.alerts if a.spec == spec.name]
            rows.append({
                "slo": spec.name,
                "tenant": spec.tenant or "-",
                "objective": spec.objective,
                "threshold": spec.threshold,
                "value": last.value_long if last is not None else None,
                "burn_long": last.burn_long if last is not None else 0.0,
                "burn_short": (last.burn_short if last is not None
                               else 0.0),
                "breaching": (last.breaching if last is not None
                              else False),
                "alerts": len(episodes),
                "open": sum(1 for a in episodes if a.open),
            })
        return rows

    def __repr__(self) -> str:
        return (f"SloEngine({len(self.specs)} specs, "
                f"{len(self.alerts)} alerts)")
