"""Causal tracing: spans threading ticket/file/transfer ids together.

A :class:`Span` is one timed operation (a ticket, a file's pipeline, a
replica attempt, a fault window); spans form trees via ``parent`` and
share a ``trace_id`` (one per request ticket, or the shared ``"faults"``
trace for injected incidents), so `repro trace` can show a CDAT request,
its catalog lookups, the GridFTP attempts, HRM staging, *and* the fault
windows that explain the retries — on one timeline.

The tracer never yields or schedules: recording a span is a list append
plus clock reads, so instrumentation does not perturb the simulation.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.sim.core import Environment


class Span:
    """One timed, attributed operation within a trace."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "started_at", "ended_at", "status", "fields")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 started_at: float, fields: Dict[str, str]):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = started_at
        self.ended_at: Optional[float] = None
        self.status = "open"
        self.fields = fields

    def annotate(self, **fields) -> "Span":
        """Attach extra key/values to the span."""
        for k, v in fields.items():
            self.fields[k] = str(v)
        return self

    def finish(self, status: str = "ok", **fields) -> "Span":
        """Close the span (idempotent — the first finish wins)."""
        if self.ended_at is None:
            self.ended_at = self.tracer.env.now
            self.status = status
            self.annotate(**fields)
        return self

    @property
    def open(self) -> bool:
        return self.ended_at is None

    @property
    def duration(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    # context-manager sugar: ``with tracer.start(...) as span:``
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(status="error" if exc_type is not None else "ok")

    def __repr__(self) -> str:
        dur = f"{self.duration:.3f}s" if self.duration is not None else "open"
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"{self.status}, {dur})")


class Tracer:
    """Records spans; a simulation run usually owns exactly one."""

    def __init__(self, env: Environment):
        self.env = env
        self.spans: List[Span] = []
        self._serial = itertools.count(1)

    def start(self, name: str, trace: Optional[str] = None,
              parent: Optional[Span] = None, **fields) -> Span:
        """Open a span; ``trace`` defaults to the parent's trace (or a
        fresh trace id when there is no parent)."""
        sid = f"s{next(self._serial)}"
        if trace is None:
            trace = parent.trace_id if parent is not None else f"t:{sid}"
        span = Span(self, name, trace, sid,
                    parent.span_id if parent is not None else None,
                    self.env.now, {k: str(v) for k, v in fields.items()})
        self.spans.append(span)
        return span

    # -- queries ----------------------------------------------------------
    def for_trace(self, trace_id: str) -> List[Span]:
        """Every span of one trace, in start order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def find(self, name: str) -> List[Span]:
        """Every span with a given operation name."""
        return [s for s in self.spans if s.name == name]

    def traces(self) -> List[str]:
        """Distinct trace ids, in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.trace_id, None)
        return list(seen)

    # -- rendering --------------------------------------------------------
    def render_tree(self, trace_id: str) -> str:
        """An indented text rendering of one trace's span tree."""
        spans = self.for_trace(trace_id)
        children: Dict[Optional[str], List[Span]] = {}
        for s in spans:
            children.setdefault(s.parent_id, []).append(s)
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans
                 if s.parent_id is None or s.parent_id not in by_id]
        lines = [f"trace {trace_id}"]

        def walk(span: Span, depth: int) -> None:
            dur = (f"{span.duration:.3f}s" if span.duration is not None
                   else "open")
            extra = " ".join(f"{k}={v}" for k, v in
                             sorted(span.fields.items()))
            lines.append(f"{'  ' * depth}- {span.name} "
                         f"[{span.started_at:.3f}s +{dur}] "
                         f"{span.status}" + (f" {extra}" if extra else ""))
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 1)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans)"
