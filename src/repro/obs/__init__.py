"""``repro.obs`` — the simulation-time observability layer.

Three legs, bundled by :class:`Observability` so a component needs one
optional reference to get all of them:

- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges,
  histograms with label sets and sim-clock timestamps (Prometheus-style
  text + JSON export);
- :class:`~repro.obs.trace.Tracer` — causal spans carrying
  ticket/file/transfer ids through the whole request path;
- a :class:`~repro.netlogger.log.NetLogger` — the ULM event log the
  lifeline analysis in :mod:`repro.netlogger.analysis` consumes.

Every emit helper checks for ``None`` legs, so components can be handed
a partially-wired bundle (e.g. metrics only) and instrumentation always
degrades to a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netlogger.log import NetLogger
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.trace import Span, Tracer
from repro.sim.core import Environment


@dataclass
class Observability:
    """The bundle instrumented components carry (all legs optional).

    The analysis tier (``repro.obs.timeseries`` / ``critical_path`` /
    ``slo``) reads this bundle; ``timeseries`` is attached by scenario
    helpers (e.g. ``EsgTestbed.start_timeseries``) when windowed
    recording is on.
    """

    env: Environment
    logger: Optional[NetLogger] = None
    metrics: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    timeseries: Optional[TimeSeriesRecorder] = None

    @classmethod
    def create(cls, env: Environment, host: str = "localhost",
               prog: str = "repro", logger: Optional[NetLogger] = None,
               capacity: Optional[int] = None) -> "Observability":
        """A fully-wired bundle; pass ``logger`` to share an existing
        event log (``capacity`` bounds a newly-created one)."""
        if logger is None:
            logger = NetLogger(env, host=host, prog=prog,
                               capacity=capacity)
        return cls(env=env, logger=logger,
                   metrics=MetricsRegistry(env, logger=logger),
                   tracer=Tracer(env))

    # -- guarded emit helpers --------------------------------------------
    def event(self, name: str, host: Optional[str] = None,
              prog: Optional[str] = None, **fields) -> None:
        """Append a ULM event (no-op without a logger)."""
        if self.logger is not None:
            self.logger.event(name, host=host, prog=prog, **fields)

    def count(self, name: str, amount: float = 1.0, **labels) -> None:
        """Increment a counter (no-op without metrics)."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge (no-op without metrics)."""
        if self.metrics is not None:
            self.metrics.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record a histogram observation (no-op without metrics)."""
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value, **labels)

    def span(self, name: str, trace: Optional[str] = None,
             parent: Optional[Span] = None, **fields) -> Optional[Span]:
        """Open a span (None without a tracer — callers must guard)."""
        if self.tracer is None:
            return None
        return self.tracer.start(name, trace=trace, parent=parent,
                                 **fields)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TimeSeriesRecorder",
    "Tracer",
]
