"""Critical-path extraction and dominant-bottleneck attribution.

The paper's central question is *where* the end-to-end path loses time
— catalog lookup, tape mount, staging, WAN transfer. A reconstructed
:class:`~repro.netlogger.analysis.Lifeline` already carries contiguous
milestone stages; this module turns them into an answer:

- :func:`extract_critical_path` clips a lifeline's stages to the
  request's own window ``[requested_at, finished_at]`` (speculative
  prefetch that ran *before* the request is, by definition, not on its
  critical path) and relabels them with blame categories;
- :func:`attribute_bottleneck` aggregates many critical paths into a
  dominant-bottleneck report — per-stage self-time totals, per-file
  dominant-stage counts — and **names the saturated resource** by
  joining the dominant stage against a
  :class:`~repro.obs.timeseries.TimeSeriesRecorder`: the busiest series
  of the stage's resource family (tape drives for mount/stage blame,
  WAN links for transfer blame, scheduler queues for queue blame, ...)
  over the same simulated window.

Because stages telescope (each begins where the previous ended), the
blame self-times of one file sum to exactly its end-to-end latency —
the accounting identity the chaos-run test suite pins to 1e-6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.netlogger.analysis import Lifeline
from repro.obs.timeseries import TimeSeriesRecorder

#: Lifeline stage name → blame category. Finer-grained than the raw
#: stages where the time series can tell resources apart: "stage" time
#: before the drive streams is mount/seek/queue blame ("mount"); once
#: ``tape.read.begin`` fires it is streaming blame ("stage").
BLAME_STAGES: Dict[str, str] = {
    "select": "catalog",        # replica lookup + forecast + rank
    "queue": "queue",           # scheduler admission wait
    "connect": "connect",       # control connection + auth
    "stage": "mount",           # drive wait + cartridge mount + seek
    "read": "stage",            # tape streaming into the disk cache
    "first_byte": "first_byte", # command setup, waiting on data start
    "stream": "transfer",       # bytes on the WAN
    "verify": "verify",         # checksum scan on arrival
    "backoff": "retry",         # waiting out a retry round
}

#: Blame category → time-series name prefixes of the resource family
#: that could explain it (the join key for naming the saturated
#: resource). Empty tuple = no physical resource to blame (retry time
#: is a symptom, not a resource).
STAGE_RESOURCES: Dict[str, Tuple[str, ...]] = {
    "catalog": ("catalog.",),
    "queue": ("sched.",),
    "connect": ("server.", "sched."),
    "mount": ("tape.",),
    "stage": ("tape.",),
    "first_byte": ("link.", "tape."),
    "transfer": ("link.",),
    "verify": (),
    "retry": (),
}


@dataclass(frozen=True)
class BlameStage:
    """One clipped, blame-labelled span of a critical path."""

    blame: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """One file's end-to-end path, decomposed into blame self-times."""

    file: str
    ticket: Optional[str]
    outcome: str
    start: float
    end: float
    stages: List[BlameStage] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.end - self.start

    def self_times(self) -> Dict[str, float]:
        """Seconds of end-to-end latency attributed to each blame."""
        out: Dict[str, float] = {}
        for stage in self.stages:
            out[stage.blame] = out.get(stage.blame, 0.0) + stage.duration
        return out

    def dominant(self) -> Optional[Tuple[str, float]]:
        """The blame category this file spent the most time in."""
        times = self.self_times()
        if not times:
            return None
        blame = max(sorted(times), key=lambda b: times[b])
        return blame, times[blame]

    def telescopes(self, tol: float = 1e-6) -> bool:
        """Do the stage durations sum to the end-to-end latency?

        False means the log lost milestones for this file (ring-buffer
        eviction) and its blame decomposition is untrustworthy.
        """
        covered = sum(stage.duration for stage in self.stages)
        return abs(covered - self.total) <= tol

    def __repr__(self) -> str:
        dom = self.dominant()
        label = f"{dom[0]}={dom[1]:.2f}s" if dom else "empty"
        return (f"CriticalPath({self.file!r}, {self.outcome}, "
                f"{self.total:.2f}s, dominant {label})")


def extract_critical_path(life: Lifeline) -> Optional[CriticalPath]:
    """A lifeline's stages, clipped to its request window and blamed.

    Returns ``None`` for lifelines that never became terminal or whose
    request event was lost — use
    :func:`~repro.netlogger.analysis.reconstruction_report` to account
    for those instead of silently skipping them.
    """
    if (life.requested_at is None or life.finished_at is None
            or life.outcome is None):
        return None
    t0, t1 = life.requested_at, life.finished_at
    path = CriticalPath(file=life.file, ticket=life.ticket,
                        outcome=life.outcome, start=t0, end=t1)
    for stage in life.stages:
        start = max(stage.start, t0)
        end = min(stage.end, t1)
        if end <= start:
            continue   # pre-request prefetch / post-terminal tails
        blame = BLAME_STAGES.get(stage.name, stage.name)
        path.stages.append(BlameStage(blame, start, end))
    return path


def extract_critical_paths(lifelines: Iterable[Lifeline]
                           ) -> List[CriticalPath]:
    """Critical paths for every terminal lifeline (others skipped —
    run a reconstruction report to count them)."""
    if isinstance(lifelines, dict):
        lifelines = lifelines.values()
    out = []
    for life in lifelines:
        path = extract_critical_path(life)
        if path is not None:
            out.append(path)
    return out


@dataclass(frozen=True)
class ResourceFinding:
    """The saturated resource a dominant stage was joined to."""

    series: str            # time-series name (e.g. "tape.hpss-pdsf.busy")
    mean: float            # mean utilization over the analysis window
    peak: float
    busy_fraction: float   # fraction of windows at >= the threshold

    def render(self) -> str:
        return (f"{self.series} (mean {self.mean:.2f}, peak "
                f"{self.peak:.2f}, busy {self.busy_fraction:.0%})")


@dataclass
class BottleneckReport:
    """Aggregated dominant-bottleneck attribution for a set of files."""

    files: int
    window: Tuple[float, float]
    blame_totals: Dict[str, float] = field(default_factory=dict)
    dominant_counts: Dict[str, int] = field(default_factory=dict)
    dominant_stage: Optional[str] = None
    resource: Optional[ResourceFinding] = None
    per_ticket: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def dominant_share(self) -> float:
        """Fraction of files whose own dominant stage is the global one."""
        if not self.files or self.dominant_stage is None:
            return 0.0
        return self.dominant_counts.get(self.dominant_stage, 0) / self.files

    def render(self) -> str:
        total = sum(self.blame_totals.values()) or 1.0
        lines = [f"bottleneck report: {self.files} files over "
                 f"[{self.window[0]:.1f}s .. {self.window[1]:.1f}s]"]
        for blame in sorted(self.blame_totals,
                            key=lambda b: -self.blame_totals[b]):
            secs = self.blame_totals[blame]
            n = self.dominant_counts.get(blame, 0)
            lines.append(f"  {blame:<11} {secs:10.1f}s "
                         f"({secs / total:5.1%})  dominant for {n} files")
        if self.dominant_stage is not None:
            lines.append(f"dominant stage: {self.dominant_stage} "
                         f"({self.dominant_share:.0%} of files)")
        if self.resource is not None:
            lines.append(f"saturated resource: {self.resource.render()}")
        return "\n".join(lines)


def attribute_bottleneck(
        source: Iterable[Union[Lifeline, CriticalPath]],
        timeseries: Optional[TimeSeriesRecorder] = None,
        busy_threshold: float = 0.9) -> BottleneckReport:
    """Fold critical paths into a dominant-bottleneck report.

    ``source`` accepts lifelines (extracted on the fly) or pre-built
    critical paths. With a ``timeseries`` recorder, the dominant blame
    category is joined against its resource family
    (:data:`STAGE_RESOURCES`) and the busiest matching series over the
    report's window is named as the saturated resource.
    """
    paths: List[CriticalPath] = []
    if isinstance(source, dict):
        source = source.values()
    for item in source:
        if isinstance(item, Lifeline):
            path = extract_critical_path(item)
            if path is not None:
                paths.append(path)
        else:
            paths.append(item)
    if not paths:
        return BottleneckReport(files=0, window=(0.0, 0.0))
    t0 = min(p.start for p in paths)
    t1 = max(p.end for p in paths)
    report = BottleneckReport(files=len(paths), window=(t0, t1))
    for path in paths:
        for blame, secs in path.self_times().items():
            report.blame_totals[blame] = \
                report.blame_totals.get(blame, 0.0) + secs
        dom = path.dominant()
        if dom is not None:
            report.dominant_counts[dom[0]] = \
                report.dominant_counts.get(dom[0], 0) + 1
        if path.ticket is not None:
            per = report.per_ticket.setdefault(str(path.ticket), {})
            for blame, secs in path.self_times().items():
                per[blame] = per.get(blame, 0.0) + secs
    if report.blame_totals:
        report.dominant_stage = max(
            sorted(report.blame_totals),
            key=lambda b: report.blame_totals[b])
    if timeseries is not None and report.dominant_stage is not None:
        report.resource = _join_resource(
            report.dominant_stage, timeseries, t0, t1, busy_threshold)
    return report


def _join_resource(blame: str, ts: TimeSeriesRecorder, t0: float,
                   t1: float, busy_threshold: float
                   ) -> Optional[ResourceFinding]:
    """The busiest series of the blame's resource family over the
    window — the named answer to "which resource was saturated"."""
    prefixes = STAGE_RESOURCES.get(blame, ())
    best: Optional[ResourceFinding] = None
    for name in ts.names():
        if not any(name.startswith(p) for p in prefixes):
            continue
        mean = ts.mean(name, t0, t1)
        if mean is None:
            continue
        finding = ResourceFinding(
            series=name, mean=mean,
            peak=ts.peak(name, t0, t1) or 0.0,
            busy_fraction=ts.busy_fraction(name, t0, t1,
                                           busy_threshold) or 0.0)
        if best is None or finding.mean > best.mean:
            best = finding
    return best
