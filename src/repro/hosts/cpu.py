"""CPU throughput model: per-byte copies plus per-packet interrupts.

Moving a byte through the stack costs copy time; every arriving packet
costs an interrupt. Interrupt coalescing dispatches ``coalesce`` packets
per interrupt; jumbo frames raise the MTU. Either way, fewer interrupts
per byte → higher ceiling, which is exactly the §7 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuModel:
    """Throughput ceiling of one host CPU doing network I/O.

    Defaults approximate the SC'2000-era Linux workstations: without
    coalescing a GbE NIC saturates the CPU well below line rate; with
    8-way coalescing the host approaches (but does not quite reach) line
    rate with the CPU at ~100% — matching the paper's observation.

    Attributes
    ----------
    copy_cost_per_byte:
        Seconds of CPU per byte moved (memory copies, checksums).
    interrupt_cost:
        Seconds of CPU per interrupt serviced.
    mtu:
        Packet payload size in bytes (1500 Ethernet, 9000 jumbo).
    coalesce:
        Packets dispatched per interrupt (1 = coalescing off).
    """

    copy_cost_per_byte: float = 6e-9
    interrupt_cost: float = 25e-6
    mtu: float = 1500.0
    coalesce: int = 8

    def __post_init__(self) -> None:
        if self.copy_cost_per_byte <= 0 or self.interrupt_cost < 0:
            raise ValueError("costs must be positive")
        if self.mtu <= 0:
            raise ValueError("mtu must be positive")
        if self.coalesce < 1:
            raise ValueError("coalesce must be >= 1")

    @property
    def seconds_per_byte(self) -> float:
        """Total CPU time consumed per byte of network I/O."""
        return (self.copy_cost_per_byte
                + self.interrupt_cost / (self.mtu * self.coalesce))

    @property
    def throughput_cap(self) -> float:
        """Maximum sustainable I/O rate, bytes/s (CPU at 100%)."""
        return 1.0 / self.seconds_per_byte

    def utilization(self, rate: float) -> float:
        """Fraction of the CPU consumed by I/O at ``rate`` bytes/s."""
        if rate < 0:
            raise ValueError("rate must be >= 0")
        return min(rate * self.seconds_per_byte, 1.0)

    def with_coalescing(self, coalesce: int) -> "CpuModel":
        """A copy of this model with a different coalescing factor."""
        return CpuModel(self.copy_cost_per_byte, self.interrupt_cost,
                        self.mtu, coalesce)

    def with_jumbo_frames(self, mtu: float = 9000.0) -> "CpuModel":
        """A copy of this model using jumbo frames."""
        return CpuModel(self.copy_cost_per_byte, self.interrupt_cost,
                        mtu, self.coalesce)
