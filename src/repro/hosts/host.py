"""The Host: internal bottlenecks materialized as topology links."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hosts.cpu import CpuModel
from repro.hosts.disk import DiskArray
from repro.net.topology import Link, Topology
from repro.net.units import gbps


@dataclass
class HostSpec:
    """Hardware description of a workstation/server.

    Attributes
    ----------
    nic_rate:
        Line rate of one NIC, bytes/s.
    nic_count:
        Bonded NICs (SC'2000 cluster switches used dual-bonded GbE).
    bus_rate:
        PCI/memory bus ceiling, bytes/s (32-bit/33 MHz PCI ≈ 133 MB/s —
        the "remaining bottleneck" §7 mentions). ``None`` = not limiting.
    cpu:
        The CPU interrupt/copy model.
    disk:
        The attached disk array.
    """

    nic_rate: float = gbps(1)
    nic_count: int = 1
    bus_rate: Optional[float] = 133 * 2**20
    cpu: CpuModel = field(default_factory=CpuModel)
    disk: DiskArray = field(default_factory=DiskArray)

    def __post_init__(self) -> None:
        if self.nic_rate <= 0 or self.nic_count < 1:
            raise ValueError("nic_rate must be positive, nic_count >= 1")
        if self.bus_rate is not None and self.bus_rate <= 0:
            raise ValueError("bus_rate must be positive")

    @property
    def line_rate(self) -> float:
        """Aggregate NIC rate, capped by the bus."""
        rate = self.nic_rate * self.nic_count
        if self.bus_rate is not None:
            rate = min(rate, self.bus_rate)
        return rate


class Host:
    """A named endpoint wired into the topology.

    Creates nodes ``<name>`` (external attachment), ``host:<name>:app``
    (memory endpoint) and ``host:<name>:store`` (disk endpoint), joined
    by disk, CPU, and NIC links in each direction. Connect the host to a
    router with ``topology.duplex_link(host.node, router, ...)`` or
    :meth:`uplink`.

    Note: CPU capacity is modelled per direction (send and receive each
    get a full CPU). In every reproduced experiment hosts move data in
    one dominant direction, so this does not distort results.
    """

    def __init__(self, topology: Topology, name: str, site: str = "",
                 spec: Optional[HostSpec] = None):
        if name in topology.nodes:
            raise ValueError(f"node name {name!r} already in topology")
        self.topology = topology
        self.name = name
        self.site = site or name
        self.spec = spec or HostSpec()
        self.links: Dict[str, Link] = {}
        self._build()

    # -- node names ---------------------------------------------------------
    @property
    def node(self) -> str:
        """External attachment node (wire WAN links here)."""
        return self.name

    @property
    def app_node(self) -> str:
        """Memory endpoint (transfers that skip the disk)."""
        return f"host:{self.name}:app"

    @property
    def store_node(self) -> str:
        """Disk endpoint (disk-to-disk transfers start/end here)."""
        return f"host:{self.name}:store"

    def endpoint(self, kind: str = "store") -> str:
        """Endpoint node name by kind: 'store', 'app', or 'net'."""
        if kind == "store":
            return self.store_node
        if kind == "app":
            return self.app_node
        if kind == "net":
            return self.node
        raise ValueError(f"unknown endpoint kind {kind!r}")

    # -- wiring ---------------------------------------------------------------
    def _build(self) -> None:
        t = self.topology
        for node in (self.node, self.app_node, self.store_node):
            t.add_node(node, site=self.site,
                       kind="host" if node == self.node else "internal")
        eps = 1e-6  # negligible internal latency
        spec = self.spec
        cpu_cap = spec.cpu.throughput_cap
        line = spec.line_rate
        pairs = [
            ("disk", self.store_node, self.app_node, spec.disk.rate),
            ("cpu", self.app_node, f"host:{self.name}:nic", cpu_cap),
            ("nic", f"host:{self.name}:nic", self.node, line),
        ]
        t.add_node(f"host:{self.name}:nic", site=self.site, kind="internal")
        for label, a, b, capacity in pairs:
            out = t.add_link(a, b, capacity, eps,
                             name=f"host:{self.name}:{label}:out")
            inn = t.add_link(b, a, capacity, eps,
                             name=f"host:{self.name}:{label}:in")
            out.site = self.site
            inn.site = self.site
            self.links[f"{label}:out"] = out
            self.links[f"{label}:in"] = inn

    def uplink(self, router: str, capacity: Optional[float] = None,
               latency: float = 1e-4) -> None:
        """Connect the host's external node to a router."""
        cap = capacity if capacity is not None else self.spec.line_rate
        fwd, rev = self.topology.duplex_link(
            self.node, router, cap, latency, name=f"up:{self.name}:{router}")
        fwd.site = self.site
        rev.site = self.site
        self.links["uplink:out"] = fwd
        self.links["uplink:in"] = rev

    # -- dynamics --------------------------------------------------------------
    def set_coalescing(self, coalesce: int) -> None:
        """Change interrupt coalescing; CPU link capacities follow."""
        self.spec.cpu = self.spec.cpu.with_coalescing(coalesce)
        cap = self.spec.cpu.throughput_cap
        for direction in ("out", "in"):
            link = self.links[f"cpu:{direction}"]
            link.nominal_capacity = cap
            link.capacity = cap

    def cpu_utilization(self, current_rate: float) -> float:
        """CPU fraction consumed by I/O at ``current_rate`` bytes/s."""
        return self.spec.cpu.utilization(current_rate)

    def __repr__(self) -> str:
        return (f"Host({self.name!r}, line={self.spec.line_rate * 8 / 1e9:.2f}"
                f"Gb/s, cpu_cap={self.spec.cpu.throughput_cap * 8 / 1e9:.2f}"
                f"Gb/s, disk={self.spec.disk.rate / 2**20:.0f}MB/s)")
