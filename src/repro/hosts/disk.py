"""Disk and software-RAID throughput model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskSpec:
    """One spindle.

    Attributes
    ----------
    rate:
        Sustained sequential transfer rate, bytes/s. Era-typical values:
        ~10 MB/s for a commodity IDE disk (the Figure 8 bottleneck),
        ~30 MB/s for a good SCSI disk.
    seek_time:
        Average positioning time per open/seek, seconds (used by the
        storage layer for per-file setup, not by the fluid model).
    """

    rate: float = 30 * 2**20
    seek_time: float = 0.008

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("disk rate must be positive")
        if self.seek_time < 0:
            raise ValueError("seek_time must be >= 0")


@dataclass(frozen=True)
class DiskArray:
    """``count`` spindles striped by software RAID-0.

    The paper: "We used multiple disks with software RAID to ensure that
    disk was not the bottleneck."

    Attributes
    ----------
    spec:
        The per-spindle spec.
    count:
        Number of spindles striped together.
    raid_overhead:
        Fractional throughput loss to the software RAID layer.
    """

    spec: DiskSpec = DiskSpec()
    count: int = 1
    raid_overhead: float = 0.05

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("need at least one disk")
        if not (0.0 <= self.raid_overhead < 1.0):
            raise ValueError("raid_overhead must be in [0, 1)")

    @property
    def rate(self) -> float:
        """Aggregate sequential rate of the array, bytes/s."""
        scale = 1.0 if self.count == 1 else (1.0 - self.raid_overhead)
        return self.spec.rate * self.count * scale

    @property
    def seek_time(self) -> float:
        """Positioning time (parallel seeks: same as one spindle)."""
        return self.spec.seek_time
