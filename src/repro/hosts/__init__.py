"""Endpoint host model.

The paper's §7 observes that at gigabit rates the *CPU*, not the network,
is the bottleneck ("the CPU was running at near 100% capacity... caused by
the numerous interrupts that must be serviced") and that interrupt
coalescing and jumbo frames relieve it; it also notes that the SC'2000
servers used software RAID "to ensure that disk was not the bottleneck",
while the Figure 8 commodity experiment *was* disk-limited.

To make those effects fall out of the bandwidth allocator instead of being
bolted on, a :class:`Host` materializes its internal bottlenecks as links
in the topology::

    store --disk--> app --cpu--> nic --line-rate--> <external node>

so a disk-to-disk transfer traverses source disk, source CPU, source NIC,
the WAN, and the destination's mirror chain — and contention at any stage
is just link sharing.
"""

from repro.hosts.cpu import CpuModel
from repro.hosts.disk import DiskArray, DiskSpec
from repro.hosts.host import Host, HostSpec

__all__ = ["CpuModel", "DiskArray", "DiskSpec", "Host", "HostSpec"]
