"""The ESG-II lightweight client ("portal").

§9: ESG-II adds "(1) distribution of data analysis and visualization
pipelines, so that some data analysis operations (at least extraction
and subsetting, similar to those available with DODS) can be performed
local to the data ...; (3) access to data and analysis capabilities
from lightweight clients such as browsers, and portals".

The :class:`PortalClient` is that lightweight client: it never pulls
whole files. Every request names a server-side operation (subset /
extract / time-mean) executed by the GridFTP ERET plug-ins at the best
replica, so only derived products cross the WAN — a browser-scale
client on top of the heavyweight grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.data.ncformat import decode
from repro.data.variables import Dataset
from repro.gridftp.client import GridFtpClient
from repro.gridftp.protocol import GridFtpConfig
from repro.metadata.catalog import MetadataCatalog
from repro.replica.catalog import ReplicaCatalog
from repro.replica.selection import NwsBestPolicy, ReplicaCandidate
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


@dataclass
class PortalResponse:
    """What a portal request returns."""

    dataset: Dataset
    bytes_shipped: float
    full_bytes: float
    source_hostname: str
    seconds: float

    @property
    def reduction(self) -> float:
        """How much smaller the shipped product is than the file."""
        return (self.full_bytes / self.bytes_shipped
                if self.bytes_shipped > 0 else float("inf"))


class PortalClient:
    """Server-side-processing-only access to the archive.

    Parameters
    ----------
    env:
        Simulation environment.
    metadata, replica_catalog:
        The catalogs (shared with the heavyweight stack).
    gridftp:
        The GridFTP client used under the hood.
    client_host:
        The portal machine's host.
    mds:
        Optional MDS for NWS-guided replica choice; without it the
        first replica wins.
    """

    _serial = itertools.count(1)

    def __init__(self, env: Environment, metadata: MetadataCatalog,
                 replica_catalog: ReplicaCatalog,
                 gridftp: GridFtpClient, client_host, registry: Dict,
                 mds=None):
        self.env = env
        self.metadata = metadata
        self.replica_catalog = replica_catalog
        self.gridftp = gridftp
        self.client_host = client_host
        self.registry = registry
        self.mds = mds
        self.scratch = FileSystem(env, f"portal-{next(self._serial)}")
        self.requests_served = 0

    # -- selection helpers --------------------------------------------------
    def _pick_replica(self, collection: str, logical_file: str):
        """Simulation process: best replica for a small product."""
        replicas = yield from self.replica_catalog.find_replicas(
            collection, logical_file)
        candidates: List[ReplicaCandidate] = []
        for loc in replicas:
            server = self.registry.get(loc.hostname)
            if server is None:
                continue
            bandwidth, latency = 1e6, 0.1
            if self.mds is not None:
                forecast = yield from self.mds.nws_forecast(
                    server.host.node, self.client_host.node)
                if forecast is not None:
                    bandwidth, latency = forecast
            # Portal products are tiny: a tape-staging wait would dwarf
            # the transfer, so staging cost must enter the ranking.
            stage_wait = 0.0
            if server.hrm is not None and not server.hrm.is_staged(
                    logical_file):
                stage_wait = server.hrm.estimate_wait(logical_file)
            candidates.append(ReplicaCandidate(loc, bandwidth, latency,
                                               stage_wait=stage_wait))
        if not candidates:
            raise RuntimeError(f"no reachable replica of {logical_file!r}")
        ranked = NwsBestPolicy(consider_staging=True).rank(candidates,
                                                           nbytes=1e6)
        return ranked[0].location

    # -- the portal operations ------------------------------------------------
    def request(self, dataset_id: str, variable: str,
                operation: str = "subset",
                years: Optional[Tuple[int, int]] = None,
                months: Optional[Tuple[int, int]] = None,
                **ranges: Tuple[float, float]):
        """Simulation process: one lightweight request.

        ``operation`` is an ERET plug-in name ("subset", "extract",
        "time_mean"). Spatiotemporal ``ranges`` apply to "subset".
        Returns a :class:`PortalResponse` whose dataset merges the
        per-file products along time (except "time_mean", which returns
        the first product).
        """
        names = yield from self.metadata.query_files(
            dataset_id, variable, years, months)
        if not names:
            raise RuntimeError(f"selection matched nothing in "
                               f"{dataset_id!r}")
        started = self.env.now
        shipped = 0.0
        full = 0.0
        datasets = []
        source = ""
        args = {"variable": variable}
        if operation == "subset":
            args.update({k: v for k, v in ranges.items()})
        cfg = GridFtpConfig(parallelism=1)
        for name in names:
            loc = yield from self._pick_replica(dataset_id, name)
            source = loc.hostname
            session = yield from self.gridftp.connect(
                self.client_host, loc.hostname, cfg)
            dest_name = f"{name}.{operation}"
            stats = yield from session.get(
                name, self.scratch, self.client_host,
                dest_name=dest_name, eret=operation, eret_args=args,
                config=cfg)
            session.close()
            shipped += stats.transferred_bytes
            full += self.registry[loc.hostname].fs.stat(name).size \
                if self.registry[loc.hostname].fs.exists(name) else 0.0
            blob = self.scratch.stat(dest_name).content
            if blob is None:
                raise RuntimeError(f"{name}: server shipped no content")
            datasets.append(decode(blob))
        self.requests_served += 1
        if operation == "time_mean" or len(datasets) == 1:
            merged = datasets[0]
        else:
            from repro.cdat.analysis import concat_time
            merged = concat_time(datasets, variable)
        return PortalResponse(dataset=merged, bytes_shipped=shipped,
                              full_bytes=full, source_hostname=source,
                              seconds=self.env.now - started)
