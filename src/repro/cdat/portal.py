"""The ESG-II lightweight client ("portal").

§9: ESG-II adds "(1) distribution of data analysis and visualization
pipelines, so that some data analysis operations (at least extraction
and subsetting, similar to those available with DODS) can be performed
local to the data ...; (3) access to data and analysis capabilities
from lightweight clients such as browsers, and portals".

The :class:`PortalClient` is that lightweight client: it never pulls
whole files. Every request names a server-side operation (subset /
extract / time-mean) executed by the GridFTP ERET plug-ins at the best
replica, so only derived products cross the WAN — a browser-scale
client on top of the heavyweight grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.data.ncformat import decode
from repro.data.variables import Dataset
from repro.gridftp.client import GridFtpClient
from repro.gridftp.protocol import GridFtpConfig, GridFtpError
from repro.metadata.catalog import (
    DatasetRecord,
    MetadataCatalog,
    MetadataError,
)
from repro.replica.catalog import ReplicaCatalog
from repro.replica.selection import NwsBestPolicy, ReplicaCandidate
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


@dataclass
class PortalResponse:
    """What a portal request returns."""

    dataset: Dataset
    bytes_shipped: float
    full_bytes: float
    source_hostname: str
    seconds: float
    # Source bytes the servers decoded to produce the products (chunked
    # SDBF replicas decode only the touched chunks; cache hits decode 0).
    server_decoded_bytes: float = 0.0
    # Products answered from a server's derived-product cache.
    cache_hits: int = 0
    # Files the selection fanned out over.
    files: int = 1

    @property
    def reduction(self) -> float:
        """How much smaller the shipped product is than the file."""
        return (self.full_bytes / self.bytes_shipped
                if self.bytes_shipped > 0 else float("inf"))


class PortalClient:
    """Server-side-processing-only access to the archive.

    Parameters
    ----------
    env:
        Simulation environment.
    metadata, replica_catalog:
        The catalogs (shared with the heavyweight stack).
    gridftp:
        The GridFTP client used under the hood.
    client_host:
        The portal machine's host.
    mds:
        Optional MDS for NWS-guided replica choice; without it the
        first replica wins.
    """

    _serial = itertools.count(1)

    def __init__(self, env: Environment, metadata: MetadataCatalog,
                 replica_catalog: ReplicaCatalog,
                 gridftp: GridFtpClient, client_host, registry: Dict,
                 mds=None):
        self.env = env
        self.metadata = metadata
        self.replica_catalog = replica_catalog
        self.gridftp = gridftp
        self.client_host = client_host
        self.registry = registry
        self.mds = mds
        self.scratch = FileSystem(env, f"portal-{next(self._serial)}")
        self.requests_served = 0
        # Scratch names must be unique per fetch: concurrent series
        # workers of the same operation would otherwise overwrite each
        # other's product mid-decode.
        self._fetch_serial = itertools.count(1)

    # -- selection helpers --------------------------------------------------
    def _pick_replica(self, collection: str, logical_file: str):
        """Simulation process: best replica for a small product."""
        replicas = yield from self.replica_catalog.find_replicas(
            collection, logical_file)
        candidates: List[ReplicaCandidate] = []
        for loc in replicas:
            server = self.registry.get(loc.hostname)
            if server is None:
                continue
            bandwidth, latency = 1e6, 0.1
            if self.mds is not None:
                forecast = yield from self.mds.nws_forecast(
                    server.host.node, self.client_host.node)
                if forecast is not None:
                    bandwidth, latency = forecast
            # Portal products are tiny: a tape-staging wait would dwarf
            # the transfer, so staging cost must enter the ranking.
            stage_wait = 0.0
            if server.hrm is not None and not server.hrm.is_staged(
                    logical_file):
                stage_wait = server.hrm.estimate_wait(logical_file)
            candidates.append(ReplicaCandidate(loc, bandwidth, latency,
                                               stage_wait=stage_wait))
        if not candidates:
            raise RuntimeError(f"no reachable replica of {logical_file!r}")
        ranked = NwsBestPolicy(consider_staging=True).rank(candidates,
                                                           nbytes=1e6)
        return ranked[0].location

    # -- one file -> one derived product --------------------------------------
    def _fetch_one(self, dataset_id: str, name: str, operation: str,
                   args: dict, cfg: GridFtpConfig):
        """Simulation process: derived product of one logical file.

        Picks the best replica, runs the ERET operation there, decodes
        the shipped product, and cleans the scratch copy up. Returns
        ``(dataset, stats, full_size, hostname)`` where ``full_size``
        is the file's registered size — what a whole-file download
        would have moved (the registry's disk size would read 0 for an
        unstaged tape replica).
        """
        loc = yield from self._pick_replica(dataset_id, name)
        session = yield from self.gridftp.connect(
            self.client_host, loc.hostname, cfg)
        dest_name = f"{name}.{operation}.{next(self._fetch_serial)}"
        try:
            stats = yield from session.get(
                name, self.scratch, self.client_host,
                dest_name=dest_name, eret=operation, eret_args=args,
                config=cfg)
        finally:
            session.close()
        blob = self.scratch.stat(dest_name).content
        self.scratch.delete(dest_name)
        if blob is None:
            raise RuntimeError(f"{name}: server shipped no content")
        try:
            full = self.metadata.file_size(dataset_id, name)
        except MetadataError:
            server = self.registry[loc.hostname]
            try:
                full = server.size(name)
            except GridFtpError:
                full = 0.0
        return decode(blob), stats, full, loc.hostname

    @staticmethod
    def _merge(datasets: List[Dataset], variable: str,
               operation: str) -> Dataset:
        if operation == "time_mean" or len(datasets) == 1:
            return datasets[0]
        from repro.cdat.analysis import concat_time
        return concat_time(datasets, variable)

    # -- the portal operations ------------------------------------------------
    def request(self, dataset_id: str, variable: str,
                operation: str = "subset",
                years: Optional[Tuple[int, int]] = None,
                months: Optional[Tuple[int, int]] = None,
                **ranges: Tuple[float, float]):
        """Simulation process: one lightweight request.

        ``operation`` is an ERET plug-in name ("subset", "extract",
        "time_mean"). Spatiotemporal ``ranges`` apply to "subset".
        Returns a :class:`PortalResponse` whose dataset merges the
        per-file products along time (except "time_mean", which returns
        the first product).
        """
        names = yield from self.metadata.query_files(
            dataset_id, variable, years, months)
        if not names:
            raise RuntimeError(f"selection matched nothing in "
                               f"{dataset_id!r}")
        started = self.env.now
        args = {"variable": variable}
        if operation == "subset":
            args.update({k: v for k, v in ranges.items()})
        cfg = GridFtpConfig(parallelism=1)
        shipped = full = decoded = 0.0
        cache_hits = 0
        datasets = []
        source = ""
        for name in names:
            ds, stats, fsize, source = yield from self._fetch_one(
                dataset_id, name, operation, args, cfg)
            datasets.append(ds)
            shipped += stats.transferred_bytes
            full += fsize
            decoded += stats.eret_decoded_bytes
            cache_hits += 1 if stats.eret_cache_hit else 0
        self.requests_served += 1
        merged = self._merge(datasets, variable, operation)
        return PortalResponse(dataset=merged, bytes_shipped=shipped,
                              full_bytes=full, source_hostname=source,
                              seconds=self.env.now - started,
                              server_decoded_bytes=decoded,
                              cache_hits=cache_hits, files=len(names))

    def open_series(self, dataset_id: str):
        """Simulation process: an aggregation view of one dataset.

        Resolves the dataset's summary record from the metadata catalog
        (one costed LDAP query) and returns a :class:`DatasetSeries`
        handle whose :meth:`~DatasetSeries.fetch` fans a single
        variable/region/time-slab request across the dataset's file
        series at the best replicas and concatenates along time — the
        caller sees one logical dataset, never the file boundaries.
        """
        record = yield from self.metadata.query_dataset(dataset_id)
        extent = self.metadata.time_extent(dataset_id)
        return DatasetSeries(portal=self, record=record,
                             time_extent=extent)


@dataclass
class DatasetSeries:
    """One dataset's file series behind a single logical handle."""

    portal: PortalClient
    record: DatasetRecord
    time_extent: Tuple[int, int]

    @property
    def dataset_id(self) -> str:
        return self.record.dataset_id

    @property
    def variables(self) -> Tuple[str, ...]:
        return self.record.variables

    def fetch(self, variable: str, operation: str = "subset",
              years: Optional[Tuple[int, int]] = None,
              months: Optional[Tuple[int, int]] = None,
              fanout: int = 4, **ranges: Tuple[float, float]):
        """Simulation process: one request across the whole series.

        Resolves the matching files, runs the operation on up to
        ``fanout`` files concurrently (each at its best replica), and
        merges the products along time in file order. Returns a
        :class:`PortalResponse`; ``source_hostname`` joins every
        replica host that served a product.
        """
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        portal = self.portal
        env = portal.env
        names = yield from portal.metadata.query_files(
            self.dataset_id, variable, years, months)
        if not names:
            raise RuntimeError(f"selection matched nothing in "
                               f"{self.dataset_id!r}")
        started = env.now
        args = {"variable": variable}
        if operation == "subset":
            args.update({k: v for k, v in ranges.items()})
        cfg = GridFtpConfig(parallelism=1)
        queue = list(enumerate(names))
        results: List = [None] * len(names)
        errors: List[BaseException] = []

        def worker():
            while queue and not errors:
                idx, name = queue.pop(0)
                try:
                    results[idx] = yield from portal._fetch_one(
                        self.dataset_id, name, operation, args, cfg)
                except BaseException as exc:
                    errors.append(exc)
                    return

        workers = [env.process(worker())
                   for _ in range(min(fanout, len(names)))]
        yield env.all_of(workers)
        if errors:
            raise errors[0]
        portal.requests_served += 1
        datasets = [r[0] for r in results]
        merged = portal._merge(datasets, variable, operation)
        sources = sorted({r[3] for r in results})
        return PortalResponse(
            dataset=merged,
            bytes_shipped=sum(r[1].transferred_bytes for r in results),
            full_bytes=sum(r[2] for r in results),
            source_hostname=",".join(sources),
            seconds=env.now - started,
            server_decoded_bytes=sum(r[1].eret_decoded_bytes
                                     for r in results),
            cache_hits=sum(1 for r in results if r[1].eret_cache_hit),
            files=len(names))
