"""Image-file output for fields (VCDAT made pictures; so do we).

Binary PGM (grayscale) and PPM (color-mapped) writers with no imaging
dependency — any viewer opens them. The color map is a blue→white→red
diverging ramp suited to temperature/anomaly fields.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _normalize(field: np.ndarray,
               vmin: Optional[float], vmax: Optional[float]) -> np.ndarray:
    lo = float(np.min(field)) if vmin is None else vmin
    hi = float(np.max(field)) if vmax is None else vmax
    if hi <= lo:
        return np.zeros_like(field, dtype=float)
    return np.clip((field - lo) / (hi - lo), 0.0, 1.0)


def _prepare(field: np.ndarray, flip_north_up: bool) -> np.ndarray:
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError(f"need a 2-D field, got {field.ndim}-D")
    # Our grids run south→north; images run top→bottom.
    return field[::-1] if flip_north_up else field


def field_to_pgm(field: np.ndarray, vmin: Optional[float] = None,
                 vmax: Optional[float] = None,
                 flip_north_up: bool = True) -> bytes:
    """Encode a (lat, lon) field as a binary PGM (P5) image."""
    field = _prepare(field, flip_north_up)
    norm = _normalize(field, vmin, vmax)
    pixels = (norm * 255).astype(np.uint8)
    h, w = pixels.shape
    header = f"P5\n{w} {h}\n255\n".encode()
    return header + pixels.tobytes()


def _diverging_rgb(norm: np.ndarray) -> np.ndarray:
    """Blue (0) → white (0.5) → red (1) color map, vectorized."""
    r = np.where(norm < 0.5, norm * 2.0, 1.0)
    b = np.where(norm < 0.5, 1.0, (1.0 - norm) * 2.0)
    g = 1.0 - np.abs(norm - 0.5) * 2.0 * 0.8
    rgb = np.stack([r, g, b], axis=-1)
    return (np.clip(rgb, 0, 1) * 255).astype(np.uint8)


def field_to_ppm(field: np.ndarray, vmin: Optional[float] = None,
                 vmax: Optional[float] = None,
                 flip_north_up: bool = True) -> bytes:
    """Encode a (lat, lon) field as a binary PPM (P6) color image."""
    field = _prepare(field, flip_north_up)
    norm = _normalize(field, vmin, vmax)
    pixels = _diverging_rgb(norm)
    h, w = pixels.shape[:2]
    header = f"P6\n{w} {h}\n255\n".encode()
    return header + pixels.tobytes()


def decode_pnm_header(blob: bytes) -> Tuple[str, int, int]:
    """(magic, width, height) of a PGM/PPM byte stream (for tests)."""
    parts = blob.split(b"\n", 3)
    if len(parts) < 4 or parts[0] not in (b"P5", b"P6"):
        raise ValueError("not a binary PGM/PPM stream")
    w, h = (int(x) for x in parts[1].split())
    return parts[0].decode(), w, h
