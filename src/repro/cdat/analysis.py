"""Analysis primitives over :class:`repro.data.Dataset`."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.data.variables import DataError, Dataset, Variable


def _tlatlon(ds: Dataset, variable: str) -> Variable:
    var = ds[variable]
    if var.dims != ("time", "lat", "lon"):
        raise DataError(f"{variable!r} must be (time, lat, lon), "
                        f"got {var.dims}")
    return var


def concat_time(datasets: Sequence[Dataset], variable: str) -> Dataset:
    """Concatenate several files' worth of one variable along time.

    The inputs must share lat/lon grids; time coordinates are stacked in
    the given order (the metadata catalog returns files time-sorted).
    """
    if not datasets:
        raise DataError("nothing to concatenate")
    first = datasets[0]
    var0 = _tlatlon(first, variable)
    for ds in datasets[1:]:
        if (not np.array_equal(ds.coords["lat"], first.coords["lat"])
                or not np.array_equal(ds.coords["lon"],
                                      first.coords["lon"])):
            raise DataError("lat/lon grids differ between files")
    out = Dataset(f"{first.name}:concat", dict(first.attrs))
    out.add_coord("time", np.concatenate(
        [ds.coords["time"] for ds in datasets]))
    out.add_coord("lat", first.coords["lat"])
    out.add_coord("lon", first.coords["lon"])
    data = np.concatenate([_tlatlon(ds, variable).data
                           for ds in datasets], axis=0)
    out.add_variable(Variable(variable, ("time", "lat", "lon"), data,
                              dict(var0.attrs)))
    return out


def time_mean(ds: Dataset, variable: str) -> np.ndarray:
    """Mean over time → (lat, lon) field."""
    return _tlatlon(ds, variable).data.mean(axis=0)


def zonal_mean(ds: Dataset, variable: str) -> np.ndarray:
    """Mean over time and longitude → (lat,) profile."""
    return _tlatlon(ds, variable).data.mean(axis=(0, 2))


def area_weights(ds: Dataset) -> np.ndarray:
    """cos(latitude) weights, normalized to sum 1."""
    w = np.cos(np.deg2rad(ds.coords["lat"]))
    w = np.clip(w, 0.0, None)
    return w / w.sum()


def global_mean_series(ds: Dataset, variable: str) -> np.ndarray:
    """Area-weighted global mean per time step → (time,) series."""
    var = _tlatlon(ds, variable)
    w = area_weights(ds)
    # Mean over lon first, then weight by latitude band area.
    return (var.data.mean(axis=2) * w[None, :]).sum(axis=1)


def anomaly(ds: Dataset, variable: str) -> np.ndarray:
    """Deviation of each time step from the time mean (t, lat, lon)."""
    var = _tlatlon(ds, variable)
    return var.data - var.data.mean(axis=0, keepdims=True)


def seasonal_cycle(ds: Dataset, variable: str) -> np.ndarray:
    """Mean by calendar month → (12, lat, lon) climatology.

    Requires a monthly time axis whose length is a multiple of 12.
    """
    var = _tlatlon(ds, variable)
    nt = var.data.shape[0]
    if nt % 12 != 0 or nt == 0:
        raise DataError(f"need whole years of monthly data, got {nt} steps")
    return var.data.reshape(nt // 12, 12,
                            *var.data.shape[1:]).mean(axis=0)
