"""The CDAT client: metadata query → RM fetch → decode → analyze."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cdat.analysis import concat_time
from repro.data.ncformat import decode
from repro.data.variables import DataError, Dataset
from repro.metadata.catalog import MetadataCatalog
from repro.rm.manager import RequestManager
from repro.rm.request import FileState, RequestTicket
from repro.rm.rpc import CorbaChannel
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


@dataclass
class AnalysisResult:
    """What a VCDAT session ends up with after a fetch."""

    dataset: Dataset          # merged along time, ready for analysis
    variable: str
    logical_files: List[str]
    ticket: RequestTicket

    @property
    def transfer_seconds(self) -> float:
        """Wall-clock from submission to last file completion."""
        ends = [f.finished_at for f in self.ticket.files
                if f.finished_at is not None]
        return (max(ends) - self.ticket.submitted_at) if ends else 0.0


class CdatClient:
    """Drives the §3 end-to-end flow from the user's desktop.

    "The CDAT system forwards the desired logical filenames to the
    request manager, which manages the data transfer... Once the data is
    available, VCDAT ... performs the visualization."
    """

    def __init__(self, env: Environment, metadata: MetadataCatalog,
                 request_manager: RequestManager, local_fs: FileSystem,
                 rpc: Optional[CorbaChannel] = None):
        self.env = env
        self.metadata = metadata
        self.rm = request_manager
        self.local_fs = local_fs
        self.rpc = rpc or CorbaChannel(env)

    # -- browsing (Figure 2 panes) ------------------------------------------
    def browse(self) -> List[dict]:
        """Dataset/variable listing for the selection UI."""
        out = []
        for ds in self.metadata.datasets():
            out.append({
                "dataset": ds.dataset_id,
                "model": ds.model,
                "run": ds.run,
                "variables": [
                    {"name": v.name, "units": v.units,
                     "description": v.long_name}
                    for v in self.metadata.variables(ds.dataset_id)],
                "files": ds.file_count,
            })
        return out

    # -- the end-to-end fetch -----------------------------------------------------
    def select_files(self, dataset_id: str, variable: str,
                     years: Optional[Tuple[int, int]] = None,
                     months: Optional[Tuple[int, int]] = None):
        """Simulation process: attribute selection → logical file names."""
        names = yield from self.metadata.query_files(
            dataset_id, variable, years, months)
        return names

    def fetch(self, dataset_id: str, variable: str,
              years: Optional[Tuple[int, int]] = None,
              months: Optional[Tuple[int, int]] = None,
              require_content: bool = True):
        """Simulation process: the full §3/§4 pipeline.

        Resolves attributes to logical files, calls the RM through the
        CORBA shim, decodes the delivered SDBF bytes, and merges them
        into one analysis-ready dataset. With ``require_content=False``
        a catalog-only archive (sizes without bytes) yields a result
        whose ``dataset`` is None — transfer behaviour only.
        """
        names = yield from self.select_files(dataset_id, variable,
                                             years, months)
        if not names:
            raise DataError(
                f"selection matched no files in {dataset_id!r}")
        ticket = yield from self.rpc.call(
            self.rm.request, [(dataset_id, n) for n in names],
            n_items=len(names))
        failed = ticket.failed_files
        if failed:
            raise DataError(
                f"{len(failed)} file(s) failed: "
                + ", ".join(f"{f.logical_file} ({f.error})"
                            for f in failed[:3]))
        datasets = []
        for name in names:
            file = self.local_fs.stat(name)
            if file.content is None:
                if require_content:
                    raise DataError(
                        f"{name}: delivered without content (synthetic "
                        f"archive); pass require_content=False")
                continue
            datasets.append(decode(file.content))
        merged = (concat_time(datasets, variable) if datasets else None)
        return AnalysisResult(dataset=merged, variable=variable,
                              logical_files=list(names), ticket=ticket)
