"""CDAT: the Climate Data Analysis Tool layer (§3).

- :class:`CdatClient` — the CDMS-flavoured client: queries the metadata
  catalog, forwards logical file names to the request manager over the
  CORBA shim, decodes the delivered SDBF files, and concatenates them
  along time ("we have modified CDAT to access individual data files via
  the request manager. Analysis then proceeds in the client, as usual").
- ``repro.cdat.analysis`` — the analysis primitives a climate user
  runs after the fetch: time/zonal means, area-weighted global means,
  anomalies, seasonal cycles.
- ``repro.cdat.viz`` — VCDAT-style rendering (Figure 3) as ASCII field
  maps and profiles (the terminal is our canvas).
"""

from repro.cdat.analysis import (
    anomaly,
    concat_time,
    global_mean_series,
    seasonal_cycle,
    time_mean,
    zonal_mean,
)
from repro.cdat.client import AnalysisResult, CdatClient
from repro.cdat.images import decode_pnm_header, field_to_pgm, field_to_ppm
from repro.cdat.portal import PortalClient, PortalResponse
from repro.cdat.viz import render_field, render_profile, render_timeseries

__all__ = [
    "AnalysisResult",
    "CdatClient",
    "PortalClient",
    "PortalResponse",
    "decode_pnm_header",
    "field_to_pgm",
    "field_to_ppm",
    "anomaly",
    "concat_time",
    "global_mean_series",
    "render_field",
    "render_profile",
    "render_timeseries",
    "seasonal_cycle",
    "time_mean",
    "zonal_mean",
]
