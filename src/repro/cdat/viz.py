"""VCDAT-style visualization, terminal edition (Figure 3).

The prototype rendered temperature/cloud fields in a GUI; here fields
become ASCII intensity maps with a scale bar, profiles become sparklines.
The point is that the *data pipeline* up to the renderer is identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_RAMP = " .:-=+*#%@"


def _normalize(field: np.ndarray) -> np.ndarray:
    lo, hi = float(np.min(field)), float(np.max(field))
    if hi <= lo:
        return np.zeros_like(field)
    return (field - lo) / (hi - lo)


def render_field(field: np.ndarray, title: str = "",
                 units: str = "", width: int = 72,
                 height: int = 24) -> str:
    """An ASCII intensity map of a (lat, lon) field.

    Latitude rows print north-up; the field is resampled to
    ``height``×``width`` characters; a value scale annotates the ramp.
    """
    if field.ndim != 2:
        raise ValueError(f"need a 2-D field, got {field.ndim}-D")
    nlat, nlon = field.shape
    rows = np.clip((np.linspace(0, nlat - 1, height)).astype(int),
                   0, nlat - 1)
    cols = np.clip((np.linspace(0, nlon - 1, width)).astype(int),
                   0, nlon - 1)
    sampled = field[np.ix_(rows, cols)]
    norm = _normalize(sampled)
    idx = np.clip((norm * (len(_RAMP) - 1)).astype(int), 0,
                  len(_RAMP) - 1)
    lines = []
    if title:
        lines.append(title)
    # North at the top: latitude axis is south→north in our grids.
    for r in reversed(range(height)):
        lines.append("".join(_RAMP[i] for i in idx[r]))
    lo, hi = float(np.min(field)), float(np.max(field))
    lines.append(f"scale: '{_RAMP[0]}'={lo:.2f} .. "
                 f"'{_RAMP[-1]}'={hi:.2f} {units}".rstrip())
    return "\n".join(lines)


def render_profile(values: np.ndarray, coords: np.ndarray,
                   title: str = "", units: str = "",
                   width: int = 48) -> str:
    """A horizontal-bar profile (e.g. zonal mean vs latitude)."""
    values = np.asarray(values, dtype=float)
    coords = np.asarray(coords, dtype=float)
    if values.shape != coords.shape:
        raise ValueError("values and coords must align")
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0
    lines = [title] if title else []
    for c, v in zip(coords[::-1], values[::-1]):  # north at the top
        bar = "#" * int(round((v - lo) / span * width))
        lines.append(f"{c:7.1f} | {bar} {v:.2f}{units}")
    return "\n".join(lines)


def render_timeseries(values: np.ndarray, title: str = "",
                      units: str = "", height: int = 10,
                      width: Optional[int] = None) -> str:
    """A column plot of a 1-D series (e.g. global-mean timeline)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("need a non-empty 1-D series")
    n = values.size if width is None else min(values.size, width)
    idx = np.linspace(0, values.size - 1, n).astype(int)
    sampled = values[idx]
    norm = _normalize(sampled)
    levels = np.clip((norm * (height - 1)).round().astype(int), 0,
                     height - 1)
    lines = [title] if title else []
    for row in reversed(range(height)):
        lines.append("".join("*" if lv >= row else " " for lv in levels))
    lines.append(f"min={values.min():.2f} max={values.max():.2f} "
                 f"{units}".rstrip())
    return "\n".join(lines)
