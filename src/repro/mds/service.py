"""The MDS service implementation."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ldap.directory import DirectoryServer, Scope
from repro.ldap.dn import DN
from repro.sim.core import Environment


class MdsService:
    """An LDAP-backed information index.

    DIT layout::

        mds=<grid>
          service=nws
            pair=<src>--<dst>        bandwidth/latency forecast attrs
          host=<name>                host resource attributes
    """

    def __init__(self, env: Environment,
                 directory: Optional[DirectoryServer] = None,
                 name: str = "grid"):
        self.env = env
        self.directory = directory or DirectoryServer(env, name=f"mds-{name}")
        self.root = DN.parse(f"mds={name}")
        if not self.directory.exists(self.root):
            self.directory.add(self.root, {"objectclass": "mds"})
        self._nws_root = self.root.child("service", "nws")
        self.directory.add(self._nws_root, {"objectclass": "nwsservice"})
        self.publishes = 0

    # -- publication (immediate; providers push) ----------------------------
    def publish_nws(self, src: str, dst: str, forecast) -> None:
        """Record a bandwidth/latency forecast for a path."""
        if forecast is None:
            return
        dn = self._nws_root.child("pair", f"{src}--{dst}")
        attrs = {"objectclass": "nwsforecast",
                 "src": src, "dst": dst,
                 "bandwidth": f"{forecast.bandwidth:.6f}",
                 "latency": f"{forecast.latency:.9f}",
                 "measuredat": f"{forecast.measured_at:.3f}",
                 "samples": str(forecast.samples)}
        if self.directory.exists(dn):
            self.directory.modify(dn, replace=attrs)
        else:
            self.directory.add(dn, attrs)
        self.publishes += 1

    def publish_host(self, hostname: str, attrs: Dict[str, str]) -> None:
        """Record host resource attributes (CPU availability etc.)."""
        dn = self.root.child("host", hostname)
        record = {"objectclass": "hostinfo"}
        record.update(attrs)
        if self.directory.exists(dn):
            self.directory.modify(dn, replace=record)
        else:
            self.directory.add(dn, record)
        self.publishes += 1

    # -- timed queries (consumers pay LDAP costs) -----------------------------
    def nws_forecast(self, src: str, dst: str):
        """Simulation process: (bandwidth, latency) or None."""
        dn = self._nws_root.child("pair", f"{src}--{dst}")
        if not self.directory.exists(dn):
            yield self.env.timeout(self.directory.base_latency)
            return None
        entry = yield from self.directory.read(dn)
        return (float(entry.first("bandwidth", "0")),
                float(entry.first("latency", "0")))

    def all_forecasts(self):
        """Simulation process: every published forecast entry."""
        entries = yield from self.directory.query(
            self._nws_root, Scope.ONELEVEL, "(objectclass=nwsforecast)")
        return [(e.first("src"), e.first("dst"),
                 float(e.first("bandwidth", "0")),
                 float(e.first("latency", "0"))) for e in entries]

    def host_info(self, hostname: str):
        """Simulation process: host attributes dict or None."""
        dn = self.root.child("host", hostname)
        if not self.directory.exists(dn):
            yield self.env.timeout(self.directory.base_latency)
            return None
        entry = yield from self.directory.read(dn)
        return {k: v[0] if len(v) == 1 else v
                for k, v in entry.attributes.items()}

    def __repr__(self) -> str:
        return f"MdsService({len(self.directory)} entries)"
