"""MDS: the Grid information service (GRIS/GIIS-style, LDAP-backed).

The request manager never talks to NWS directly: "The request manager
uses NWS information to select the replica...; NWS information is
accessed by the MDS information service" (§2, §5). :class:`MdsService`
is that indirection: NWS publishes forecasts here; consumers query here,
paying LDAP round-trip costs.
"""

from repro.mds.service import MdsService

__all__ = ["MdsService"]
