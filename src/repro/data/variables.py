"""In-memory datasets: named dimensions, variables, attributes, subsetting."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np


class DataError(Exception):
    """Inconsistent dataset structure or invalid subset request."""


class Variable:
    """A multidimensional variable with named dimensions.

    Parameters
    ----------
    name:
        Variable name, e.g. ``"tas"`` (surface air temperature).
    dims:
        Dimension names, one per axis of ``data``.
    data:
        The array (converted to float64 unless already floating).
    attrs:
        Descriptive attributes, e.g. units and long_name.
    """

    def __init__(self, name: str, dims: Tuple[str, ...], data: np.ndarray,
                 attrs: Optional[Mapping[str, str]] = None):
        data = np.asarray(data)
        if not np.issubdtype(data.dtype, np.floating):
            data = data.astype(np.float64)
        if len(dims) != data.ndim:
            raise DataError(f"variable {name!r}: {len(dims)} dims for "
                            f"{data.ndim}-D data")
        self.name = name
        self.dims = tuple(dims)
        self.data = data
        self.attrs: Dict[str, str] = dict(attrs or {})

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def mean(self, dim: Optional[str] = None) -> np.ndarray:
        """Mean over one named dimension (or all)."""
        if dim is None:
            return self.data.mean()
        if dim not in self.dims:
            raise DataError(f"{self.name!r} has no dimension {dim!r}")
        return self.data.mean(axis=self.dims.index(dim))

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, dims={self.dims}, shape={self.shape})"


class Dataset:
    """A set of variables sharing coordinate dimensions.

    Coordinates are 1-D variables whose name equals their dimension
    (``time``, ``lat``, ``lon``); data variables reference them by name.
    """

    def __init__(self, name: str, attrs: Optional[Mapping[str, str]] = None):
        self.name = name
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.coords: Dict[str, np.ndarray] = {}
        self.variables: Dict[str, Variable] = {}

    # -- construction -----------------------------------------------------
    def add_coord(self, name: str, values: Iterable[float]) -> "Dataset":
        """Register a coordinate axis."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray)
                         else values, dtype=np.float64)
        if arr.ndim != 1:
            raise DataError(f"coordinate {name!r} must be 1-D")
        self.coords[name] = arr
        return self

    def add_variable(self, var: Variable) -> "Dataset":
        """Add a data variable (its dims must match registered coords)."""
        for dim, size in zip(var.dims, var.shape):
            coord = self.coords.get(dim)
            if coord is None:
                raise DataError(f"variable {var.name!r} uses unregistered "
                                f"dimension {dim!r}")
            if len(coord) != size:
                raise DataError(
                    f"variable {var.name!r}: dim {dim!r} has {size} points, "
                    f"coordinate has {len(coord)}")
        self.variables[var.name] = var
        return self

    # -- access -------------------------------------------------------------
    def __getitem__(self, name: str) -> Variable:
        var = self.variables.get(name)
        if var is None:
            raise DataError(f"dataset {self.name!r} has no variable {name!r}")
        return var

    def __contains__(self, name: str) -> bool:
        return name in self.variables

    @property
    def nbytes(self) -> int:
        """Total array payload (variables + coordinates)."""
        return (sum(v.nbytes for v in self.variables.values())
                + sum(int(c.nbytes) for c in self.coords.values()))

    # -- subsetting ------------------------------------------------------------
    def subset(self, variable: str,
               **ranges: Tuple[float, float]) -> "Dataset":
        """Extract one variable over coordinate ranges.

        ``ranges`` maps dimension name → (lo, hi) inclusive coordinate
        bounds, e.g. ``ds.subset("tas", lat=(-30, 30), time=(0, 5))``.
        Returns a new dataset holding the sliced variable and coords.
        """
        var = self[variable]
        out = Dataset(f"{self.name}:{variable}", dict(self.attrs))
        indexers = []
        for dim in var.dims:
            coord = self.coords[dim]
            if dim in ranges:
                lo, hi = ranges[dim]
                if lo > hi:
                    raise DataError(f"empty range for {dim!r}: {lo} > {hi}")
                mask = (coord >= lo) & (coord <= hi)
                if not mask.any():
                    raise DataError(f"range {ranges[dim]} selects nothing "
                                    f"on {dim!r}")
                idx = np.where(mask)[0]
            else:
                idx = np.arange(len(coord))
            indexers.append(idx)
            out.add_coord(dim, coord[idx])
        unknown = set(ranges) - set(var.dims)
        if unknown:
            raise DataError(f"{variable!r} has no dims {sorted(unknown)}")
        sliced = var.data[np.ix_(*indexers)] if indexers else var.data
        out.add_variable(Variable(var.name, var.dims, sliced,
                                  dict(var.attrs)))
        return out

    def __repr__(self) -> str:
        return (f"Dataset({self.name!r}, vars={sorted(self.variables)}, "
                f"coords={ {k: len(v) for k, v in self.coords.items()} })")
