"""Regular lat/lon/time grids for synthetic model output."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GridSpec:
    """A regular global grid.

    Attributes
    ----------
    nlat, nlon:
        Grid points in latitude/longitude. T42-era atmosphere models ran
        ~64×128; eddy-resolving ocean models (the intro's example) far
        finer.
    months:
        Time steps (monthly means) per file.
    """

    nlat: int = 64
    nlon: int = 128
    months: int = 12

    def __post_init__(self) -> None:
        if min(self.nlat, self.nlon, self.months) < 1:
            raise ValueError("grid dimensions must be >= 1")

    @property
    def lats(self) -> np.ndarray:
        """Latitude centers, degrees north, south → north."""
        step = 180.0 / self.nlat
        return np.linspace(-90 + step / 2, 90 - step / 2, self.nlat)

    @property
    def lons(self) -> np.ndarray:
        """Longitude centers, degrees east in [0, 360)."""
        step = 360.0 / self.nlon
        return np.arange(self.nlon) * step + step / 2

    @property
    def times(self) -> np.ndarray:
        """Fractional-year time axis (months since start / 12)."""
        return np.arange(self.months) / 12.0

    @property
    def points_per_field(self) -> int:
        """Grid points in one 2-D field."""
        return self.nlat * self.nlon

    @property
    def bytes_per_variable(self) -> int:
        """Payload of one (time, lat, lon) float64 variable."""
        return self.months * self.points_per_field * 8

    def field_bytes(self, n_variables: int) -> int:
        """Approximate file size holding ``n_variables`` variables."""
        coords = (self.nlat + self.nlon + self.months) * 8
        return n_variables * self.bytes_per_variable + coords
