"""Synthetic climate model output.

The paper's workload: "running a high-resolution ocean model ... can
generate a dozen multi-gigabyte files in a few hours"; PCMDI-style
archives hold many model runs, each a logical collection of thousands of
netCDF files. We generate physically plausible fields so the analysis
pipeline has something real to compute on:

- **tas** (surface air temperature, K): latitudinal gradient + seasonal
  cycle (hemisphere-antisymmetric) + weather noise;
- **pr** (precipitation, mm/day): ITCZ peak near the equator +
  mid-latitude storm tracks + noise, non-negative;
- **clt** (cloud fraction, %): humidity-correlated, clipped to [0, 100].

Two modes: *materialized* datasets carry real arrays (analysis &
visualization experiments); *catalog-only* file listings carry sizes
computed from the grid (multi-GB transfer experiments without the RAM).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.grids import GridSpec
from repro.data.ncformat import encode
from repro.data.variables import Dataset, Variable

KELVIN = 273.15

_VARIABLE_ATTRS = {
    "tas": {"units": "K", "long_name": "surface air temperature"},
    "pr": {"units": "mm/day", "long_name": "precipitation"},
    "clt": {"units": "%", "long_name": "total cloud fraction"},
}


@dataclass
class ClimateModelRun:
    """One simulated model run producing monthly-mean output files.

    Attributes
    ----------
    model:
        Model name, e.g. ``"NCAR_CSM"`` or ``"PCM"``.
    run:
        Run/ensemble label.
    grid:
        Output resolution.
    start_year:
        First simulated year.
    seed:
        Controls the stochastic weather component.
    """

    model: str = "NCAR_CSM"
    run: str = "run1"
    grid: GridSpec = field(default_factory=GridSpec)
    start_year: int = 1995
    seed: int = 0

    @property
    def dataset_id(self) -> str:
        """Canonical id, e.g. ``pcmdi.ncar_csm.run1`` (lowercased)."""
        return f"pcmdi.{self.model.lower()}.{self.run.lower()}"

    def _rng(self, year: int) -> np.random.Generator:
        # zlib.crc32, not hash(): string hashing is salted per process
        # (PYTHONHASHSEED), which would make "seeded" output differ
        # between runs.
        key = f"{self.model}|{self.run}|{self.seed}|{year}".encode()
        return np.random.default_rng(zlib.crc32(key))

    # -- field synthesis ----------------------------------------------------
    def generate_year(self, year: int,
                      variables: Tuple[str, ...] = ("tas", "pr", "clt")
                      ) -> Dataset:
        """Materialize one year of monthly means as a real Dataset."""
        g = self.grid
        rng = self._rng(year)
        lats = g.lats
        lons = g.lons
        months = np.arange(g.months)
        ds = Dataset(f"{self.dataset_id}.{year}", {
            "model": self.model, "run": self.run,
            "year": str(year), "source": "repro synthetic generator"})
        ds.add_coord("time", (year - self.start_year) + months / 12.0)
        ds.add_coord("lat", lats)
        ds.add_coord("lon", lons)
        lat3 = lats[None, :, None]
        mon3 = months[:, None, None]
        lon3 = lons[None, None, :]
        season = np.cos(2 * np.pi * (mon3 - 0.5) / 12.0)
        for name in variables:
            if name == "tas":
                base = KELVIN + 15.0 - 45.0 * np.sin(
                    np.deg2rad(lat3)) ** 2
                seasonal = 12.0 * season * np.sin(np.deg2rad(lat3)) * -1.0
                zonal = 2.0 * np.sin(np.deg2rad(lon3) * 3)
                noise = rng.normal(0.0, 1.5,
                                   (g.months, g.nlat, g.nlon))
                data = base + seasonal + zonal + noise
            elif name == "pr":
                itcz = 8.0 * np.exp(-(lat3 / 10.0) ** 2)
                storms = 3.0 * np.exp(-((np.abs(lat3) - 45.0) / 12.0) ** 2)
                wet = 0.5 * (1 + 0.3 * season)
                noise = rng.gamma(2.0, 0.5, (g.months, g.nlat, g.nlon))
                data = np.maximum((itcz + storms) * wet + noise - 1.0, 0.0)
            elif name == "clt":
                base = 55.0 + 20.0 * np.exp(-((np.abs(lat3) - 55.0)
                                              / 15.0) ** 2)
                tropics = 15.0 * np.exp(-(lat3 / 8.0) ** 2)
                noise = rng.normal(0.0, 8.0, (g.months, g.nlat, g.nlon))
                data = np.clip(base + tropics + noise, 0.0, 100.0)
            else:
                raise ValueError(f"unknown variable {name!r}")
            ds.add_variable(Variable(name, ("time", "lat", "lon"), data,
                                     _VARIABLE_ATTRS[name]))
        return ds

    def encode_year(self, year: int,
                    variables: Tuple[str, ...] = ("tas", "pr", "clt"),
                    chunks=None) -> bytes:
        """One year of output as SDBF bytes.

        ``chunks`` (dim name → chunk length, or one int) selects the
        chunked SDBF layout so servers can serve subsets by decoding
        only the touched chunks.
        """
        return encode(self.generate_year(year, variables), chunks=chunks)

    def generate_months(self, year: int, month_lo: int, month_hi: int,
                        variables: Tuple[str, ...] = ("tas", "pr", "clt")
                        ) -> Dataset:
        """One file's worth: months [month_lo, month_hi] of a year.

        Months are 1-based inclusive; the slice is cut from the same
        deterministic yearly field, so per-month files agree with the
        yearly dataset.
        """
        if not (1 <= month_lo <= month_hi <= self.grid.months):
            raise ValueError(f"bad month range ({month_lo}, {month_hi})")
        full = self.generate_year(year, variables)
        sliced = Dataset(f"{self.dataset_id}.{year}."
                         f"m{month_lo:02d}-m{month_hi:02d}",
                         dict(full.attrs))
        lo, hi = month_lo - 1, month_hi  # to 0-based half-open
        sliced.add_coord("time", full.coords["time"][lo:hi])
        sliced.add_coord("lat", full.coords["lat"])
        sliced.add_coord("lon", full.coords["lon"])
        for name in variables:
            var = full[name]
            sliced.add_variable(Variable(name, var.dims,
                                         var.data[lo:hi], dict(var.attrs)))
        return sliced

    def encode_months(self, year: int, month_lo: int, month_hi: int,
                      variables: Tuple[str, ...] = ("tas", "pr", "clt"),
                      chunks=None) -> bytes:
        """One monthly-range file as SDBF bytes (``chunks`` as in
        :meth:`encode_year`)."""
        return encode(self.generate_months(year, month_lo, month_hi,
                                           variables), chunks=chunks)


def monthly_files(run: ClimateModelRun, years: int,
                  variables: Tuple[str, ...] = ("tas", "pr", "clt"),
                  files_per_year: int = 12,
                  size_override: Optional[float] = None
                  ) -> List[Dict[str, object]]:
    """Catalog-only listing of a run's output files.

    Returns dicts with ``logical_name``, ``size`` (bytes), ``year``,
    ``month_range`` and ``variables`` — enough to populate metadata and
    replica catalogs without materializing arrays. ``size_override``
    forces a fixed file size (e.g. 2 GB striped-transfer test files).
    """
    if years < 1 or files_per_year < 1 or 12 % files_per_year != 0:
        raise ValueError("years >= 1 and files_per_year must divide 12")
    months_per_file = 12 // files_per_year
    per_file_grid = GridSpec(run.grid.nlat, run.grid.nlon, months_per_file)
    size = (size_override if size_override is not None
            else float(per_file_grid.field_bytes(len(variables))))
    out: List[Dict[str, object]] = []
    for y in range(years):
        year = run.start_year + y
        for i in range(files_per_year):
            m0 = i * months_per_file + 1
            m1 = m0 + months_per_file - 1
            out.append({
                "logical_name": (f"{run.dataset_id}.{year}."
                                 f"m{m0:02d}-m{m1:02d}.nc"),
                "size": size,
                "year": year,
                "month_range": (m0, m1),
                "variables": tuple(variables),
            })
    return out


@dataclass
class SyntheticArchive:
    """A multi-run archive approximating a PCMDI holding.

    ``runs`` default to two well-known early-2000s models. Total volume
    scales with years/resolution; the intro's "century → ~10 TB" regime
    is reachable with a fine grid and many years.
    """

    runs: Tuple[ClimateModelRun, ...] = (
        ClimateModelRun(model="NCAR_CSM", run="run1"),
        ClimateModelRun(model="PCM", run="B06.22"),
    )
    years: int = 2
    variables: Tuple[str, ...] = ("tas", "pr", "clt")

    def listing(self) -> Dict[str, List[Dict[str, object]]]:
        """Map dataset_id → file listing for every run."""
        return {run.dataset_id: monthly_files(run, self.years,
                                              self.variables)
                for run in self.runs}

    @property
    def total_bytes(self) -> float:
        """Archive volume across all runs."""
        return sum(f["size"] for files in self.listing().values()
                   for f in files)
