"""Climate data substrate.

The prototype's datasets are "comprised primarily of multidimensional
data variables together with descriptive, textual data", stored in "a
self-describing binary format such as netCDF" (§3). This package
provides:

- :class:`Dataset` / :class:`Variable` — in-memory multidimensional
  variables with named dimensions, coordinates and attributes, plus
  spatiotemporal subsetting;
- ``encode``/``decode`` — SDBF, a compact self-describing binary file
  format in the spirit of netCDF classic (magic, header, typed arrays);
- :class:`ClimateModelRun` and :func:`monthly_files` — a synthetic
  climate-model output generator producing physically plausible fields
  (latitudinal temperature gradients, seasonal cycles, storm noise) at
  any resolution, used both to materialize real bytes for the analysis
  pipeline and to size multi-GB synthetic archives for transfer
  experiments (the intro's "dozen multi-gigabyte files in a few hours").
"""

from repro.data.variables import Dataset, DataError, Variable
from repro.data.ncformat import (
    CHUNKED_VERSION,
    FormatError,
    SdbfReader,
    decode,
    decode_header,
    encode,
)
from repro.data.grids import GridSpec
from repro.data.digest import (
    add_mark,
    content_digest,
    file_digest,
    is_pristine,
    marks_of,
)
from repro.data.synth import (
    ClimateModelRun,
    SyntheticArchive,
    monthly_files,
)

__all__ = [
    "CHUNKED_VERSION",
    "ClimateModelRun",
    "DataError",
    "Dataset",
    "FormatError",
    "GridSpec",
    "SdbfReader",
    "SyntheticArchive",
    "Variable",
    "add_mark",
    "content_digest",
    "decode",
    "decode_header",
    "encode",
    "file_digest",
    "is_pristine",
    "marks_of",
    "monthly_files",
]
