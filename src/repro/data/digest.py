"""Deterministic content digests for synthetic and materialized files.

The replication case studies (7.3 PB ESGF replication; the EU DataGrid
operations report) put checksum verification at the operational core of
bulk data movement: silent corruption is a dominant real-world failure
mode, and the only defence is an end-to-end digest recorded at publish
time and re-computed on arrival.

Most of this simulator's files are *synthetic* — they carry a size but
no bytes — so a digest over content alone would be meaningless. The
digest here is deterministic over what the simulation can know about a
file:

- its logical name and exact size,
- its real content bytes when materialized (the analysis pipeline), and
- its *integrity marks*: an ordered tuple of strings recorded in
  ``FileObject.metadata`` by fault injection (in-flight bit-flip
  windows, at-rest corruption, truncated stages). A pristine file has
  no marks; any mark changes the digest, which is exactly how a real
  checksum reacts to flipped bits.

Corruption in the simulation is therefore "append a mark": cheap at any
scale, deterministic per seed, and detectable by comparing the
publish-time digest (computed pristine) against the digest of whatever
was actually delivered.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

#: FileObject.metadata key carrying the ordered corruption marks.
MARKS_KEY = "integrity_marks"


def content_digest(name: str, size: float,
                   content: Optional[bytes] = None,
                   marks: Tuple[str, ...] = ()) -> str:
    """Digest of a file's identity, bytes (if any), and integrity marks.

    Two files agree iff they have the same logical name, the same size,
    the same materialized bytes (or both none), and the same corruption
    history. The pristine publish-time digest uses ``marks=()``.
    """
    h = hashlib.blake2s(digest_size=8)
    h.update(name.encode())
    h.update(f"|{size:.0f}|".encode())
    if content is not None:
        h.update(content)
    for mark in marks:
        h.update(b"\x00")
        h.update(str(mark).encode())
    return h.hexdigest()


def marks_of(file) -> Tuple[str, ...]:
    """The integrity marks recorded on a :class:`FileObject` (or ())."""
    return tuple(file.metadata.get(MARKS_KEY, ()))


def add_mark(file, mark: str) -> None:
    """Append one corruption mark to a file (changes its digest)."""
    file.metadata[MARKS_KEY] = marks_of(file) + (str(mark),)


def is_pristine(file) -> bool:
    """True if the file carries no corruption marks."""
    return not marks_of(file)


def file_digest(file) -> str:
    """Digest of a stored :class:`FileObject` as it currently is."""
    return content_digest(file.name, file.size, file.content,
                          marks_of(file))
