"""SDBF: a self-describing binary format in the netCDF-classic spirit.

Layout::

    bytes 0-3   magic  b"SDBF"
    bytes 4-7   version (u32 little-endian)
    bytes 8-11  header length H (u32)
    bytes 12-.. UTF-8 JSON header: dataset name/attrs, coordinates
                (name, length, dtype, offset), variables (name, dims,
                shape, dtype, attrs, offset)
    then        raw little-endian array payloads at the stated offsets

The header is readable without the payload — :func:`decode_header` is
what a metadata scanner (or a DODS-style subsetting server) uses to
answer structural queries cheaply.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Tuple

import numpy as np

from repro.data.variables import Dataset, Variable

MAGIC = b"SDBF"
VERSION = 1


class FormatError(Exception):
    """Not an SDBF byte stream, or a corrupt one."""


def encode(dataset: Dataset) -> bytes:
    """Serialize a :class:`Dataset` to SDBF bytes."""
    payload_parts = []
    offset = 0

    def _append(arr: np.ndarray) -> Tuple[int, str]:
        nonlocal offset
        raw = np.ascontiguousarray(arr).astype("<f8").tobytes()
        payload_parts.append(raw)
        start = offset
        offset += len(raw)
        return start, "<f8"

    coords_hdr = {}
    for name, coord in dataset.coords.items():
        start, dtype = _append(coord)
        coords_hdr[name] = {"length": int(len(coord)), "dtype": dtype,
                            "offset": start}
    vars_hdr = {}
    for name, var in dataset.variables.items():
        start, dtype = _append(var.data)
        vars_hdr[name] = {"dims": list(var.dims),
                          "shape": [int(s) for s in var.shape],
                          "dtype": dtype, "offset": start,
                          "attrs": dict(var.attrs)}
    header = json.dumps({
        "name": dataset.name,
        "attrs": dict(dataset.attrs),
        "coords": coords_hdr,
        "variables": vars_hdr,
    }).encode()
    return (MAGIC + struct.pack("<II", VERSION, len(header))
            + header + b"".join(payload_parts))


def decode_header(blob: bytes) -> Dict:
    """Parse only the JSON header (cheap structural inspection)."""
    if len(blob) < 12 or blob[:4] != MAGIC:
        raise FormatError("not an SDBF stream")
    version, hlen = struct.unpack("<II", blob[4:12])
    if version != VERSION:
        raise FormatError(f"unsupported SDBF version {version}")
    if len(blob) < 12 + hlen:
        raise FormatError("truncated header")
    try:
        return json.loads(blob[12:12 + hlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError(f"corrupt header: {exc}") from exc


def decode(blob: bytes) -> Dataset:
    """Deserialize SDBF bytes back into a :class:`Dataset`."""
    header = decode_header(blob)
    _, hlen = struct.unpack("<II", blob[4:12])
    payload = blob[12 + hlen:]
    ds = Dataset(header["name"], header.get("attrs", {}))

    def _array(meta, count) -> np.ndarray:
        start = meta["offset"]
        nbytes = count * 8
        if start + nbytes > len(payload):
            raise FormatError("truncated payload")
        return np.frombuffer(payload, dtype=meta["dtype"], count=count,
                             offset=start)

    for name, meta in header.get("coords", {}).items():
        ds.add_coord(name, _array(meta, meta["length"]).copy())
    for name, meta in header.get("variables", {}).items():
        shape = tuple(meta["shape"])
        count = int(np.prod(shape)) if shape else 1
        data = _array(meta, count).copy().reshape(shape)
        ds.add_variable(Variable(name, tuple(meta["dims"]), data,
                                 meta.get("attrs", {})))
    return ds
