"""SDBF: a self-describing binary format in the netCDF-classic spirit.

Layout::

    bytes 0-3   magic  b"SDBF"
    bytes 4-7   version (u32 little-endian)
    bytes 8-11  header length H (u32)
    bytes 12-.. UTF-8 JSON header: dataset name/attrs, coordinates
                (name, length, dtype, offset), variables (name, dims,
                shape, dtype, attrs, offset)
    then        raw little-endian array payloads at the stated offsets

Version 1 stores every array as one contiguous run ("flat"). Version 2
("chunked") tiles each variable over a per-variable chunk grid: the
header carries the chunk shape plus a row-major ``chunk_index`` of
``[offset, nbytes]`` extents, one per chunk, and each chunk is the
C-order bytes of its sub-block. Coordinates stay whole in both
versions — they are the first payloads after the header, so any reader
can map coordinate ranges to chunk sets from a short file prefix.

The header is readable without the payload — :func:`decode_header` is
what a metadata scanner (or a DODS-style subsetting server) uses to
answer structural queries cheaply. :class:`SdbfReader` goes one step
further: it decodes only the chunks a requested index slab touches, so
a server-side subsetting plug-in pays for the bytes it reads, not the
bytes the file stores.
"""

from __future__ import annotations

import itertools
import json
import struct
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.variables import Dataset, Variable

MAGIC = b"SDBF"
VERSION = 1
CHUNKED_VERSION = 2
HEADER_FIXED = 12  # magic + version + header length

#: Inclusive (lo, hi) index bounds per axis; None = the whole axis.
IndexBounds = Sequence[Optional[Tuple[int, int]]]


class FormatError(Exception):
    """Not an SDBF byte stream, or a corrupt one."""


def _chunk_shape_for(shape: Sequence[int],
                     chunks: Mapping[str, int],
                     dims: Sequence[str]) -> Tuple[int, ...]:
    """Per-axis chunk lengths for one variable (full extent if unset)."""
    out = []
    for dim, size in zip(dims, shape):
        c = int(chunks.get(dim, size))
        if c < 1:
            raise FormatError(f"chunk length for {dim!r} must be >= 1")
        out.append(min(c, size) if size else 1)
    return tuple(out)


def _iter_chunks(shape: Sequence[int], chunk_shape: Sequence[int]):
    """Yield ``(starts, extents)`` per chunk, row-major over the grid."""
    counts = [max(1, -(-s // c)) for s, c in zip(shape, chunk_shape)]
    for grid in itertools.product(*(range(n) for n in counts)):
        starts = tuple(g * c for g, c in zip(grid, chunk_shape))
        extents = tuple(min(c, s - st)
                        for c, s, st in zip(chunk_shape, shape, starts))
        yield starts, extents


def encode(dataset: Dataset,
           chunks: Optional[Union[int, Mapping[str, int]]] = None) -> bytes:
    """Serialize a :class:`Dataset` to SDBF bytes.

    With ``chunks`` (dim name → chunk length, or one int for every
    dim), variables are tiled into the version-2 chunked layout so a
    reader can decode an index slab without touching the rest of the
    payload. Without it the flat version-1 layout is produced,
    byte-identical to earlier releases.
    """
    if isinstance(chunks, int):
        chunks = {dim: chunks for dim in dataset.coords}
    payload_parts: List[bytes] = []
    offset = 0

    def _append(arr: np.ndarray) -> Tuple[int, int]:
        nonlocal offset
        raw = np.ascontiguousarray(arr).astype("<f8").tobytes()
        payload_parts.append(raw)
        start = offset
        offset += len(raw)
        return start, len(raw)

    coords_hdr = {}
    for name, coord in dataset.coords.items():
        start, _ = _append(coord)
        coords_hdr[name] = {"length": int(len(coord)), "dtype": "<f8",
                            "offset": start}
    vars_hdr = {}
    for name, var in dataset.variables.items():
        meta = {"dims": list(var.dims),
                "shape": [int(s) for s in var.shape],
                "dtype": "<f8"}
        if chunks is None:
            start, _ = _append(var.data)
            meta["offset"] = start
            meta["attrs"] = dict(var.attrs)
        else:
            chunk_shape = _chunk_shape_for(var.shape, chunks, var.dims)
            index = []
            for starts, extents in _iter_chunks(var.shape, chunk_shape):
                block = var.data[tuple(slice(s, s + e)
                                       for s, e in zip(starts, extents))]
                start, nbytes = _append(block)
                index.append([start, nbytes])
            meta["chunks"] = list(chunk_shape)
            meta["chunk_index"] = index
            meta["attrs"] = dict(var.attrs)
        vars_hdr[name] = meta
    version = VERSION if chunks is None else CHUNKED_VERSION
    header = json.dumps({
        "name": dataset.name,
        "attrs": dict(dataset.attrs),
        "coords": coords_hdr,
        "variables": vars_hdr,
    }).encode()
    return (MAGIC + struct.pack("<II", version, len(header))
            + header + b"".join(payload_parts))


def decode_header(blob: bytes) -> Dict:
    """Parse only the JSON header (cheap structural inspection)."""
    if len(blob) < HEADER_FIXED or blob[:4] != MAGIC:
        raise FormatError("not an SDBF stream")
    version, hlen = struct.unpack("<II", blob[4:HEADER_FIXED])
    if version not in (VERSION, CHUNKED_VERSION):
        raise FormatError(f"unsupported SDBF version {version}")
    if len(blob) < HEADER_FIXED + hlen:
        raise FormatError("truncated header")
    try:
        return json.loads(blob[HEADER_FIXED:HEADER_FIXED + hlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError(f"corrupt header: {exc}") from exc


def decode(blob: bytes) -> Dataset:
    """Deserialize SDBF bytes (either layout) back into a Dataset."""
    reader = SdbfReader(blob)
    ds = Dataset(reader.name, dict(reader.attrs))
    for name in reader.header.get("coords", {}):
        ds.add_coord(name, reader.coord(name))
    for name, meta in reader.header.get("variables", {}).items():
        ds.add_variable(Variable(name, tuple(meta["dims"]),
                                 reader.read_variable(name),
                                 meta.get("attrs", {})))
    return ds


class SdbfReader:
    """Random access into one SDBF blob, flat or chunked.

    Tracks :attr:`bytes_decoded` — every payload byte actually turned
    into an array — so callers can cost-model partial reads. The JSON
    header is parsed at construction and not counted.
    """

    def __init__(self, blob: bytes):
        self.header = decode_header(blob)
        self.version, hlen = struct.unpack("<II", blob[4:HEADER_FIXED])
        self.data_offset = HEADER_FIXED + hlen
        self._payload = memoryview(blob)[self.data_offset:]
        self.bytes_decoded = 0.0
        self._coord_cache: Dict[str, np.ndarray] = {}

    # -- structure ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self.header["name"]

    @property
    def attrs(self) -> Dict:
        return self.header.get("attrs", {})

    @property
    def is_chunked(self) -> bool:
        return self.version == CHUNKED_VERSION

    def variable_meta(self, name: str) -> Dict:
        meta = self.header.get("variables", {}).get(name)
        if meta is None:
            raise FormatError(f"no variable {name!r} in SDBF header")
        return meta

    # -- payload access ------------------------------------------------------
    def _array_at(self, offset: int, count: int) -> np.ndarray:
        nbytes = count * 8
        if offset + nbytes > len(self._payload):
            raise FormatError("truncated payload")
        self.bytes_decoded += nbytes
        return np.frombuffer(self._payload, dtype="<f8", count=count,
                             offset=offset).copy()

    def coord(self, name: str) -> np.ndarray:
        """One coordinate axis, decoded whole (cached per reader)."""
        cached = self._coord_cache.get(name)
        if cached is not None:
            return cached
        meta = self.header.get("coords", {}).get(name)
        if meta is None:
            raise FormatError(f"no coordinate {name!r} in SDBF header")
        arr = self._array_at(meta["offset"], meta["length"])
        self._coord_cache[name] = arr
        return arr

    def read_variable(self, name: str) -> np.ndarray:
        """One variable, decoded whole (both layouts)."""
        meta = self.variable_meta(name)
        shape = tuple(meta["shape"])
        if "chunk_index" not in meta:
            count = int(np.prod(shape)) if shape else 1
            return self._array_at(meta["offset"], count).reshape(shape)
        bounds = [(0, s - 1) for s in shape]
        return self.read_slab(name, bounds)

    def read_slab(self, name: str, bounds: IndexBounds) -> np.ndarray:
        """The bounding-box slab covering inclusive index ``bounds``.

        Decodes only the chunks the slab touches (chunked layout); a
        flat variable falls back to decoding the whole array and
        slicing, charging the full variable to :attr:`bytes_decoded`.
        """
        meta = self.variable_meta(name)
        shape = tuple(meta["shape"])
        lo_hi = self._clip_bounds(shape, bounds)
        box = tuple(slice(lo, hi + 1) for lo, hi in lo_hi)
        if "chunk_index" not in meta:
            count = int(np.prod(shape)) if shape else 1
            whole = self._array_at(meta["offset"], count).reshape(shape)
            return np.ascontiguousarray(whole[box])
        chunk_shape = tuple(meta["chunks"])
        index = meta["chunk_index"]
        out = np.empty(tuple(hi - lo + 1 for lo, hi in lo_hi),
                       dtype=np.float64)
        for i, (starts, extents) in enumerate(
                _iter_chunks(shape, chunk_shape)):
            if not self._touches(starts, extents, lo_hi):
                continue
            offset, nbytes = index[i]
            chunk = self._array_at(int(offset),
                                   int(nbytes) // 8).reshape(extents)
            src, dst = [], []
            for (cs, ce), (lo, hi) in zip(zip(starts, extents), lo_hi):
                a, b = max(cs, lo), min(cs + ce - 1, hi)
                src.append(slice(a - cs, b - cs + 1))
                dst.append(slice(a - lo, b - lo + 1))
            out[tuple(dst)] = chunk[tuple(src)]
        return out

    def touched_chunk_bytes(self, name: str, bounds: IndexBounds) -> float:
        """Payload bytes of the chunks an index slab intersects."""
        meta = self.variable_meta(name)
        shape = tuple(meta["shape"])
        lo_hi = self._clip_bounds(shape, bounds)
        if "chunk_index" not in meta:
            return float(int(np.prod(shape)) * 8) if shape else 8.0
        total = 0.0
        for i, (starts, extents) in enumerate(
                _iter_chunks(shape, tuple(meta["chunks"]))):
            if self._touches(starts, extents, lo_hi):
                total += float(meta["chunk_index"][i][1])
        return total

    def needed_prefix(self, name: str, bounds: IndexBounds
                      ) -> Optional[float]:
        """Absolute byte prefix of the blob that covers the request.

        The header, every coordinate, and every chunk the slab touches
        all end at or before the returned offset, so staging that many
        bytes suffices to serve the slab. ``None`` for flat layouts —
        a flat variable is one run and offers no partial-read savings
        beyond its own extent, which the whole-file path handles.
        """
        meta = self.variable_meta(name)
        if "chunk_index" not in meta:
            return None
        shape = tuple(meta["shape"])
        lo_hi = self._clip_bounds(shape, bounds)
        end = 0.0
        for cmeta in self.header.get("coords", {}).values():
            end = max(end, cmeta["offset"] + cmeta["length"] * 8)
        for i, (starts, extents) in enumerate(
                _iter_chunks(shape, tuple(meta["chunks"]))):
            if self._touches(starts, extents, lo_hi):
                offset, nbytes = meta["chunk_index"][i]
                end = max(end, float(offset) + float(nbytes))
        return self.data_offset + end

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _clip_bounds(shape: Tuple[int, ...],
                     bounds: IndexBounds) -> List[Tuple[int, int]]:
        if len(bounds) != len(shape):
            raise FormatError(f"{len(bounds)} bounds for "
                              f"{len(shape)}-D variable")
        out = []
        for size, b in zip(shape, bounds):
            lo, hi = (0, size - 1) if b is None else (int(b[0]), int(b[1]))
            if not (0 <= lo <= hi < size):
                raise FormatError(f"bad index bounds {b} for axis of "
                                  f"length {size}")
            out.append((lo, hi))
        return out

    @staticmethod
    def _touches(starts: Tuple[int, ...], extents: Tuple[int, ...],
                 lo_hi: List[Tuple[int, int]]) -> bool:
        return all(cs <= hi and cs + ce - 1 >= lo
                   for cs, ce, (lo, hi) in zip(starts, extents, lo_hi))

    def __repr__(self) -> str:
        kind = "chunked" if self.is_chunked else "flat"
        return (f"SdbfReader({self.name!r}, {kind}, "
                f"{len(self.header.get('variables', {}))} vars)")
