"""Active measurement sensors.

The bandwidth sensor times a real (small) transfer through the fluid
network, so its measurements automatically reflect congestion, host
bottlenecks, and outages — and, like real NWS probes, consume a little
bandwidth themselves. The latency sensor reads the path RTT with
measurement noise. The CPU sensor reports available CPU fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.net.fluid import FluidNetwork
from repro.sim.core import Environment


@dataclass(frozen=True)
class ProbeResult:
    """One sensor reading."""

    t: float
    bandwidth: float          # bytes/s (0 when the probe timed out)
    latency: float            # one-way seconds
    timed_out: bool = False


class NetworkSensor:
    """Periodic bandwidth/latency probe between two topology nodes.

    Parameters
    ----------
    env, network:
        Simulation environment and fluid network.
    src, dst:
        Topology node names the probe runs between.
    period:
        Seconds between probes (NWS default era-typical: tens of seconds
        to minutes).
    probe_bytes:
        Probe transfer size (64 KB default, like NWS).
    timeout:
        Probe abandonment threshold; a timed-out probe reports 0
        bandwidth (the path is effectively down).
    rng:
        Noise source for latency jitter.
    """

    def __init__(self, env: Environment, network: FluidNetwork,
                 src: str, dst: str, period: float = 30.0,
                 probe_bytes: float = 64 * 1024.0, timeout: float = 10.0,
                 rng: Optional[np.random.Generator] = None,
                 jitter_fraction: float = 0.05):
        if period <= 0 or probe_bytes <= 0 or timeout <= 0:
            raise ValueError("period, probe_bytes, timeout must be positive")
        self.env = env
        self.network = network
        self.src = src
        self.dst = dst
        self.period = period
        self.probe_bytes = probe_bytes
        self.timeout = timeout
        self.rng = rng
        self.jitter_fraction = jitter_fraction
        self.probes_sent = 0
        self.probes_timed_out = 0

    def probe_once(self):
        """Simulation process: one measurement; returns ProbeResult."""
        env = self.env
        self.probes_sent += 1
        started = env.now
        flow = self.network.transfer(self.src, self.dst, self.probe_bytes,
                                     name=f"nws:{self.src}->{self.dst}")
        deadline = env.timeout(self.timeout)
        yield env.any_of([flow.done, deadline])
        rtt = self.network.topology.rtt(self.src, self.dst)
        latency = rtt / 2.0
        if self.rng is not None and self.jitter_fraction > 0:
            latency *= 1.0 + abs(self.rng.normal(0, self.jitter_fraction))
        if not flow.done.processed:
            flow.abort("probe timeout")
            flow.done.defuse()
            self.probes_timed_out += 1
            return ProbeResult(env.now, 0.0, latency, timed_out=True)
        # Fluid flows carry no propagation delay, so elapsed time is pure
        # transfer time and the rate estimate is exact.
        elapsed = max(env.now - started, 1e-9)
        return ProbeResult(env.now, self.probe_bytes / elapsed, latency)

    def run(self, sink, phase: Optional[float] = None):
        """Simulation process: probe forever, reporting to ``sink``.

        ``sink(series_key, result)`` is called per measurement. Probes
        start after ``phase`` seconds (default: a deterministic offset
        derived from the endpoint names) so that a fleet of sensors
        sharing a link does not fire in lockstep and measure each other.
        """
        if phase is None:
            # Stable across processes (unlike builtin hash()).
            import hashlib
            digest = hashlib.md5(
                f"{self.src}->{self.dst}".encode()).digest()
            phase = (digest[0] * 256 + digest[1]) / 65536.0 * self.period
        if phase > 0:
            yield self.env.timeout(phase)
        while True:
            result = yield from self.probe_once()
            sink((self.src, self.dst), result)
            yield self.env.timeout(self.period)


class CpuSensor:
    """Periodic available-CPU measurement for one host.

    Availability is the complement of I/O utilization (driven by the
    host's current network rate) perturbed by measurement noise.
    """

    def __init__(self, env: Environment, host, period: float = 30.0,
                 rng: Optional[np.random.Generator] = None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.host = host
        self.period = period
        self.rng = rng
        self.readings = 0

    def read_once(self) -> float:
        """Available CPU fraction right now, in [0, 1]."""
        cpu_links = [self.host.links.get("cpu:out"),
                     self.host.links.get("cpu:in")]
        rate = 0.0
        for link in cpu_links:
            if link is not None:
                rate += sum(f.rate for f in link._flows)
        used = self.host.cpu_utilization(rate)
        avail = 1.0 - used
        if self.rng is not None:
            avail = float(np.clip(avail + self.rng.normal(0, 0.02), 0, 1))
        self.readings += 1
        return avail

    def run(self, sink):
        """Simulation process: measure forever, reporting to ``sink``."""
        while True:
            sink(self.host.name, self.read_once())
            yield self.env.timeout(self.period)
