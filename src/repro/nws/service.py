"""The NWS service: sensors → forecasters → MDS publication."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nws.forecasters import AdaptiveForecaster
from repro.nws.sensors import NetworkSensor, ProbeResult
from repro.net.fluid import FluidNetwork
from repro.sim.core import Environment


@dataclass(frozen=True)
class Forecast:
    """A bandwidth/latency forecast for one (src, dst) pair."""

    src: str
    dst: str
    bandwidth: float     # bytes/s
    latency: float       # one-way seconds
    measured_at: float   # simulated time of the last measurement
    samples: int


class NetworkWeatherService:
    """Monitors node pairs and serves adaptive forecasts.

    Parameters
    ----------
    env, network:
        Simulation environment and fluid network.
    mds:
        Optional :class:`repro.mds.MdsService`; forecasts are published
        there after every measurement, since "NWS information is
        accessed by the MDS information service" (§5).
    """

    def __init__(self, env: Environment, network: FluidNetwork,
                 mds=None, rng: Optional[np.random.Generator] = None,
                 obs=None):
        self.env = env
        self.network = network
        self.mds = mds
        self.rng = rng
        self.obs = obs          # optional repro.obs.Observability bundle
        self.sensors: Dict[Tuple[str, str], NetworkSensor] = {}
        self._bw: Dict[Tuple[str, str], AdaptiveForecaster] = {}
        self._lat: Dict[Tuple[str, str], AdaptiveForecaster] = {}
        self._last: Dict[Tuple[str, str], ProbeResult] = {}
        self._counts: Dict[Tuple[str, str], int] = {}
        self._cpu: Dict[str, AdaptiveForecaster] = {}

    # -- monitoring -------------------------------------------------------
    def monitor(self, src: str, dst: str, period: float = 30.0,
                probe_bytes: float = 64 * 1024.0,
                start: bool = True) -> NetworkSensor:
        """Begin periodic monitoring of a path."""
        key = (src, dst)
        if key in self.sensors:
            return self.sensors[key]
        sensor = NetworkSensor(self.env, self.network, src, dst,
                               period=period, probe_bytes=probe_bytes,
                               rng=self.rng)
        self.sensors[key] = sensor
        self._bw[key] = AdaptiveForecaster()
        self._lat[key] = AdaptiveForecaster()
        self._counts[key] = 0
        if start:
            self.env.process(sensor.run(self._ingest))
        return sensor

    def _ingest(self, key: Tuple[str, str], result: ProbeResult) -> None:
        self._bw[key].update(result.bandwidth)
        self._lat[key].update(result.latency)
        self._last[key] = result
        self._counts[key] += 1
        forecast = self.forecast(*key)
        if self.obs is not None:
            self.obs.count("nws.measurements_total", src=key[0],
                           dst=key[1])
            if forecast is not None:
                self.obs.gauge("nws.forecast_bandwidth_bytes",
                               forecast.bandwidth, src=key[0], dst=key[1])
                self.obs.gauge("nws.forecast_latency_seconds",
                               forecast.latency, src=key[0], dst=key[1])
        if self.mds is not None:
            self.mds.publish_nws(key[0], key[1], forecast)

    def observe(self, src: str, dst: str, bandwidth: float,
                latency: float) -> None:
        """Feed an external measurement (e.g. from a completed transfer).

        Real deployments fold application transfer logs into NWS series;
        the request manager uses this to learn from its own transfers.
        """
        key = (src, dst)
        if key not in self._bw:
            self.monitor(src, dst, start=False)
        self._ingest(key, ProbeResult(self.env.now, bandwidth, latency))

    # -- CPU monitoring -------------------------------------------------------
    def monitor_host(self, host, period: float = 30.0) -> None:
        """Track a host's available CPU (§5: NWS forecasts "available
        CPU percentage for each machine that it monitors").

        Forecasts are published to MDS host entries as ``cpuavail``.
        """
        from repro.nws.sensors import CpuSensor
        name = host.name
        if name in self._cpu:
            return
        self._cpu[name] = AdaptiveForecaster()
        sensor = CpuSensor(self.env, host, period=period, rng=self.rng)

        def sink(host_name, availability):
            self._cpu[host_name].update(availability)
            if self.mds is not None:
                pred = self._cpu[host_name].predict()
                self.mds.publish_host(host_name,
                                      {"cpuavail": f"{pred:.4f}"})

        self.env.process(sensor.run(sink))

    def forecast_cpu(self, host_name: str) -> Optional[float]:
        """Forecast available CPU fraction for a monitored host."""
        fc = self._cpu.get(host_name)
        return None if fc is None else fc.predict()

    # -- queries ------------------------------------------------------------
    def forecast(self, src: str, dst: str) -> Optional[Forecast]:
        """Current forecast for a pair, or None if never measured."""
        key = (src, dst)
        bw = self._bw.get(key)
        if bw is None or bw.predict() is None:
            return None
        return Forecast(src=src, dst=dst,
                        bandwidth=float(bw.predict()),
                        latency=float(self._lat[key].predict()),
                        measured_at=self._last[key].t,
                        samples=self._counts[key])

    def monitored_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """All (src, dst) pairs with sensors."""
        return tuple(self.sensors)

    def __repr__(self) -> str:
        return (f"NetworkWeatherService({len(self.sensors)} sensors, "
                f"mds={'yes' if self.mds else 'no'})")
