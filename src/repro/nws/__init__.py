"""Network Weather Service (NWS).

§5: "NWS is a distributed system that periodically monitors and
dynamically forecasts the performance that various network and
computational resources can deliver over a given time interval; it
forecasts process-to-process network performance (latency and bandwidth)
and available CPU percentage for each machine that it monitors."

- ``repro.nws.forecasters`` — the forecaster suite: last-value, running
  mean, sliding-window mean, median, exponential smoothing, and the
  adaptive meta-forecaster that tracks each method's error and answers
  with the current best (Wolski's NWS design).
- ``repro.nws.sensors`` — periodic active probes over the simulated
  network (small transfers timed end-to-end, so probes see outages,
  congestion, and share bandwidth like any other traffic) plus a CPU
  availability sensor.
- ``repro.nws.service`` — wires sensors to per-series forecasters and
  publishes forecasts into the MDS information service, which is where
  the request manager reads them ("NWS information is accessed by the
  MDS information service").
"""

from repro.nws.forecasters import (
    AdaptiveForecaster,
    ExpSmoothingForecaster,
    Forecaster,
    LastValueForecaster,
    MedianForecaster,
    RunningMeanForecaster,
    SlidingMeanForecaster,
)
from repro.nws.sensors import CpuSensor, NetworkSensor, ProbeResult
from repro.nws.service import Forecast, NetworkWeatherService

__all__ = [
    "AdaptiveForecaster",
    "CpuSensor",
    "ExpSmoothingForecaster",
    "Forecast",
    "Forecaster",
    "LastValueForecaster",
    "MedianForecaster",
    "NetworkSensor",
    "NetworkWeatherService",
    "ProbeResult",
    "RunningMeanForecaster",
    "SlidingMeanForecaster",
]
