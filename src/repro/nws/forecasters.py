"""Time-series forecasters and the adaptive meta-forecaster.

NWS runs a family of cheap predictors over each measurement series and,
for every query, answers with the predictor whose past one-step-ahead
error is currently lowest — robust across workloads without tuning
(Wolski, HPDC'97). All forecasters are O(1)-per-update.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence


class Forecaster:
    """Base: feed measurements with :meth:`update`, read :meth:`predict`."""

    name = "base"

    def update(self, value: float) -> None:
        raise NotImplementedError

    def predict(self) -> Optional[float]:
        """Next-value forecast, or None before any data."""
        raise NotImplementedError


class LastValueForecaster(Forecaster):
    """Predicts the most recent measurement."""

    name = "last"

    def __init__(self):
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def predict(self) -> Optional[float]:
        return self._last


class RunningMeanForecaster(Forecaster):
    """Predicts the mean of the entire history."""

    name = "mean"

    def __init__(self):
        self._sum = 0.0
        self._n = 0

    def update(self, value: float) -> None:
        self._sum += value
        self._n += 1

    def predict(self) -> Optional[float]:
        return self._sum / self._n if self._n else None


class SlidingMeanForecaster(Forecaster):
    """Predicts the mean of the last ``window`` measurements."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"sliding{window}"
        self._buf: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(value)

    def predict(self) -> Optional[float]:
        return sum(self._buf) / len(self._buf) if self._buf else None


class MedianForecaster(Forecaster):
    """Predicts the median of the last ``window`` measurements."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"median{window}"
        self._buf: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(value)

    def predict(self) -> Optional[float]:
        if not self._buf:
            return None
        vals = sorted(self._buf)
        n = len(vals)
        mid = n // 2
        return vals[mid] if n % 2 else 0.5 * (vals[mid - 1] + vals[mid])


class ExpSmoothingForecaster(Forecaster):
    """Exponentially weighted moving average."""

    def __init__(self, alpha: float = 0.3):
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.name = f"exp{alpha:g}"
        self.alpha = alpha
        self._state: Optional[float] = None

    def update(self, value: float) -> None:
        if self._state is None:
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * self._state

    def predict(self) -> Optional[float]:
        return self._state


def default_suite() -> List[Forecaster]:
    """The standard NWS-style predictor family."""
    return [LastValueForecaster(), RunningMeanForecaster(),
            SlidingMeanForecaster(5), SlidingMeanForecaster(20),
            MedianForecaster(11), ExpSmoothingForecaster(0.3)]


class AdaptiveForecaster(Forecaster):
    """Tracks each sub-forecaster's squared error; answers with the best.

    Before any measurement arrives :meth:`predict` returns None; with one
    measurement every sub-forecaster agrees anyway.
    """

    name = "adaptive"

    def __init__(self, forecasters: Optional[Sequence[Forecaster]] = None):
        self.forecasters = (default_suite() if forecasters is None
                            else list(forecasters))
        if not self.forecasters:
            raise ValueError("need at least one forecaster")
        self._errors = [0.0] * len(self.forecasters)
        self._updates = 0

    def update(self, value: float) -> None:
        # Score everyone's standing prediction against the new truth...
        for i, f in enumerate(self.forecasters):
            pred = f.predict()
            if pred is not None:
                self._errors[i] += (pred - value) ** 2
        # ...then let them see it.
        for f in self.forecasters:
            f.update(value)
        self._updates += 1

    def predict(self) -> Optional[float]:
        if self._updates == 0:
            return None
        best = min(range(len(self.forecasters)),
                   key=lambda i: self._errors[i])
        return self.forecasters[best].predict()

    @property
    def best_name(self) -> Optional[str]:
        """Which sub-forecaster currently answers."""
        if self._updates == 0:
            return None
        best = min(range(len(self.forecasters)),
                   key=lambda i: self._errors[i])
        return self.forecasters[best].name

    def mse(self) -> List[float]:
        """Mean squared one-step error per sub-forecaster."""
        n = max(self._updates, 1)
        return [e / n for e in self._errors]
