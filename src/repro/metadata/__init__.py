"""CDMS-style metadata catalog.

§3: "Based on Lightweight Directory Access Protocol (LDAP), this catalog
provides a view of data as a collection of datasets, comprised primarily
of multidimensional data variables together with descriptive, textual
data. ... A CDAT client ... contains the logic to query the metadata
catalog and translate a dataset name, variable name, and spatiotemporal
region into the logical file names stored in the replica catalog."

:class:`MetadataCatalog` is that mapping: datasets with attributes and
variables, each dataset backed by time-partitioned logical files; the
resolve step turns (dataset, variable, time range) into the logical file
names the replica catalog knows about.
"""

from repro.metadata.catalog import (
    DatasetRecord,
    MetadataCatalog,
    MetadataError,
    VariableRecord,
)

__all__ = [
    "DatasetRecord",
    "MetadataCatalog",
    "MetadataError",
    "VariableRecord",
]
