"""The metadata catalog implementation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ldap.directory import DirectoryServer, Scope
from repro.ldap.dn import DN
from repro.sim.core import Environment


class MetadataError(Exception):
    """Unknown dataset/variable or an unanswerable query."""


@dataclass(frozen=True)
class VariableRecord:
    """One variable's descriptive metadata (Figure 2 shows these)."""

    name: str
    units: str
    long_name: str


@dataclass(frozen=True)
class DatasetRecord:
    """A dataset summary."""

    dataset_id: str
    model: str
    run: str
    description: str
    variables: Tuple[str, ...]
    file_count: int


class MetadataCatalog:
    """Attribute-based dataset catalog over LDAP.

    DIT layout::

        mc=<name>
          dataset=<id>          model/run/description attrs
            variable=<var>      units/long_name
            file=<logical>      year, monthlo, monthhi, variables
    """

    def __init__(self, env: Environment,
                 directory: Optional[DirectoryServer] = None,
                 name: str = "pcmdi"):
        self.env = env
        self.directory = directory or DirectoryServer(env, name=f"mc-{name}")
        self.root = DN.parse(f"mc={name}")
        if not self.directory.exists(self.root):
            self.directory.add(self.root, {"objectclass": "metadatacatalog"})

    # -- registration -----------------------------------------------------
    def register_dataset(self, dataset_id: str, model: str, run: str,
                         description: str = "",
                         variables: Iterable[VariableRecord] = ()) -> None:
        """Create a dataset entry with its variable descriptions."""
        dn = self.root.child("dataset", dataset_id)
        if self.directory.exists(dn):
            raise MetadataError(f"dataset {dataset_id!r} exists")
        self.directory.add(dn, {"objectclass": "dataset", "model": model,
                                "run": run, "description": description})
        for var in variables:
            self.directory.add(dn.child("variable", var.name),
                               {"objectclass": "variable",
                                "units": var.units,
                                "longname": var.long_name})

    def register_files(self, dataset_id: str,
                       files: Iterable[Dict]) -> int:
        """Attach logical files (dicts from ``repro.data.monthly_files``)."""
        dn = self._dataset_dn(dataset_id)
        n = 0
        for f in files:
            m0, m1 = f["month_range"]
            self.directory.add(
                dn.child("file", str(f["logical_name"])),
                {"objectclass": "datafile",
                 "year": str(f["year"]),
                 "monthlo": str(m0), "monthhi": str(m1),
                 "size": str(f["size"]),
                 "variable": list(f["variables"])})
            n += 1
        return n

    # -- browsing (Figure 2's selection panes) ---------------------------------
    def datasets(self, model: Optional[str] = None) -> List[DatasetRecord]:
        """All datasets, optionally restricted to one model."""
        flt = ("(objectclass=dataset)" if model is None
               else f"(&(objectclass=dataset)(model={model}))")
        out = []
        for entry in self.directory.search(self.root, Scope.ONELEVEL, flt):
            dn = entry.dn
            vars_ = tuple(sorted(
                e.dn.rdn[1] for e in self.directory.search(
                    dn, Scope.ONELEVEL, "(objectclass=variable)")))
            n_files = len(self.directory.search(
                dn, Scope.ONELEVEL, "(objectclass=datafile)"))
            out.append(DatasetRecord(
                dataset_id=dn.rdn[1],
                model=entry.first("model", ""),
                run=entry.first("run", ""),
                description=entry.first("description", ""),
                variables=vars_, file_count=n_files))
        return sorted(out, key=lambda d: d.dataset_id)

    def variables(self, dataset_id: str) -> List[VariableRecord]:
        """Variable descriptions for one dataset."""
        dn = self._dataset_dn(dataset_id)
        return [VariableRecord(e.dn.rdn[1], e.first("units", ""),
                               e.first("longname", ""))
                for e in self.directory.search(
                    dn, Scope.ONELEVEL, "(objectclass=variable)")]

    def time_extent(self, dataset_id: str) -> Tuple[int, int]:
        """(first_year, last_year) covered by the dataset's files."""
        dn = self._dataset_dn(dataset_id)
        years = [int(e.first("year"))
                 for e in self.directory.search(
                     dn, Scope.ONELEVEL, "(objectclass=datafile)")]
        if not years:
            raise MetadataError(f"dataset {dataset_id!r} has no files")
        return min(years), max(years)

    # -- resolution: attributes → logical file names ------------------------------
    def resolve(self, dataset_id: str, variable: str,
                years: Optional[Tuple[int, int]] = None,
                months: Optional[Tuple[int, int]] = None) -> List[str]:
        """Logical file names covering the requested selection.

        ``years``/``months`` are inclusive ranges; omitted means "all".
        Raises if the dataset lacks the variable.
        """
        dn = self._dataset_dn(dataset_id)
        known = {v.name for v in self.variables(dataset_id)}
        if known and variable not in known:
            raise MetadataError(
                f"dataset {dataset_id!r} has no variable {variable!r} "
                f"(has {sorted(known)})")
        clauses = [f"(objectclass=datafile)", f"(variable={variable})"]
        if years is not None:
            clauses.append(f"(year>={years[0]})")
            clauses.append(f"(year<={years[1]})")
        flt = "(&" + "".join(clauses) + ")"
        hits = self.directory.search(dn, Scope.ONELEVEL, flt)
        if months is not None:
            lo, hi = months
            hits = [e for e in hits
                    if not (int(e.first("monthhi")) < lo
                            or int(e.first("monthlo")) > hi)]
        return sorted(e.dn.rdn[1] for e in hits)

    def query_files(self, dataset_id: str, variable: str,
                    years: Optional[Tuple[int, int]] = None,
                    months: Optional[Tuple[int, int]] = None):
        """Simulation process: :meth:`resolve` with LDAP costs."""
        dn = self._dataset_dn(dataset_id)
        yield from self.directory.query(dn, Scope.ONELEVEL,
                                        "(objectclass=datafile)")
        return self.resolve(dataset_id, variable, years, months)

    def query_dataset(self, dataset_id: str):
        """Simulation process: one dataset's summary with LDAP costs."""
        dn = self._dataset_dn(dataset_id)
        yield from self.directory.query(dn, Scope.ONELEVEL,
                                        "(objectclass=*)")
        for record in self.datasets():
            if record.dataset_id == dataset_id:
                return record
        raise MetadataError(f"no dataset {dataset_id!r}")

    def file_size(self, dataset_id: str, logical_name: str) -> float:
        """Registered size of one logical file."""
        dn = self._dataset_dn(dataset_id).child("file", logical_name)
        if not self.directory.exists(dn):
            raise MetadataError(f"no file {logical_name!r} in "
                                f"{dataset_id!r}")
        return float(self.directory.lookup(dn).first("size", "0"))

    # -- internals -----------------------------------------------------------------
    def _dataset_dn(self, dataset_id: str) -> DN:
        dn = self.root.child("dataset", dataset_id)
        if not self.directory.exists(dn):
            raise MetadataError(f"no dataset {dataset_id!r}")
        return dn

    def __repr__(self) -> str:
        return f"MetadataCatalog({len(self.directory)} entries)"
