"""Verified, crash-resumable bulk replication campaigns.

The paper's challenge problem is moving *collections* — "a dozen
multi-gigabyte files in a few hours" scaled up to entire model runs —
not single files. This package adds the campaign layer above the
request manager:

- :mod:`repro.campaign.manifest` — batched campaign planning: one
  catalog sweep resolves every (file, replica-set) pair of a
  multi-dataset manifest, instead of 10⁴ timed per-file LDAP queries;
- :mod:`repro.campaign.journal` — an append-only, idempotently
  replayable per-file state journal (the durable artifact a crashed
  campaign engine resumes from);
- :mod:`repro.campaign.engine` — the campaign driver: feeds bounded
  batches through a :class:`~repro.rm.manager.RequestManager` (bulk
  priority class, shared transfer scheduler), journals every per-file
  transition via RM lifecycle hooks, survives ``rm_crash`` fault
  injection by replaying the journal, and never re-transfers a file
  the journal already shows VERIFIED;
- :mod:`repro.campaign.reconcile` — the end-of-run certificate:
  cross-checks the journal against the replica catalog, the
  destination storage (re-digested), and the transfer scheduler's
  per-flow byte accounting, itemizing every disagreement as a named
  finding.
"""

from repro.campaign.engine import ReplicationCampaign
from repro.campaign.journal import (
    CampaignJournal,
    CampaignState,
    JournalRecord,
    ReplayEntry,
)
from repro.campaign.manifest import (
    CampaignManifest,
    ManifestEntry,
    plan_campaign,
)
from repro.campaign.reconcile import (
    Finding,
    ReconciliationReport,
    reconcile,
)

__all__ = [
    "CampaignJournal",
    "CampaignManifest",
    "CampaignState",
    "Finding",
    "JournalRecord",
    "ManifestEntry",
    "ReconciliationReport",
    "ReplayEntry",
    "ReplicationCampaign",
    "plan_campaign",
    "reconcile",
]
