"""End-of-run campaign reconciliation: does everything add up?

The paper's follow-on operations question: after a bulk replication
campaign claims success, *prove it* by cross-checking four independent
ledgers against each other:

1. the campaign **journal** (replayed per-file terminal states),
2. the **replica catalog** (publish-time sizes and digests),
3. the **destination storage** (what actually landed, re-digested),
4. the **transfer scheduler's** per-flow byte accounting.

Any disagreement becomes a named :class:`Finding` with severity
``"discrepancy"``; informational cross-checks (quarantine totals,
retransfer counts) come back as ``"info"``. A report with zero
discrepancies is the campaign's certificate of completion; the CLI
(``repro report``) exits nonzero otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.engine import ReplicationCampaign
from repro.campaign.journal import CampaignState
from repro.data.digest import file_digest


@dataclass(frozen=True)
class Finding:
    """One named reconciliation result.

    ``severity`` is ``"discrepancy"`` (ledgers disagree — the campaign
    cannot be certified) or ``"info"`` (a cross-check worth reporting
    that is not, by itself, a failure).
    """

    name: str
    severity: str
    file: str = ""
    detail: str = ""

    def render(self) -> str:
        where = f" [{self.file}]" if self.file else ""
        return f"{self.severity.upper():<11} {self.name}{where}: {self.detail}"


@dataclass
class SiteTotals:
    """Per-source-site delivery totals (from VERIFIED journal chains)."""

    files: int = 0
    bytes: float = 0.0


@dataclass
class ReconciliationReport:
    """The four-ledger cross-check result for one campaign."""

    campaign: str
    files: int
    states: Dict[str, int] = field(default_factory=dict)
    state_bytes: Dict[str, float] = field(default_factory=dict)
    sites: Dict[str, SiteTotals] = field(default_factory=dict)
    verified_files: int = 0
    verified_bytes: float = 0.0
    quarantine_events: int = 0
    retransferred_bytes: float = 0.0
    scheduler_bytes: Optional[float] = None
    findings: List[Finding] = field(default_factory=list)

    @property
    def discrepancies(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "discrepancy"]

    @property
    def clean(self) -> bool:
        """True = certificate of completion (zero discrepancies)."""
        return not self.discrepancies

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def render(self) -> str:
        lines = [f"reconciliation report: campaign {self.campaign!r}, "
                 f"{self.files} files"]
        lines.append("  per-state totals:")
        for state in sorted(self.states):
            lines.append(f"    {state:<12} {self.states[state]:6d} files "
                         f"{self.state_bytes.get(state, 0.0) / 1e9:10.3f} GB")
        if self.sites:
            lines.append("  per-site deliveries (verified):")
            for site in sorted(self.sites):
                tot = self.sites[site]
                lines.append(f"    {site:<16} {tot.files:6d} files "
                             f"{tot.bytes / 1e9:10.3f} GB")
        lines.append(f"  verified: {self.verified_files} files / "
                     f"{self.verified_bytes / 1e9:.3f} GB; "
                     f"quarantine events: {self.quarantine_events}; "
                     f"retransferred: "
                     f"{self.retransferred_bytes / 1e9:.3f} GB")
        if self.scheduler_bytes is not None:
            lines.append(f"  scheduler-accounted bytes: "
                         f"{self.scheduler_bytes / 1e9:.3f} GB")
        if self.findings:
            lines.append("  findings:")
            for f in self.findings:
                lines.append(f"    {f.render()}")
        lines.append(f"  verdict: "
                     f"{'CLEAN' if self.clean else 'DISCREPANT'} "
                     f"({len(self.discrepancies)} discrepancies)")
        return "\n".join(lines)


def reconcile(campaign: ReplicationCampaign,
              scheduler=None) -> ReconciliationReport:
    """Cross-check a finished campaign's four ledgers.

    ``scheduler`` defaults to the campaign RM's transfer scheduler; pass
    one explicitly (or ``None`` on an RM without admission control) to
    override. The campaign need not have succeeded — reconciling a
    half-failed campaign is exactly how its damage is itemized.
    """
    rm = campaign.rm
    catalog = rm.catalog
    dest_fs = rm.dest_fs
    if scheduler is None:
        scheduler = rm.scheduler
    replay = campaign.journal.replay()
    report = ReconciliationReport(campaign=campaign.name,
                                  files=len(campaign.manifest))
    report.quarantine_events = campaign.corruptions_caught
    report.retransferred_bytes = campaign.bytes_retransferred

    # site attribution: the location on each file's last applied
    # DELIVERED record (the copy that went on to verify).
    last_site: Dict[str, str] = {}
    for rec in campaign.journal.records:
        if rec.state is CampaignState.DELIVERED and rec.location:
            last_site[rec.file] = rec.location

    delivered_total = 0.0
    for entry in campaign.manifest.entries:
        key = entry.key
        folded = replay.get(key)
        state = folded.state if folded is not None else None
        label = state.value if state is not None else "unplanned"
        report.states[label] = report.states.get(label, 0) + 1
        report.state_bytes[label] = \
            report.state_bytes.get(label, 0.0) + entry.size
        if folded is not None:
            delivered_total += folded.delivered_bytes

        if state is None:
            report.findings.append(Finding(
                "journal-missing", "discrepancy", file=key,
                detail="manifest entry never journaled"))
            continue
        if state not in (CampaignState.VERIFIED, CampaignState.FAILED):
            report.findings.append(Finding(
                "journal-nonterminal", "discrepancy", file=key,
                detail=f"journal ends in {state.value!r}"))
        if state is not CampaignState.VERIFIED:
            continue

        # journal says VERIFIED — the other three ledgers must agree.
        report.verified_files += 1
        report.verified_bytes += entry.size
        site = last_site.get(key, "")
        if site:
            tot = report.sites.setdefault(site, SiteTotals())
            tot.files += 1
            tot.bytes += entry.size
        if not dest_fs.exists(entry.logical_file):
            report.findings.append(Finding(
                "verified-missing-on-destination", "discrepancy",
                file=key,
                detail="journal VERIFIED but file absent from "
                       "destination storage"))
            continue
        stored = dest_fs.stat(entry.logical_file)
        if entry.size and abs(stored.size - entry.size) > 0.5:
            report.findings.append(Finding(
                "destination-size-mismatch", "discrepancy", file=key,
                detail=f"catalog size {entry.size:.0f} != stored "
                       f"{stored.size:.0f}"))
        expected = entry.digest
        if expected is None:
            expected = catalog.logical_file_digest(entry.collection,
                                                   entry.logical_file)
        if expected is not None:
            actual = file_digest(stored)
            if actual != expected:
                report.findings.append(Finding(
                    "destination-digest-mismatch", "discrepancy",
                    file=key,
                    detail=f"stored digest {actual[:12]}... != "
                           f"catalog {expected[:12]}..."))
        else:
            report.findings.append(Finding(
                "no-catalog-digest", "info", file=key,
                detail="catalog holds no publish-time digest; "
                       "bytes verified by size only"))

    # ledger 4: the scheduler's independent per-flow byte accounting
    # must cover everything the journal says was delivered. (It may
    # exceed it: integrity-failed attempts moved bytes the journal
    # later voided.)
    if scheduler is not None and campaign.ticket_ids:
        flows = [f"ticket-{tid}" for tid in campaign.ticket_ids]
        report.scheduler_bytes = scheduler.flow_bytes(flows)
        if report.scheduler_bytes + 0.5 < delivered_total:
            report.findings.append(Finding(
                "scheduler-bytes-short", "discrepancy",
                detail=f"scheduler accounted "
                       f"{report.scheduler_bytes:.0f} bytes < journal "
                       f"delivered {delivered_total:.0f}"))

    # journal-internal cross-check: engine counter vs replayed bytes.
    if abs(campaign.bytes_delivered - delivered_total) > 0.5:
        report.findings.append(Finding(
            "journal-counter-drift", "discrepancy",
            detail=f"engine bytes_delivered "
                   f"{campaign.bytes_delivered:.0f} != journal replay "
                   f"{delivered_total:.0f}"))
    if campaign.verified_retransfers:
        report.findings.append(Finding(
            "verified-retransfer", "discrepancy",
            detail=f"{campaign.verified_retransfers} files "
                   "re-transferred after the journal showed VERIFIED"))
    if campaign.journal.ignored:
        report.findings.append(Finding(
            "journal-ignored-records", "info",
            detail=f"{campaign.journal.ignored} appends rejected by "
                   "the transition rules"))
    return report
