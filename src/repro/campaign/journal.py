"""The campaign journal: append-only, idempotently replayable state.

A replication campaign's only durable artifact is its journal — an
append-only sequence of per-file state transitions. The engine holds no
recovery-relevant state anywhere else: a crash writes nothing, and
resume is exactly ``replay()`` over whatever records made it in before
the crash.

Design rules the property suite (tests/campaign/test_journal.py) pins:

- **Monotone state machine** — a record is *applied* only if the
  per-file transition is in :data:`ALLOWED`; anything else is ignored
  (returned as ``None`` from :meth:`CampaignJournal.append`, skipped by
  :meth:`CampaignJournal.replay`). VERIFIED and FAILED are terminal
  (FAILED can be re-opened to PENDING by an operator record; VERIFIED
  can never regress).
- **Idempotent replay** — every record carries a globally increasing
  ``seq``; replay ignores any record whose seq is not greater than the
  last seq applied for that file. Replaying a journal twice (or
  replaying a concatenation of the journal with itself) yields the
  same per-file state and the same byte totals as replaying it once.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class CampaignState(enum.Enum):
    """Per-file campaign lifecycle."""

    PENDING = "pending"            # planned, not yet attempted
    IN_FLIGHT = "in-flight"        # a transfer attempt is running
    DELIVERED = "delivered"        # bytes landed, digest not yet checked
    VERIFIED = "verified"          # digest matched the catalog (terminal)
    QUARANTINED = "quarantined"    # digest mismatch; source quarantined
    FAILED = "failed"              # gave up after max attempts (terminal)


#: terminal states — a resumed campaign never re-queues these
TERMINAL = (CampaignState.VERIFIED, CampaignState.FAILED)

#: allowed transitions; ``None`` (no prior record) may enter any state.
ALLOWED: Dict[CampaignState, frozenset] = {
    CampaignState.PENDING: frozenset({CampaignState.IN_FLIGHT,
                                      CampaignState.FAILED}),
    CampaignState.IN_FLIGHT: frozenset({CampaignState.DELIVERED,
                                        CampaignState.QUARANTINED,
                                        CampaignState.PENDING,
                                        CampaignState.FAILED}),
    CampaignState.DELIVERED: frozenset({CampaignState.VERIFIED,
                                        CampaignState.QUARANTINED,
                                        CampaignState.PENDING}),
    CampaignState.QUARANTINED: frozenset({CampaignState.IN_FLIGHT,
                                          CampaignState.PENDING,
                                          CampaignState.FAILED}),
    CampaignState.VERIFIED: frozenset(),
    CampaignState.FAILED: frozenset({CampaignState.PENDING}),
}


def transition_allowed(current: Optional[CampaignState],
                       new: CampaignState) -> bool:
    """True if a file in ``current`` state may record ``new``."""
    if current is None:
        return True
    return new in ALLOWED[current]


@dataclass(frozen=True)
class JournalRecord:
    """One applied state transition."""

    seq: int                 # globally increasing within the journal
    t: float                 # sim time the transition was recorded
    file: str                # campaign file key (collection|logical_file)
    state: CampaignState
    nbytes: float = 0.0      # bytes moved by this transition (DELIVERED)
    location: str = ""       # replica location involved, if any
    note: str = ""           # free-form cause ("resume", "size-only", ...)


@dataclass
class ReplayEntry:
    """Folded per-file view produced by :meth:`CampaignJournal.replay`."""

    state: Optional[CampaignState] = None
    delivered_bytes: float = 0.0   # sum of applied DELIVERED nbytes
    last_seq: int = -1
    records: int = 0               # applied (not ignored) records


class CampaignJournal:
    """Append-only per-file state journal with idempotent replay."""

    def __init__(self) -> None:
        self.records: List[JournalRecord] = []
        self._state: Dict[str, CampaignState] = {}
        self._seq = 0
        self.ignored = 0  # appends rejected by the transition rules

    def append(self, file: str, state: CampaignState, t: float,
               nbytes: float = 0.0, location: str = "",
               note: str = "") -> Optional[JournalRecord]:
        """Record a transition; returns the record, or ``None`` if the
        transition is not allowed from the file's current state (the
        journal is left untouched — illegal transitions never land)."""
        if not transition_allowed(self._state.get(file), state):
            self.ignored += 1
            return None
        self._seq += 1
        record = JournalRecord(self._seq, t, file, state,
                               nbytes=float(nbytes), location=location,
                               note=note)
        self.records.append(record)
        self._state[file] = state
        return record

    def state(self, file: str) -> Optional[CampaignState]:
        """Current journaled state of ``file`` (None = never recorded)."""
        return self._state.get(file)

    def states(self) -> Dict[str, CampaignState]:
        """Snapshot of every file's current state."""
        return dict(self._state)

    def replay(self, records: Optional[Iterable[JournalRecord]] = None
               ) -> Dict[str, ReplayEntry]:
        """Fold records into per-file state, exactly as recovery does.

        Ignores per-file duplicates (seq not greater than the last seq
        applied for that file) and transitions the state machine
        forbids, so replaying a journal twice — or a concatenation of a
        journal with any prefix of itself — equals replaying it once.
        """
        out: Dict[str, ReplayEntry] = {}
        for rec in (self.records if records is None else records):
            entry = out.setdefault(rec.file, ReplayEntry())
            if rec.seq <= entry.last_seq:
                continue  # duplicate delivery of an already-applied record
            if not transition_allowed(entry.state, rec.state):
                continue
            entry.state = rec.state
            entry.last_seq = rec.seq
            entry.records += 1
            if rec.state is CampaignState.DELIVERED:
                entry.delivered_bytes += rec.nbytes
        return out

    # -- persistence ---------------------------------------------------------
    def serialize(self) -> str:
        """JSON-lines form of the journal (one record per line)."""
        lines = []
        for rec in self.records:
            lines.append(json.dumps({
                "seq": rec.seq, "t": rec.t, "file": rec.file,
                "state": rec.state.value, "nbytes": rec.nbytes,
                "location": rec.location, "note": rec.note}))
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "CampaignJournal":
        """Rebuild a journal from its :meth:`serialize` form."""
        journal = cls()
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            records.append(JournalRecord(
                int(d["seq"]), float(d["t"]), d["file"],
                CampaignState(d["state"]), nbytes=float(d["nbytes"]),
                location=d.get("location", ""), note=d.get("note", "")))
        records.sort(key=lambda r: r.seq)
        replayed = journal.replay(records)
        journal.records = records
        journal._state = {f: e.state for f, e in replayed.items()
                          if e.state is not None}
        journal._seq = max((r.seq for r in records), default=0)
        return journal

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (f"CampaignJournal({len(self.records)} records, "
                f"{len(self._state)} files)")
