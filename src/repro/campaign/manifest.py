"""Campaign planning: batched manifest + replica resolution.

The request manager's per-file pipeline issues one timed LDAP query per
file (``find_replicas``); at campaign scale (≥10⁴ files) that is both a
simulated-latency tax and an O(files × catalog) wall-clock tax. The
planner instead sweeps each collection's ``locations()`` once,
derives every file's replica set from the location filename lists, and
hands the request manager pre-resolved locations via
``submit(..., resolved=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.replica.catalog import LocationInfo, ReplicaCatalog


@dataclass(frozen=True)
class ManifestEntry:
    """One file the campaign must replicate."""

    collection: str
    logical_file: str
    size: float
    digest: Optional[str] = None   # publish-time digest, if registered

    @property
    def key(self) -> str:
        """Journal key (collection-qualified, unique campaign-wide)."""
        return f"{self.collection}|{self.logical_file}"


class CampaignManifest:
    """An ordered list of :class:`ManifestEntry`."""

    def __init__(self, entries: Iterable[ManifestEntry]):
        self.entries: List[ManifestEntry] = list(entries)

    @property
    def total_bytes(self) -> float:
        return sum(e.size for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self) -> str:
        return (f"CampaignManifest({len(self.entries)} files, "
                f"{self.total_bytes / 2**30:.1f} GiB)")


def plan_campaign(catalog: ReplicaCatalog,
                  collections: Optional[Iterable[str]] = None
                  ) -> Tuple[CampaignManifest,
                             Dict[Tuple[str, str], List[LocationInfo]]]:
    """Resolve a multi-dataset campaign in one batched catalog sweep.

    Returns ``(manifest, replicas)`` where ``replicas`` maps
    (collection, logical_file) → the locations holding that file —
    ready to pass to ``RequestManager.submit(..., resolved=replicas)``.
    """
    if collections is None:
        collections = [c.name for c in catalog.collections()]
    # Federated catalogs expose a demotion registry (entries that failed
    # verify-on-open); planned replica lists must not offer them.
    is_demoted = getattr(catalog, "is_demoted", None)
    entries: List[ManifestEntry] = []
    replicas: Dict[Tuple[str, str], List[LocationInfo]] = {}
    for coll in collections:
        locs = catalog.locations(coll)
        holders = [(loc, frozenset(loc.files)) for loc in locs]
        names = sorted({f for loc in locs for f in loc.files})
        for lf in names:
            size = catalog.logical_file_size(coll, lf) or 0.0
            digest = catalog.logical_file_digest(coll, lf)
            entries.append(ManifestEntry(coll, lf, size, digest))
            replicas[(coll, lf)] = [
                loc for loc, files in holders
                if lf in files and (is_demoted is None
                                    or not is_demoted(coll, lf, loc.name))]
    return CampaignManifest(entries), replicas
