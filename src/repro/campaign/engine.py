"""The replication campaign engine: journaled, crash-resumable driver.

Drives a :class:`~repro.campaign.manifest.CampaignManifest` through a
:class:`~repro.rm.manager.RequestManager` in bounded batches, recording
every per-file transition in a
:class:`~repro.campaign.journal.CampaignJournal` via the RM's lifecycle
hooks. The journal is the engine's *only* durable state:

- :meth:`ReplicationCampaign.crash` models a process kill — all
  in-flight tickets are cancelled, the work queue evaporates, nothing
  is written (a dying process does not get to checkpoint);
- :meth:`ReplicationCampaign.restart` replays the journal and re-queues
  exactly the files whose replayed state is non-terminal — a file the
  journal shows VERIFIED is never transferred again.

Bulk transfers ride the shared
:class:`~repro.rm.scheduler.TransferScheduler` at bulk priority (the
RM's priority is the ticket's file count), so interactive tenants keep
their latency while the campaign saturates the leftovers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.campaign.journal import (
    CampaignJournal,
    CampaignState,
    TERMINAL,
)
from repro.campaign.manifest import CampaignManifest, ManifestEntry
from repro.replica.catalog import LocationInfo
from repro.rm.manager import RequestManager
from repro.rm.request import FileState
from repro.sim.core import Environment
from repro.sim.events import Event


class ReplicationCampaign:
    """A verified bulk-replication campaign over one request manager.

    Parameters
    ----------
    env, rm:
        Simulation environment and the (dedicated) request manager the
        campaign drives. Enable ``verify_checksum`` on the RM's GridFTP
        config to get digest verification + quarantine semantics.
    manifest, replicas:
        Output of :func:`~repro.campaign.manifest.plan_campaign`.
    journal:
        Resume from an existing journal; default starts fresh.
    max_inflight:
        Concurrent batch tickets (bounds campaign pressure on the
        shared scheduler so interactive tenants keep their latency).
    batch_size:
        Files per ticket. Also the RM priority of campaign tickets —
        larger = more clearly bulk class.
    max_file_attempts:
        Campaign-level requeue budget per file before journaling FAILED
        (each requeue re-enters the RM's own retry machinery).
    """

    def __init__(self, env: Environment, rm: RequestManager,
                 manifest: CampaignManifest,
                 replicas: Dict[Tuple[str, str], List[LocationInfo]],
                 journal: Optional[CampaignJournal] = None,
                 max_inflight: int = 6, batch_size: int = 32,
                 max_file_attempts: int = 5, obs=None,
                 name: str = "campaign"):
        if max_inflight < 1 or batch_size < 1 or max_file_attempts < 1:
            raise ValueError("max_inflight, batch_size and "
                             "max_file_attempts must be >= 1")
        self.env = env
        self.rm = rm
        self.manifest = manifest
        self.replicas = replicas
        self.journal = journal or CampaignJournal()
        self.max_inflight = max_inflight
        self.batch_size = batch_size
        self.max_file_attempts = max_file_attempts
        self.obs = obs
        self.name = name
        self._by_key = {e.key: e for e in manifest.entries}
        self.queue: deque = deque()
        self.attempts: Dict[str, int] = {}
        self._deliveries: Dict[str, int] = {}
        self._tickets: List = []
        # every ticket id this campaign ever submitted (including ones
        # cancelled by a crash) — the reconciliation join key against
        # the scheduler's per-flow byte accounting.
        self.ticket_ids: List[int] = []
        self._workers = 0
        self.down = False
        self.epoch = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done: Event = Event(env)
        # reconciliation counters
        self.bytes_delivered = 0.0
        self.bytes_retransferred = 0.0
        self.corruptions_caught = 0
        self.verified_retransfers = 0   # resume-correctness tripwire: 0
        self.verify_seconds = 0.0
        self.crashes = 0
        self.resumes = 0
        rm.add_hook(self._on_rm_event)

    def _event(self, name: str, **fields) -> None:
        if self.obs is not None:
            self.obs.event(name, prog="campaign", host=self.name,
                           **fields)

    # -- driving -------------------------------------------------------------
    def start(self) -> Event:
        """Plan and launch the campaign; returns the completion event."""
        if self.started_at is not None:
            raise RuntimeError("campaign already started")
        self.started_at = self.env.now
        for entry in self.manifest.entries:
            self.journal.append(entry.key, CampaignState.PENDING,
                                self.env.now, note="plan")
            self.queue.append(entry)
        self._event("campaign.start", files=len(self.manifest.entries))
        self._spawn_workers()
        return self.done

    def wait(self):
        """Simulation process: wait for completion; returns the report."""
        result = yield self.done
        return result

    def _spawn_workers(self) -> None:
        self._workers = self.max_inflight
        for _ in range(self.max_inflight):
            self.env.process(self._worker(self.epoch))

    def _worker(self, epoch: int):
        while not self.down and epoch == self.epoch:
            batch: List[ManifestEntry] = []
            while self.queue and len(batch) < self.batch_size:
                batch.append(self.queue.popleft())
            if not batch:
                break
            resolved = {(e.collection, e.logical_file):
                        self.replicas.get((e.collection, e.logical_file),
                                          [])
                        for e in batch}
            ticket = self.rm.submit(
                [(e.collection, e.logical_file) for e in batch],
                resolved=resolved)
            self._tickets.append(ticket)
            self.ticket_ids.append(ticket.id)
            yield ticket.done
            if ticket in self._tickets:
                self._tickets.remove(ticket)
            if self.down or epoch != self.epoch:
                # Crashed mid-batch: the journal already holds the
                # per-file truth; a dying process settles nothing.
                return
            for fr, entry in zip(ticket.files, batch):
                self._settle(fr, entry)
        self._worker_done(epoch)

    def _settle(self, fr, entry: ManifestEntry) -> None:
        """Fold one finished FileRequest into journal + queue."""
        key = entry.key
        now = self.env.now
        if fr.state is FileState.DONE:
            if self.journal.state(key) is CampaignState.DELIVERED:
                # Verification disabled (or no digest published):
                # size-complete delivery is the best truth available.
                self.journal.append(key, CampaignState.VERIFIED, now,
                                    location=fr.chosen_location or "",
                                    note="size-only")
            return
        if fr.state is FileState.CANCELLED:
            # Only crashes cancel campaign tickets; restart re-queues.
            return
        self._requeue_or_fail(entry, fr.error or fr.state.value)

    def _requeue_or_fail(self, entry: ManifestEntry, reason: str) -> None:
        key = entry.key
        attempts = self.attempts.get(key, 0) + 1
        self.attempts[key] = attempts
        if attempts >= self.max_file_attempts:
            self.journal.append(key, CampaignState.FAILED, self.env.now,
                                note=reason)
            self._event("campaign.file.failed", file=key, reason=reason)
            return
        self.journal.append(key, CampaignState.PENDING, self.env.now,
                            note=f"requeue: {reason}")
        self.queue.append(entry)

    def _worker_done(self, epoch: int) -> None:
        if epoch != self.epoch or self.down:
            return
        self._workers -= 1
        if self._workers > 0:
            return
        # Queue drained and all workers idle: self-heal any file left
        # non-terminal (e.g. cancelled during a crash epoch), else done.
        stragglers = [e for e in self.manifest.entries
                      if self.journal.state(e.key) not in TERMINAL]
        if stragglers:
            for entry in stragglers:
                self._requeue_or_fail(entry, "straggler")
            if self.queue:
                self._spawn_workers()
                return
        self._finish()

    def _finish(self) -> None:
        if self.done.triggered:
            return
        self.finished_at = self.env.now
        report = self.report()
        self._event("campaign.done",
                    verified=report["states"].get("verified", 0),
                    failed=report["states"].get("failed", 0))
        self.done.succeed(report)

    # -- RM lifecycle hook -----------------------------------------------------
    def _on_rm_event(self, stage: str, fr, info: dict) -> None:
        if self.down:
            return  # a dead process journals nothing
        key = f"{fr.collection}|{fr.logical_file}"
        if key not in self._by_key:
            return  # interactive tenant traffic on a shared RM
        now = self.env.now
        if stage == "attempt":
            if self.journal.state(key) is CampaignState.VERIFIED:
                # Resume-correctness tripwire: a VERIFIED file must
                # never be transferred again. (The journal ignores the
                # regression; the counter makes the bug visible.)
                self.verified_retransfers += 1
            self.journal.append(key, CampaignState.IN_FLIGHT, now,
                                location=info.get("location", ""))
        elif stage == "delivered":
            nbytes = float(info.get("bytes", 0.0))
            self.bytes_delivered += nbytes
            if self._deliveries.get(key, 0) > 0:
                self.bytes_retransferred += nbytes
            self._deliveries[key] = self._deliveries.get(key, 0) + 1
            self.journal.append(key, CampaignState.DELIVERED, now,
                                nbytes=nbytes,
                                location=info.get("location", ""))
        elif stage == "verified":
            self.verify_seconds += float(info.get("seconds", 0.0))
            self.journal.append(key, CampaignState.VERIFIED, now,
                                nbytes=float(info.get("bytes", 0.0)),
                                location=info.get("location", ""))
        elif stage == "integrity_failed":
            self.corruptions_caught += 1
            self.journal.append(key, CampaignState.QUARANTINED, now,
                                location=info.get("location", ""),
                                note="digest mismatch")
        # "failed" is settled at ticket completion (attempt budget).

    # -- crash / resume --------------------------------------------------------
    def crash(self) -> None:
        """Kill the campaign process mid-run (fault injection).

        In-flight tickets are cancelled, queued work evaporates, and —
        deliberately — nothing is journaled: a dying process does not
        get a checkpoint. Recovery is :meth:`restart`'s journal replay.
        """
        if self.down:
            return
        self.down = True
        self.crashes += 1
        self.epoch += 1
        inflight = len(self._tickets)
        for ticket in list(self._tickets):
            ticket.cancel("campaign crashed")
        self._tickets.clear()
        self.queue.clear()
        self._workers = 0
        self._event("campaign.crash", inflight=inflight)

    def restart(self) -> None:
        """Recover from :meth:`crash` by replaying the journal.

        Every file whose replayed state is non-terminal is re-queued
        (IN_FLIGHT and DELIVERED included — unverified bytes from
        before the crash cannot be trusted); VERIFIED and FAILED files
        are never touched again.
        """
        if not self.down:
            return
        self.down = False
        self.resumes += 1
        replayed = self.journal.replay()
        requeued = 0
        for entry in self.manifest.entries:
            folded = replayed.get(entry.key)
            state = folded.state if folded is not None else None
            if state in TERMINAL:
                continue
            self.journal.append(entry.key, CampaignState.PENDING,
                                self.env.now, note="resume")
            self.queue.append(entry)
            requeued += 1
        self._event("campaign.restart", requeued=requeued)
        self._spawn_workers()

    # -- reconciliation --------------------------------------------------------
    def report(self) -> dict:
        """Reconciliation summary (also the ``done`` event's value)."""
        states: Dict[str, int] = {}
        for entry in self.manifest.entries:
            st = self.journal.state(entry.key)
            label = st.value if st is not None else "unplanned"
            states[label] = states.get(label, 0) + 1
        makespan = None
        if self.started_at is not None and self.finished_at is not None:
            makespan = self.finished_at - self.started_at
        return {
            "files": len(self.manifest.entries),
            "bytes_total": self.manifest.total_bytes,
            "states": states,
            "bytes_delivered": self.bytes_delivered,
            "bytes_retransferred": self.bytes_retransferred,
            "corruptions_caught": self.corruptions_caught,
            "verified_retransfers": self.verified_retransfers,
            "verify_seconds": self.verify_seconds,
            "crashes": self.crashes,
            "resumes": self.resumes,
            "journal_records": len(self.journal),
            "journal_ignored": self.journal.ignored,
            "makespan": makespan,
        }

    def __repr__(self) -> str:
        return (f"ReplicationCampaign({self.name!r}, "
                f"{len(self.manifest)} files, "
                f"{'down' if self.down else 'up'})")
