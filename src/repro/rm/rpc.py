"""A CORBA-flavoured RPC shim between CDAT and the request manager."""

from __future__ import annotations

from repro.sim.core import Environment


class CorbaChannel:
    """Models the marshalling + round-trip cost of an ORB call.

    The actual "remote" object is a local Python object here; what
    matters for end-to-end latency is that every CDAT→RM call pays a
    round trip plus per-argument marshalling, as the prototype's CORBA
    hop did.
    """

    def __init__(self, env: Environment, rtt: float = 0.002,
                 marshal_cost_per_item: float = 1e-4):
        if rtt < 0 or marshal_cost_per_item < 0:
            raise ValueError("costs must be >= 0")
        self.env = env
        self.rtt = rtt
        self.marshal_cost_per_item = marshal_cost_per_item
        self.calls = 0

    def call(self, method, *args, n_items: int = 1):
        """Simulation process: invoke ``method`` (itself a process
        generator) after the RPC overhead; returns its result.

        ``n_items`` sizes the marshalling cost (e.g. number of logical
        file names in the request).
        """
        self.calls += 1
        yield self.env.timeout(self.rtt
                               + self.marshal_cost_per_item * n_items)
        result = yield from method(*args)
        return result
