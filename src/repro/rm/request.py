"""Request/ticket data model for the request manager."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.core import Environment
from repro.sim.events import Event


class FileState(enum.Enum):
    """Lifecycle of one file within a request."""

    PENDING = "pending"
    SELECTING = "selecting replica"
    STAGING = "staging from tape"
    TRANSFERRING = "transferring"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class FileRequest:
    """One logical file within a multi-file request."""

    collection: str
    logical_file: str
    state: FileState = FileState.PENDING
    size: float = 0.0
    bytes_done: float = 0.0
    chosen_location: Optional[str] = None
    tried_locations: List[str] = field(default_factory=list)
    replica_switches: int = 0
    restarts: int = 0
    error: Optional[str] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # resilience bookkeeping (see repro.rm.resilience)
    deadline_at: Optional[float] = None       # absolute sim time, or None
    failure_class: Optional[object] = None    # FailureClass on FAILED
    breaker_skips: int = 0                    # candidates shed by breakers
    degraded_rankings: int = 0                # ranks done without live NWS
    # integrity pipeline (see repro.data.digest / GridFtpConfig.verify_checksum)
    pinned_replicas: Optional[List] = None    # pre-resolved LocationInfos
    # stale-tolerant selection (see repro.replica.federation)
    stale_lookups: int = 0                    # lookups served from stale data
    stale_demotes: int = 0                    # entries demoted on open mismatch
    verified: bool = False                    # digest matched the catalog
    verify_seconds: float = 0.0               # time spent in checksum scans
    integrity_failures: int = 0               # mismatches caught on arrival
    # per-file trace span (repro.obs), attached by an instrumented RM
    span: Optional[object] = field(default=None, repr=False)

    @property
    def fraction(self) -> float:
        """Completion fraction in [0, 1]."""
        if self.state is FileState.DONE:
            return 1.0
        return self.bytes_done / self.size if self.size > 0 else 0.0

    def progress_bar(self, width: int = 30) -> str:
        """ASCII progress bar (the Figure 4 per-file rows)."""
        filled = int(round(self.fraction * width))
        return "[" + "#" * filled + "-" * (width - filled) + "]"


class RequestTicket:
    """Handle for a submitted multi-file request."""

    def __init__(self, env: Environment, files: List[FileRequest],
                 deadline_at: Optional[float] = None):
        self.id = env.next_id("ticket")
        self.env = env
        self.files = files
        self.done: Event = Event(env)
        self.submitted_at = env.now
        self.cancelled = False
        # absolute sim time by which the whole request must terminate
        self.deadline_at = deadline_at
        # fires on cancel() so backoff sleeps can exit promptly
        self.aborted: Event = Event(env)
        # per-ticket circuit-breaker board, attached by the RM at submit
        self.breakers = None
        # per-ticket trace span (repro.obs), attached by an instrumented RM
        self.span = None
        # transient per-file transfer handles, maintained by the RM
        self._handles: dict = {}

    def cancel(self, reason: str = "user cancel") -> None:
        """Stop the request: in-flight transfers abort, pending files
        are skipped ("initiate, *control* and monitor", §4)."""
        self.cancelled = True
        if not self.aborted.triggered:
            self.aborted.succeed(reason)
        for handle in list(self._handles.values()):
            if not handle.done.triggered:
                handle.abort(reason)

    @property
    def total_bytes(self) -> float:
        """Sum of known file sizes."""
        return sum(f.size for f in self.files)

    @property
    def bytes_done(self) -> float:
        """Aggregate delivered bytes ("total bytes transferred for all
        file requests are displayed", §4)."""
        return sum(f.size if f.state is FileState.DONE else f.bytes_done
                   for f in self.files)

    @property
    def complete(self) -> bool:
        """True once every file has reached a terminal state."""
        return all(f.state in (FileState.DONE, FileState.FAILED,
                               FileState.CANCELLED)
                   for f in self.files)

    @property
    def failed_files(self) -> List[FileRequest]:
        return [f for f in self.files if f.state is FileState.FAILED]

    def find(self, logical_file: str) -> FileRequest:
        """Look up one file's entry."""
        for f in self.files:
            if f.logical_file == logical_file:
                return f
        raise KeyError(logical_file)

    def __repr__(self) -> str:
        done = sum(1 for f in self.files if f.state is FileState.DONE)
        return (f"RequestTicket(#{self.id}, {done}/{len(self.files)} files, "
                f"{self.bytes_done / 2**20:.1f} MiB)")
