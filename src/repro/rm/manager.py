"""The request manager: the per-file replica-selection + transfer pipeline."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gridftp.client import GridFtpClient, TransferHandle
from repro.gridftp.protocol import GridFtpConfig, GridFtpError
from repro.gridftp.restart import ReliabilityPolicy
from repro.gridftp.server import GridFtpServer
from repro.mds.service import MdsService
from repro.net.units import mbps
from repro.netlogger.log import NetLogger
from repro.nws.service import NetworkWeatherService
from repro.replica.catalog import LocationInfo, ReplicaCatalog
from repro.replica.selection import (
    NwsBestPolicy,
    ReplicaCandidate,
    SelectionPolicy,
)
from repro.rm.request import FileRequest, FileState, RequestTicket
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


class RequestManager:
    """Initiates, controls, and monitors multiple file transfers.

    Parameters
    ----------
    env:
        Simulation environment.
    catalog:
        The replica catalog (step 1 of the pipeline).
    mds:
        The MDS information service holding NWS forecasts (step 2).
    client:
        GridFTP client used for the gets (step 4).
    registry:
        hostname → :class:`GridFtpServer` (to reach HRMs and topology
        nodes for forecast keys).
    dest_host, dest_fs:
        Where fetched files land (the user's local site).
    policy:
        Replica selection policy (step 3); defaults to NWS-best.
    reliability:
        Optional low-rate switch policy (§7's plug-in). A fresh copy is
        used per file.
    nws:
        Optional NWS service; completed transfers are fed back as
        measurements.
    logger:
        Optional NetLogger for ULM events.
    """

    def __init__(self, env: Environment, catalog: ReplicaCatalog,
                 mds: MdsService, client: GridFtpClient,
                 registry: Dict[str, GridFtpServer],
                 dest_host, dest_fs: FileSystem,
                 policy: Optional[SelectionPolicy] = None,
                 reliability: Optional[ReliabilityPolicy] = None,
                 nws: Optional[NetworkWeatherService] = None,
                 logger: Optional[NetLogger] = None,
                 config: Optional[GridFtpConfig] = None):
        self.env = env
        self.catalog = catalog
        self.mds = mds
        self.client = client
        self.registry = registry
        self.dest_host = dest_host
        self.dest_fs = dest_fs
        self.policy = policy or NwsBestPolicy()
        self.reliability = reliability
        self.nws = nws
        self.logger = logger
        self.config = config or GridFtpConfig()
        self.tickets: List[RequestTicket] = []
        self.messages: List[tuple] = []  # (t, text) — Figure 4 bottom pane

    # -- public API -------------------------------------------------------
    def submit(self, requests: List[tuple]) -> RequestTicket:
        """Accept a multi-file request; returns a live ticket.

        ``requests`` is a list of (collection, logical_file). One
        simulated "thread" (process) runs per file, concurrently.
        """
        files = [FileRequest(collection=c, logical_file=f)
                 for c, f in requests]
        ticket = RequestTicket(self.env, files)
        self.tickets.append(ticket)
        workers = [self.env.process(self._file_thread(ticket, fr))
                   for fr in files]
        self.env.process(self._completion_watcher(ticket, workers))
        return ticket

    def request(self, requests: List[tuple]):
        """Simulation process: submit and wait; returns the ticket.

        This is the CDAT-facing entry point (call through a
        :class:`~repro.rm.rpc.CorbaChannel`).
        """
        ticket = self.submit(requests)
        yield ticket.done
        return ticket

    # -- pipeline ------------------------------------------------------------
    def _completion_watcher(self, ticket: RequestTicket, workers):
        yield self.env.all_of(workers)
        # "After all the files of a request transfer successfully, the RM
        # notifies CDAT."
        ticket.done.succeed(ticket)

    def _say(self, text: str) -> None:
        self.messages.append((self.env.now, text))
        if self.logger is not None:
            self.logger.event("rm.message", prog="request-manager",
                              text=text)

    def _file_thread(self, ticket: RequestTicket, fr: FileRequest):
        env = self.env
        fr.started_at = env.now
        if ticket.cancelled:
            self._cancel(fr)
            return
        fr.state = FileState.SELECTING
        # (1) replica lookup.
        try:
            replicas = yield from self.catalog.find_replicas(
                fr.collection, fr.logical_file)
        except Exception as exc:
            self._fail(fr, f"replica lookup failed: {exc}")
            return
        if not replicas:
            self._fail(fr, "no replicas registered")
            return
        size = self.catalog.logical_file_size(fr.collection,
                                              fr.logical_file)
        if size is not None:
            fr.size = size
        # (2)+(3) forecast and rank; then try candidates best-first, with
        # the reliability plug-in able to force a switch mid-transfer.
        candidates = yield from self._rank(replicas, fr)
        self._say(f"selecting replica for {fr.logical_file}: "
                  + ", ".join(f"{c.location.hostname}"
                              f"@{mbps_str(c.bandwidth)}"
                              for c in candidates))
        last_error = "no candidate attempted"
        for candidate in candidates:
            if ticket.cancelled:
                self._cancel(fr)
                return
            loc = candidate.location
            if loc.hostname not in self.registry:
                last_error = f"no server for {loc.hostname}"
                continue
            fr.chosen_location = loc.name
            fr.tried_locations.append(loc.name)
            self._say(f"transfer of {fr.logical_file} from "
                      f"{loc.hostname} initiated")
            ok, err = yield from self._attempt(fr, loc, ticket)
            if ticket.cancelled and not ok:
                self._cancel(fr)
                return
            if ok:
                fr.state = FileState.DONE
                fr.finished_at = env.now
                self._say(f"{fr.logical_file}: complete from "
                          f"{loc.hostname}")
                return
            last_error = err
            fr.replica_switches += 1
            self._say(f"{fr.logical_file}: switching replica after "
                      f"{err}")
        self._fail(fr, last_error)

    def _rank(self, replicas: List[LocationInfo], fr: FileRequest):
        candidates = []
        for loc in replicas:
            server = self.registry.get(loc.hostname)
            forecast = None
            if server is not None:
                forecast = yield from self.mds.nws_forecast(
                    server.host.node, self.dest_host.node)
            if forecast is not None:
                bandwidth, latency = forecast
            else:
                # Unmeasured path: fall back to a conservative constant
                # so measured paths are preferred.
                bandwidth, latency = mbps(1), 0.1
            stage_wait = 0.0
            if server is not None and server.hrm is not None \
                    and not server.hrm.is_staged(fr.logical_file):
                stage_wait = server.hrm.estimate_wait(fr.logical_file)
            candidates.append(ReplicaCandidate(
                loc, bandwidth=bandwidth, latency=latency,
                stage_wait=stage_wait))
        return self.policy.rank(candidates, fr.size)

    def _attempt(self, fr: FileRequest, loc: LocationInfo,
                 ticket: Optional[RequestTicket] = None):
        """One replica attempt; returns (ok, error_text)."""
        env = self.env
        server = self.registry[loc.hostname]
        handle = TransferHandle(env, fr.logical_file, fr.size)
        if ticket is not None:
            ticket._handles[fr.logical_file] = handle
        policy = None
        if self.reliability is not None:
            policy = ReliabilityPolicy(
                min_rate=self.reliability.min_rate,
                grace_period=self.reliability.grace_period,
                consecutive_samples=self.reliability.consecutive_samples)
        if server.hrm is not None and not server.hrm.is_staged(
                fr.logical_file) and server.hrm.mss.has(fr.logical_file):
            fr.state = FileState.STAGING
            self._say(f"{fr.logical_file}: staging from MSS at "
                      f"{loc.hostname}")
        started = env.now
        try:
            session = yield from self.client.connect(
                self.dest_host, loc.hostname, self.config)
        except GridFtpError as exc:
            return False, f"connect failed ({exc.reply.code})"
        transfer = env.process(session.get(
            fr.logical_file, self.dest_fs, self.dest_host,
            handle=handle, config=self.config, record=True))
        # (5) monitor progress "every few seconds". A failing transfer
        # raises at the any_of yield (AnyOf propagates child failures),
        # so the whole monitoring loop sits inside the try.
        poll = self.config.progress_poll
        last_bytes = 0.0
        try:
            while not transfer.triggered:
                tick = env.timeout(poll)
                yield env.any_of([transfer, tick])
                if transfer.triggered:
                    break
                done_now = handle.bytes_done()
                if done_now > 0 and fr.state is not FileState.TRANSFERRING:
                    fr.state = FileState.TRANSFERRING
                fr.bytes_done = done_now
                fr.size = max(fr.size, handle.total)
                rate = (done_now - last_bytes) / poll
                last_bytes = done_now
                if policy is not None and policy.observe(
                        env.now - started, rate):
                    handle.abort(
                        "reliability plug-in: rate below threshold")
            stats = transfer.value
        except GridFtpError as exc:
            fr.bytes_done = handle.bytes_done()
            session.close()
            return False, str(exc.reply)
        fr.bytes_done = stats.transferred_bytes
        fr.size = stats.transferred_bytes
        fr.restarts += stats.restarts
        elapsed = max(env.now - started, 1e-9)
        if self.nws is not None and stats.transferred_bytes > 0:
            self.nws.observe(server.host.node, self.dest_host.node,
                             stats.transferred_bytes / elapsed,
                             self.client.transport.network.topology.rtt(
                                 server.host.node,
                                 self.dest_host.node) / 2)
        if self.logger is not None:
            self.logger.event("rm.transfer.done", prog="request-manager",
                              file=fr.logical_file, host=loc.hostname,
                              bytes=f"{stats.transferred_bytes:.0f}",
                              seconds=f"{elapsed:.3f}")
        session.close()
        return True, ""

    def _cancel(self, fr: FileRequest) -> None:
        fr.state = FileState.CANCELLED
        fr.finished_at = self.env.now
        self._say(f"{fr.logical_file}: cancelled")

    def _fail(self, fr: FileRequest, reason: str) -> None:
        fr.state = FileState.FAILED
        fr.error = reason
        fr.finished_at = self.env.now
        self._say(f"{fr.logical_file}: FAILED ({reason})")


def mbps_str(bandwidth: float) -> str:
    """bytes/s → short Mb/s label for monitor messages."""
    return f"{bandwidth * 8 / 1e6:.0f}Mb/s"
