"""The request manager: the per-file replica-selection + transfer pipeline.

The hardened pipeline layers control-plane fault tolerance over the
paper's four steps (lookup → forecast → rank → transfer):

- whole-file retry rounds with capped exponential backoff
  (:class:`~repro.rm.resilience.RetryPolicy`), jitter drawn from a named
  sim RNG stream so chaos runs are reproducible per seed;
- per-host circuit breakers shared across a ticket's file threads
  (:class:`~repro.rm.resilience.BreakerBoard`) so one dead server is not
  re-probed by every file;
- per-file / per-ticket deadlines enforced by a watchdog process that
  aborts in-flight transfers and finalizes the file as FAILED(deadline);
- degraded-mode ranking: when the MDS/NWS directory is unreachable,
  :meth:`RequestManager._rank` falls back to round-robin over cached
  last-known forecasts instead of failing the file;
- every failure carries a typed
  :class:`~repro.rm.resilience.FailureClass`, recorded on the ticket and
  emitted as a NetLogger ``rm.failure`` event.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.data.digest import file_digest
from repro.gridftp.client import GridFtpClient, TransferHandle
from repro.gridftp.protocol import (
    ACTION_NOT_TAKEN,
    FILE_UNAVAILABLE,
    GridFtpConfig,
    GridFtpError,
)
from repro.gridftp.restart import ReliabilityPolicy
from repro.gridftp.server import GridFtpServer
from repro.mds.service import MdsService
from repro.netlogger.log import NetLogger
from repro.nws.service import NetworkWeatherService
from repro.obs import Observability
from repro.replica.catalog import LocationInfo, ReplicaCatalog
from repro.replica.selection import (
    NwsBestPolicy,
    ReplicaCandidate,
    SelectionPolicy,
)
from repro.rm.request import FileRequest, FileState, RequestTicket
from repro.rm.resilience import FailureClass, ResiliencePolicy
from repro.rm.scheduler import QueueFull, TransferScheduler
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem

_TERMINAL = (FileState.DONE, FileState.FAILED, FileState.CANCELLED)


class RequestManager:
    """Initiates, controls, and monitors multiple file transfers.

    Parameters
    ----------
    env:
        Simulation environment.
    catalog:
        The replica catalog (step 1 of the pipeline).
    mds:
        The MDS information service holding NWS forecasts (step 2).
    client:
        GridFTP client used for the gets (step 4).
    registry:
        hostname → :class:`GridFtpServer` (to reach HRMs and topology
        nodes for forecast keys).
    dest_host, dest_fs:
        Where fetched files land (the user's local site).
    policy:
        Replica selection policy (step 3); defaults to NWS-best.
    reliability:
        Optional low-rate switch policy (§7's plug-in). A fresh clone is
        used per attempt.
    nws:
        Optional NWS service; completed transfers are fed back as
        measurements.
    logger:
        Optional NetLogger for ULM events.
    resilience:
        Optional :class:`~repro.rm.resilience.ResiliencePolicy` enabling
        retry rounds, circuit breakers, and default deadlines. ``None``
        preserves the original single-sweep behaviour exactly.
    obs:
        Optional :class:`~repro.obs.Observability` bundle: pipeline
        metrics, per-ticket/per-file/per-attempt spans, and lifeline
        milestone events (``rm.request`` → ``rm.select`` →
        ``gridftp.connect`` → ``gridftp.first_byte`` → terminal). When
        ``obs`` carries a logger and ``logger`` is unset, events go to
        the bundle's log.
    scheduler:
        Optional shared :class:`~repro.rm.scheduler.TransferScheduler`.
        When set, every transfer attempt acquires an admission slot
        (per-server/per-link caps, DRR fairness across tickets) before
        connecting, uses the grant's budgeted stream count instead of
        the configured maximum, and releases the slot when the attempt
        ends. A full queue (:class:`~repro.rm.scheduler.QueueFull`) is
        treated as a transient candidate failure — visible
        backpressure, handled by the normal retry rounds.
    """

    def __init__(self, env: Environment, catalog: ReplicaCatalog,
                 mds: MdsService, client: GridFtpClient,
                 registry: Dict[str, GridFtpServer],
                 dest_host, dest_fs: FileSystem,
                 policy: Optional[SelectionPolicy] = None,
                 reliability: Optional[ReliabilityPolicy] = None,
                 nws: Optional[NetworkWeatherService] = None,
                 logger: Optional[NetLogger] = None,
                 config: Optional[GridFtpConfig] = None,
                 resilience: Optional[ResiliencePolicy] = None,
                 obs: Optional[Observability] = None,
                 scheduler: Optional[TransferScheduler] = None,
                 tenant: str = "default"):
        self.env = env
        self.tenant = tenant
        self.catalog = catalog
        self.mds = mds
        self.client = client
        self.registry = registry
        self.dest_host = dest_host
        self.dest_fs = dest_fs
        self.policy = policy or NwsBestPolicy()
        self.reliability = reliability
        self.nws = nws
        self.obs = obs
        if logger is None and obs is not None:
            logger = obs.logger
        self.logger = logger
        # selection policies record ranking metrics when instrumented
        if obs is not None and getattr(self.policy, "obs", None) is None \
                and hasattr(self.policy, "obs"):
            self.policy.obs = obs
        self.config = config or GridFtpConfig()
        self.resilience = resilience
        self.scheduler = scheduler
        self.tickets: List[RequestTicket] = []
        self.messages: List[tuple] = []  # (t, text) — Figure 4 bottom pane
        # Integrity pipeline state: replicas whose delivered digest
        # mismatched the catalog, keyed (collection, logical_file,
        # location name) → sim time of the mismatch. Quarantined copies
        # are demoted to last place in replica selection.
        self.quarantined: Dict[Tuple[str, str, str], float] = {}
        # Lifecycle hooks: fn(stage, file_request, info_dict), called at
        # "attempt" / "delivered" / "verified" / "integrity_failed" /
        # "failed". Used by the campaign engine's journal.
        self.hooks: List = []
        # degraded-mode state: last known forecast per (src, dst) path,
        # and a rotation counter for round-robin over stale candidates.
        self._forecast_cache: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._degraded_counter = 0
        self._jitter_rng = (env.rng.stream("rm.retry.jitter")
                            if resilience is not None else None)

    # -- public API -------------------------------------------------------
    def add_hook(self, fn) -> None:
        """Register a lifecycle hook ``fn(stage, file_request, info)``.

        Stages: "attempt" (a replica attempt starts), "delivered"
        (bytes landed), "verified" (digest matched), "integrity_failed"
        (digest mismatch — replica quarantined), "failed" (terminal
        failure). Hooks must not yield.
        """
        self.hooks.append(fn)

    def _hook(self, stage: str, fr: FileRequest, **info) -> None:
        for fn in self.hooks:
            fn(stage, fr, info)

    def submit(self, requests: List[tuple],
               file_deadline: Optional[float] = None,
               ticket_deadline: Optional[float] = None,
               resolved: Optional[Dict[Tuple[str, str],
                                       List[LocationInfo]]] = None
               ) -> RequestTicket:
        """Accept a multi-file request; returns a live ticket.

        ``requests`` is a list of (collection, logical_file). One
        simulated "thread" (process) runs per file, concurrently.
        ``file_deadline``/``ticket_deadline`` are budgets in seconds from
        now; unset, they default to the resilience policy's values.

        ``resolved`` optionally maps (collection, logical_file) → the
        pre-resolved :class:`LocationInfo` list for that file. Files
        found in the map skip the per-file catalog query — bulk
        campaigns resolve a whole manifest with one batched
        ``locations()`` sweep instead of 10⁴ timed LDAP searches.
        """
        res = self.resilience
        if file_deadline is None and res is not None:
            file_deadline = res.file_deadline
        if ticket_deadline is None and res is not None:
            ticket_deadline = res.ticket_deadline
        now = self.env.now
        files = [FileRequest(collection=c, logical_file=f)
                 for c, f in requests]
        if resolved:
            for fr in files:
                locs = resolved.get((fr.collection, fr.logical_file))
                if locs is not None:
                    fr.pinned_replicas = list(locs)
        if file_deadline is not None:
            for fr in files:
                fr.deadline_at = now + file_deadline
        ticket = RequestTicket(
            self.env, files,
            deadline_at=(now + ticket_deadline
                         if ticket_deadline is not None else None))
        if res is not None:
            ticket.breakers = res.board(obs=self.obs)
        if self.obs is not None:
            self.obs.count("rm.tickets_total")
            span = self.obs.span("rm.ticket", trace=f"ticket-{ticket.id}",
                                 ticket=ticket.id, files=len(files))
            if span is not None:
                ticket.span = span
                ticket.done.add_callback(lambda _ev: span.finish())
        self.tickets.append(ticket)
        workers = [self.env.process(self._file_thread(ticket, fr))
                   for fr in files]
        self.env.process(self._completion_watcher(ticket, workers))
        if file_deadline is not None or ticket_deadline is not None:
            self.env.process(self._deadline_watchdog(ticket))
        return ticket

    def request(self, requests: List[tuple]):
        """Simulation process: submit and wait; returns the ticket.

        This is the CDAT-facing entry point (call through a
        :class:`~repro.rm.rpc.CorbaChannel`).
        """
        ticket = self.submit(requests)
        yield ticket.done
        return ticket

    # -- pipeline ------------------------------------------------------------
    def _completion_watcher(self, ticket: RequestTicket, workers):
        yield self.env.all_of(workers)
        # "After all the files of a request transfer successfully, the RM
        # notifies CDAT." (The deadline watchdog may have beaten us to it.)
        if not ticket.done.triggered:
            ticket.done.succeed(ticket)

    def _deadline_watchdog(self, ticket: RequestTicket):
        """Enforce per-file and per-ticket deadlines.

        At each due deadline, in-flight transfers of overdue files are
        aborted and the files finalized as FAILED(deadline); the ticket
        completes even if a file thread is still unwinding (e.g. stuck
        in a hung directory lookup that ends with the outage window).
        """
        env = self.env
        while True:
            pending = [f for f in ticket.files if f.state not in _TERMINAL]
            if not pending:
                return
            deadlines = [f.deadline_at for f in pending
                         if f.deadline_at is not None]
            if ticket.deadline_at is not None:
                deadlines.append(ticket.deadline_at)
            if not deadlines:
                return
            target = min(deadlines)
            if target > env.now:
                timer = env.timeout(target - env.now)
                yield env.any_of([timer, ticket.done])
                if ticket.done.triggered:
                    return
            for fr in ticket.files:
                if fr.state in _TERMINAL:
                    continue
                limit = min(fr.deadline_at if fr.deadline_at is not None
                            else float("inf"),
                            ticket.deadline_at if ticket.deadline_at
                            is not None else float("inf"))
                if env.now >= limit:
                    handle = ticket._handles.get(fr.logical_file)
                    if handle is not None and not handle.done.triggered:
                        handle.abort("deadline exceeded")
                    self._fail(ticket, fr, "deadline exceeded",
                               FailureClass.DEADLINE)
            if ticket.complete and not ticket.done.triggered:
                ticket.done.succeed(ticket)
                return

    def _say(self, text: str) -> None:
        self.messages.append((self.env.now, text))
        if self.logger is not None:
            self.logger.event("rm.message", prog="request-manager",
                              text=text)

    def _should_stop(self, ticket: RequestTicket, fr: FileRequest) -> bool:
        """Checkpoint between yields: True = stop, ``fr`` is finalized."""
        if fr.state in _TERMINAL:
            # The deadline watchdog (or a concurrent cancel) got here
            # first; nothing left to do.
            return True
        if ticket.cancelled:
            self._cancel(ticket, fr)
            return True
        if fr.deadline_at is not None and self.env.now >= fr.deadline_at:
            self._fail(ticket, fr, "deadline exceeded",
                       FailureClass.DEADLINE)
            return True
        if (ticket.deadline_at is not None
                and self.env.now >= ticket.deadline_at):
            self._fail(ticket, fr, "ticket deadline exceeded",
                       FailureClass.DEADLINE)
            return True
        return False

    def _backoff(self, ticket: RequestTicket, fr: FileRequest,
                 attempt: int):
        """Interruptible sleep before retry round ``attempt`` + 1."""
        delay = self.resilience.retry.delay(attempt, rng=self._jitter_rng)
        if self.logger is not None:
            self.logger.event("rm.retry", prog="request-manager",
                              file=fr.logical_file, round=str(attempt),
                              ticket=str(ticket.id),
                              backoff=f"{delay:.2f}")
        if self.obs is not None:
            self.obs.count("rm.retries_total")
        self._say(f"{fr.logical_file}: retry round {attempt + 1} in "
                  f"{delay:.1f}s")
        timer = self.env.timeout(delay)
        # A cancelled ticket must not sit out the full backoff.
        yield self.env.any_of([timer, ticket.aborted])

    def _file_thread(self, ticket: RequestTicket, fr: FileRequest):
        """Span/event wrapper around :meth:`_file_body`.

        Emits the ``rm.request`` lifeline milestone, opens the per-file
        span under the ticket span, and guarantees both the span finish
        and the outcome metrics fire no matter how the body exits.
        """
        env = self.env
        fr.started_at = env.now
        obs = self.obs
        if obs is not None:
            obs.event("rm.request", prog="request-manager",
                      ticket=ticket.id, file=fr.logical_file,
                      collection=fr.collection)
            fr.span = obs.span("rm.file", parent=ticket.span,
                               trace=f"ticket-{ticket.id}",
                               ticket=ticket.id, file=fr.logical_file)
        try:
            yield from self._file_body(ticket, fr)
        finally:
            if obs is not None:
                outcome = fr.state.value
                if fr.span is not None:
                    fr.span.finish(status=outcome)
                obs.count("rm.files_total", outcome=outcome)
                if fr.finished_at is not None:
                    obs.observe("rm.file_seconds",
                                fr.finished_at - fr.started_at,
                                outcome=outcome)

    def _file_body(self, ticket: RequestTicket, fr: FileRequest):
        env = self.env
        if self._should_stop(ticket, fr):
            return
        rounds = (self.resilience.retry.max_rounds
                  if self.resilience is not None else 1)
        last_error = "no candidate attempted"
        last_class: Optional[FailureClass] = None
        for round_no in range(1, rounds + 1):
            if round_no > 1:
                yield from self._backoff(ticket, fr, round_no - 1)
                if self._should_stop(ticket, fr):
                    return
            fr.state = FileState.SELECTING
            # (1) replica lookup — skipped for pre-resolved (campaign)
            # files, whose locations came from one batched catalog sweep.
            # A federated catalog returns (locations, QueryMeta): the
            # answer may be stale (cached / lagging shard) or partial
            # (a shard was down), and selection proceeds anyway —
            # verify-on-open catches entries that outlived the replica.
            lookup_meta = None
            if fr.pinned_replicas is not None:
                replicas = list(fr.pinned_replicas)
            else:
                finder = getattr(self.catalog, "find_replicas_meta", None)
                try:
                    if finder is not None:
                        replicas, lookup_meta = yield from finder(
                            fr.collection, fr.logical_file)
                    else:
                        replicas = yield from self.catalog.find_replicas(
                            fr.collection, fr.logical_file)
                except Exception as exc:
                    if self._should_stop(ticket, fr):
                        return
                    last_error = f"replica lookup failed: {exc}"
                    last_class = FailureClass.LOOKUP
                    continue
                if self._should_stop(ticket, fr):
                    return
                if lookup_meta is not None and lookup_meta.stale:
                    fr.stale_lookups += 1
                    if self.obs is not None:
                        self.obs.count("rm.stale_lookups_total")
            if not replicas:
                if lookup_meta is not None and (lookup_meta.partial
                                                or lookup_meta.stale):
                    # A degraded answer may simply be missing the entry;
                    # retry rounds can see a healthier federation.
                    last_error = "no replicas in partial/stale answer"
                    last_class = FailureClass.LOOKUP
                    continue
                # Permanent: no amount of retrying invents a replica.
                self._fail(ticket, fr, "no replicas registered",
                           FailureClass.LOOKUP)
                return
            size = self.catalog.logical_file_size(fr.collection,
                                                  fr.logical_file)
            if size is not None:
                fr.size = size
            # (2)+(3) forecast and rank; then try candidates best-first,
            # with the reliability plug-in able to force a switch
            # mid-transfer.
            candidates = yield from self._rank(
                replicas, fr,
                stale=lookup_meta is not None and lookup_meta.stale)
            if self._should_stop(ticket, fr):
                return
            if self.quarantined:
                # Quarantined copies (past digest mismatches) go to the
                # back of the line: still reachable as a last resort,
                # never preferred over an untainted replica.
                fresh = [c for c in candidates
                         if (fr.collection, fr.logical_file,
                             c.location.name) not in self.quarantined]
                quar = [c for c in candidates if c not in fresh]
                candidates = fresh + quar
            if self.obs is not None and candidates:
                self.obs.event("rm.select", prog="request-manager",
                               ticket=ticket.id, file=fr.logical_file,
                               host=candidates[0].location.hostname,
                               candidates=len(candidates))
            self._say(f"selecting replica for {fr.logical_file}: "
                      + ", ".join(f"{c.location.hostname}"
                                  f"@{mbps_str(c.bandwidth)}"
                                  for c in candidates))
            board = ticket.breakers
            for candidate in candidates:
                if self._should_stop(ticket, fr):
                    return
                loc = candidate.location
                if loc.hostname not in self.registry:
                    last_error = f"no server for {loc.hostname}"
                    last_class = FailureClass.CONNECT
                    continue
                breaker = (board.for_host(loc.hostname)
                           if board is not None else None)
                if breaker is not None and not breaker.allow(env.now):
                    fr.breaker_skips += 1
                    last_error = (f"{loc.hostname}: circuit open, "
                                  "skipped")
                    last_class = FailureClass.CONNECT
                    continue
                fr.chosen_location = loc.name
                fr.tried_locations.append(loc.name)
                self._say(f"transfer of {fr.logical_file} from "
                          f"{loc.hostname} initiated")
                ok, err, fclass = yield from self._attempt(fr, loc, ticket)
                if ok:
                    if breaker is not None:
                        breaker.record_success()
                    fr.state = FileState.DONE
                    fr.finished_at = env.now
                    self._say(f"{fr.logical_file}: complete from "
                              f"{loc.hostname}")
                    return
                if fclass is FailureClass.STALE:
                    # The host is healthy; the *catalog entry* outlived
                    # the replica. Demote the entry (not the host) so
                    # re-selection and future lookups skip it until the
                    # collection is refreshed.
                    self._demote_stale(fr, loc)
                elif breaker is not None:
                    breaker.record_failure(env.now)
                if self._should_stop(ticket, fr):
                    return
                last_error, last_class = err, fclass
                fr.replica_switches += 1
                self._say(f"{fr.logical_file}: switching replica after "
                          f"{err}")
        self._fail(ticket, fr, last_error, last_class)

    def _rank(self, replicas: List[LocationInfo], fr: FileRequest,
              stale: bool = False):
        """Forecast-and-rank; degrades gracefully when MDS is down.

        Healthy path: live NWS forecasts via MDS, ranked by the
        selection policy (and every forecast refreshes the cache). If
        any lookup raises (directory outage), the ranking is rebuilt
        from cached last-known forecasts — or the config's fallback
        constants where no history exists — and rotated round-robin so
        blind retries spread across replicas instead of hammering one.
        """
        candidates = []
        degraded = False
        for loc in replicas:
            server = self.registry.get(loc.hostname)
            forecast = None
            path_key = None
            live = False
            if server is not None:
                path_key = (server.host.node, self.dest_host.node)
                try:
                    forecast = yield from self.mds.nws_forecast(
                        server.host.node, self.dest_host.node)
                    live = forecast is not None
                except Exception:
                    degraded = True
                    forecast = self._forecast_cache.get(path_key)
            if forecast is not None:
                bandwidth, latency = forecast
                if live:
                    self._forecast_cache[path_key] = (bandwidth, latency)
            else:
                # Unmeasured path: fall back to a conservative constant
                # so measured paths are preferred.
                bandwidth = self.config.fallback_bandwidth
                latency = self.config.fallback_latency
            stage_wait = 0.0
            if server is not None and server.hrm is not None \
                    and not server.hrm.is_staged(fr.logical_file):
                stage_wait = server.hrm.estimate_wait(fr.logical_file)
            candidates.append(ReplicaCandidate(
                loc, bandwidth=bandwidth, latency=latency,
                stage_wait=stage_wait, stale=stale))
        if degraded:
            fr.degraded_rankings += 1
            if self.obs is not None:
                self.obs.count("rm.degraded_ranks_total")
            if self.logger is not None:
                self.logger.event("rm.rank.degraded",
                                  prog="request-manager",
                                  file=fr.logical_file,
                                  candidates=str(len(candidates)))
            self._say(f"{fr.logical_file}: MDS unreachable, ranking from "
                      "cached forecasts (round-robin)")
            ordered = sorted(candidates, key=lambda c: c.location.name)
            k = self._degraded_counter % len(ordered) if ordered else 0
            self._degraded_counter += 1
            return ordered[k:] + ordered[:k]
        return self.policy.rank(candidates, fr.size)

    def _classify(self, exc: GridFtpError) -> FailureClass:
        """Map a transfer-layer error onto the failure taxonomy."""
        text = str(exc.reply).lower()
        if "deadline" in text:
            return FailureClass.DEADLINE
        if exc.reply.code == ACTION_NOT_TAKEN or "staging" in text:
            return FailureClass.STAGING
        if exc.reply.code == FILE_UNAVAILABLE and "no such file" in text:
            # The server answered but cannot produce the file: the
            # catalog entry is stale, not the host.
            return FailureClass.STALE
        return FailureClass.TRANSFER

    def _demote_stale(self, fr: FileRequest, loc: LocationInfo) -> None:
        """Verify-on-open mismatch: hide the entry, not the host.

        A federated catalog owns the demotion registry (and emits the
        ``catalog.demote`` lifeline event); against a plain catalog the
        RM's quarantine map stands in, with the same event emitted here
        so lifelines agree across catalog kinds.
        """
        fr.stale_demotes += 1
        demote = getattr(self.catalog, "demote", None)
        if demote is not None:
            demote(fr.collection, fr.logical_file, loc.name)
        else:
            self.quarantined[(fr.collection, fr.logical_file,
                              loc.name)] = self.env.now
            if self.obs is not None:
                self.obs.event("catalog.demote", prog="request-manager",
                               collection=fr.collection,
                               file=fr.logical_file, location=loc.name)
                self.obs.count("catalog.demotes_total")
        if self.obs is not None:
            self.obs.count("rm.stale_demotes_total")
        self._say(f"{fr.logical_file}: stale catalog entry at {loc.name} "
                  "demoted")

    def _acquire_slot(self, fr: FileRequest, loc: LocationInfo,
                      ticket: Optional[RequestTicket],
                      handle: TransferHandle):
        """Admission control: wait for a scheduler grant for this attempt.

        Returns ``(grant, error, failure_class)`` — exactly one of
        ``grant`` / ``error`` is set. ``grant`` is ``None`` with no
        error only when the scheduler is disabled.
        """
        if self.scheduler is None:
            return None, None, None
        flow = f"ticket-{ticket.id}" if ticket is not None else "adhoc"
        # Interactive tickets (few files) outrank bulk replication; the
        # scheduler's aging keeps the bulk class starvation-bounded.
        priority = len(ticket.files) if ticket is not None else 1
        try:
            grant = yield from self.scheduler.acquire(
                loc.hostname, flow=flow, size=fr.size,
                link=getattr(self.dest_host, "site", None),
                streams=self.config.parallelism, priority=priority,
                abort=handle.abort_event)
        except QueueFull as exc:
            self._say(f"{fr.logical_file}: {exc}")
            return None, str(exc), FailureClass.CONNECT
        if grant is None:  # aborted (deadline/cancel) while queued
            return (None, f"aborted while queued "
                    f"({handle.abort_reason or 'abort'})",
                    FailureClass.TRANSFER)
        return grant, None, None

    def _attempt(self, fr: FileRequest, loc: LocationInfo,
                 ticket: Optional[RequestTicket] = None):
        """One replica attempt; returns (ok, error_text, failure_class)."""
        env = self.env
        server = self.registry[loc.hostname]
        handle = TransferHandle(env, fr.logical_file, fr.size)
        if ticket is not None:
            ticket._handles[fr.logical_file] = handle
        policy = (self.reliability.clone()
                  if self.reliability is not None else None)
        if server.hrm is not None and ticket is not None:
            # Dataset-aware prefetch: hand the HRM the ticket's full
            # logical-file list so it can stage not-yet-requested
            # siblings during idle drive time.
            server.hrm.hint_dataset(
                [f.logical_file for f in ticket.files])
        if server.hrm is not None and not server.hrm.is_staged(
                fr.logical_file) and server.hrm.mss.has(fr.logical_file):
            fr.state = FileState.STAGING
            self._say(f"{fr.logical_file}: staging from MSS at "
                      f"{loc.hostname}")
        span = None
        if self.obs is not None:
            span = self.obs.span("rm.attempt", parent=fr.span,
                                 trace=(f"ticket-{ticket.id}"
                                        if ticket is not None else None),
                                 file=fr.logical_file, host=loc.hostname)
        self._hook("attempt", fr, host=loc.hostname, location=loc.name)
        tfields = ({"ticket": str(ticket.id)}
                   if ticket is not None else {})
        if self.scheduler is not None and self.logger is not None:
            # Lifeline milestone: admission-queue wait starts here and
            # ends at rm.granted, so queue time is blamed on the
            # scheduler rather than folded into connect time.
            self.logger.event("rm.queue", prog="request-manager",
                              file=fr.logical_file, host=loc.hostname,
                              **tfields)
        grant, err, fclass = yield from self._acquire_slot(
            fr, loc, ticket, handle)
        if err is not None:
            if span is not None:
                span.finish(status="error", error="admission")
            return False, err, fclass
        if grant is not None:
            if self.logger is not None:
                self.logger.event("rm.granted", prog="request-manager",
                                  file=fr.logical_file,
                                  host=loc.hostname,
                                  waited=f"{grant.waited:.3f}", **tfields)
            if self.obs is not None:
                self.obs.observe("rm.queue_seconds", grant.waited,
                                 tenant=self.tenant)
        # Admitted: the grant's stream budget replaces the configured
        # maximum, so the server's parallel-stream budget is split
        # across admitted transfers instead of multiplied by them.
        cfg = self.config
        if grant is not None and grant.streams != cfg.parallelism:
            cfg = dataclasses.replace(cfg, parallelism=grant.streams)
        started = env.now  # queue wait is the scheduler's metric, not NWS's
        try:
            try:
                session = yield from self.client.connect(
                    self.dest_host, loc.hostname, cfg)
            except GridFtpError as exc:
                if span is not None:
                    span.finish(status="error", error="connect")
                return (False, f"connect failed ({exc.reply.code})",
                        FailureClass.CONNECT)
            connected_at = env.now
            if self.obs is not None:
                self.obs.event(
                    "gridftp.connect", prog="gridftp", host=loc.hostname,
                    file=fr.logical_file,
                    **({"ticket": ticket.id} if ticket is not None else {}))
            # Verify-on-open: the catalog entry may be stale (cached or
            # lagging-shard answer). Probe before committing streams;
            # a server that cannot produce the file fails the attempt as
            # STALE so the caller demotes the entry, not the host.
            probe = getattr(server, "exists", None)
            if probe is not None and not probe(fr.logical_file):
                session.close()
                if span is not None:
                    span.finish(status="error", error="stale")
                return (False, f"{loc.hostname}: no such file "
                        "(stale catalog entry)", FailureClass.STALE)
            transfer = env.process(session.get(
                fr.logical_file, self.dest_fs, self.dest_host,
                handle=handle, config=cfg, record=cfg.record_series))
            # (5) monitor progress "every few seconds". A failing transfer
            # raises at the any_of yield (AnyOf propagates child failures),
            # so the whole monitoring loop sits inside the try.
            poll = cfg.progress_poll
            last_bytes = 0.0
            try:
                while not transfer.triggered:
                    tick = env.timeout(poll)
                    yield env.any_of([transfer, tick])
                    if transfer.triggered:
                        break
                    done_now = handle.bytes_done()
                    if done_now > 0 \
                            and fr.state is not FileState.TRANSFERRING:
                        fr.state = FileState.TRANSFERRING
                    fr.bytes_done = done_now
                    fr.size = max(fr.size, handle.total)
                    rate = (done_now - last_bytes) / poll
                    last_bytes = done_now
                    if cfg.progress_poll_max is not None:
                        # Fleet mode: a healthy transfer earns longer
                        # gaps between samples; a stalling one drops
                        # back to the base cadence for the reliability
                        # plug-in's benefit.
                        if rate > 0.0:
                            poll = min(poll * 2.0, cfg.progress_poll_max)
                        else:
                            poll = cfg.progress_poll
                    if policy is not None and policy.observe(
                            env.now - started, rate):
                        handle.abort(
                            "reliability plug-in: rate below threshold")
                stats = transfer.value
            except GridFtpError as exc:
                fr.bytes_done = handle.bytes_done()
                session.close()
                if span is not None:
                    span.finish(status="error", error=str(exc.reply))
                return False, str(exc.reply), self._classify(exc)
            fr.bytes_done = stats.transferred_bytes
            fr.size = stats.transferred_bytes
            fr.restarts += stats.restarts
            elapsed = max(env.now - started, 1e-9)
            if self.nws is not None and stats.transferred_bytes > 0:
                self.nws.observe(server.host.node, self.dest_host.node,
                                 stats.transferred_bytes / elapsed,
                                 self.client.transport.network.topology.rtt(
                                     server.host.node,
                                     self.dest_host.node) / 2)
            extra = ({"ticket": str(ticket.id)}
                     if ticket is not None else {})
            if self.obs is not None:
                self.obs.count("rm.transfers_total", host=loc.hostname)
                self.obs.count("rm.transfer_bytes_total",
                               stats.transferred_bytes, host=loc.hostname)
                self.obs.count("rm.tenant_bytes_total",
                               stats.transferred_bytes, tenant=self.tenant)
                self.obs.observe("rm.transfer_seconds", elapsed)
                if handle.first_byte_at is not None:
                    ttfb = handle.first_byte_at - connected_at
                    self.obs.observe("rm.ttfb_seconds", ttfb)
                    self.obs.observe("rm.tenant_ttfb_seconds", ttfb,
                                     tenant=self.tenant)
            self._hook("delivered", fr, host=loc.hostname,
                       location=loc.name, bytes=stats.transferred_bytes)
            if self.logger is not None:
                # Milestone: closes the stream stage, so checksum time
                # is blamed on verify rather than on the WAN.
                self.logger.event("rm.verify", prog="request-manager",
                                  file=fr.logical_file, host=loc.hostname,
                                  **extra)
            ok, verr = yield from self._verify_arrival(fr, loc, cfg, stats)
            if not ok:
                # Quarantine + delete happened inside _verify_arrival;
                # the grant release in the finally below stays the one
                # and only release for this attempt.
                if span is not None:
                    span.finish(status="error", error="integrity")
                session.close()
                return False, verr, FailureClass.INTEGRITY
            if self.logger is not None:
                # Terminal event only once the delivered bytes passed
                # (or skipped) verification — an integrity-failed
                # attempt must not leave a "done" lifeline behind.
                self.logger.event("rm.transfer.done",
                                  prog="request-manager",
                                  file=fr.logical_file, host=loc.hostname,
                                  bytes=f"{stats.transferred_bytes:.0f}",
                                  seconds=f"{elapsed:.3f}", **extra)
            if span is not None:
                span.finish(status="ok", bytes=stats.transferred_bytes)
            session.close()
            return True, "", None
        finally:
            if grant is not None:
                self.scheduler.release(grant,
                                       bytes_done=handle.bytes_done())

    def _verify_arrival(self, fr: FileRequest, loc: LocationInfo,
                        cfg: GridFtpConfig, stats):
        """Verify-on-arrival: recompute the delivered file's digest.

        Simulation process returning ``(ok, error_text)``. A no-op when
        verification is disabled or the catalog holds no publish-time
        digest for the file. The checksum scan is cost-modeled at
        ``cfg.checksum_rate`` and runs while the attempt's scheduler
        grant is still held, so verification load stays visible to
        admission control. On a mismatch the source replica is
        quarantined (demoted in future selections), the bad local copy
        is deleted, and the caller's candidate loop / retry rounds
        re-transfer from a different replica.
        """
        if not cfg.verify_checksum:
            return True, ""
        expected = self.catalog.logical_file_digest(fr.collection,
                                                    fr.logical_file)
        if expected is None:
            return True, ""
        scan = stats.transferred_bytes / cfg.checksum_rate
        if scan > 0:
            yield self.env.timeout(scan)
        fr.verify_seconds += scan
        delivered = self.dest_fs.stat(fr.logical_file)
        actual = file_digest(delivered)
        if actual == expected:
            fr.verified = True
            if self.obs is not None:
                self.obs.count("rm.verifies_total", outcome="ok")
                self.obs.observe("rm.verify_seconds", scan)
                self.obs.observe("rm.tenant_verify_seconds", scan,
                                 tenant=self.tenant)
            self._hook("verified", fr, host=loc.hostname,
                       location=loc.name, seconds=scan,
                       bytes=stats.transferred_bytes)
            return True, ""
        fr.integrity_failures += 1
        fr.verified = False
        self.quarantined[(fr.collection, fr.logical_file,
                          loc.name)] = self.env.now
        if self.dest_fs.exists(fr.logical_file):
            self.dest_fs.delete(fr.logical_file)
        self._say(f"{fr.logical_file}: digest mismatch from "
                  f"{loc.hostname} — replica quarantined")
        if self.logger is not None:
            self.logger.event("rm.integrity.mismatch",
                              prog="request-manager",
                              file=fr.logical_file, host=loc.hostname,
                              location=loc.name, expected=expected,
                              actual=actual)
        if self.obs is not None:
            self.obs.count("rm.verifies_total", outcome="mismatch")
            self.obs.count("rm.integrity_failures_total",
                           host=loc.hostname)
        self._hook("integrity_failed", fr, host=loc.hostname,
                   location=loc.name)
        return False, f"digest mismatch from {loc.hostname}"

    def _cancel(self, ticket: RequestTicket, fr: FileRequest) -> None:
        if fr.state in _TERMINAL:
            return
        fr.state = FileState.CANCELLED
        fr.finished_at = self.env.now
        self._say(f"{fr.logical_file}: cancelled")
        if self.obs is not None:
            self.obs.event("rm.cancelled", prog="request-manager",
                           ticket=ticket.id, file=fr.logical_file)

    def _fail(self, ticket: RequestTicket, fr: FileRequest, reason: str,
              failure_class: Optional[FailureClass] = None) -> None:
        if fr.state in _TERMINAL:
            return
        fr.state = FileState.FAILED
        fr.error = reason
        fr.failure_class = failure_class
        fr.finished_at = self.env.now
        label = failure_class.value if failure_class is not None else "?"
        self._say(f"{fr.logical_file}: FAILED [{label}] ({reason})")
        if self.logger is not None:
            self.logger.event("rm.failure", prog="request-manager",
                              file=fr.logical_file, cls=label,
                              ticket=str(ticket.id), reason=reason)
        if self.obs is not None:
            self.obs.count("rm.failures_total", cls=label)
        self._hook("failed", fr, reason=reason,
                   cls=label)


def mbps_str(bandwidth: float) -> str:
    """bytes/s → short Mb/s label for monitor messages."""
    return f"{bandwidth * 8 / 1e6:.0f}Mb/s"
