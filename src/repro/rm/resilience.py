"""Fault-tolerance primitives for the request manager pipeline.

The paper's Figure 8 run survived a SCinet power failure, DNS problems,
and backbone faults because GridFTP restart markers and the §7
reliability plug-in recovered the *data plane*. This module supplies the
matching control-plane machinery the EU DataGrid experience report calls
out as what separates a demo from a production data grid:

- :class:`RetryPolicy` — capped exponential backoff between whole-file
  retry rounds, with jitter drawn from a named simulation RNG stream so
  chaos runs stay reproducible per seed;
- :class:`CircuitBreaker` / :class:`BreakerBoard` — per-host endpoint
  blacklisting shared across a ticket's file threads, so one dead server
  is not re-probed by every file of a multi-file request;
- :class:`FailureClass` — the failure-classification taxonomy recorded
  on tickets and emitted as NetLogger events;
- :class:`ResiliencePolicy` — the bundle of knobs (retry, breaker,
  default deadlines) a :class:`~repro.rm.manager.RequestManager` threads
  through its pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class FailureClass(enum.Enum):
    """Why a file request failed (stage of the pipeline that gave up)."""

    LOOKUP = "lookup"        # replica catalog / MDS query failed
    CONNECT = "connect"      # control connection could not be established
    TRANSFER = "transfer"    # data movement aborted or stalled out
    STAGING = "staging"      # HRM / tape staging failed
    DEADLINE = "deadline"    # per-file or per-ticket deadline exceeded
    INTEGRITY = "integrity"  # delivered digest mismatched the catalog
    STALE = "stale"          # catalog entry outlived the replica (verify-on-open)


@dataclass
class RetryPolicy:
    """Capped exponential backoff between retry rounds.

    Attributes
    ----------
    max_rounds:
        Total passes over the candidate list (1 = no retry, today's
        single best-first sweep).
    base_delay:
        Backoff before the second round, seconds.
    multiplier:
        Growth factor per additional round.
    max_delay:
        Backoff ceiling, seconds.
    jitter:
        Fractional random spread: the delay is scaled by a factor
        uniform in ``[1 - jitter, 1 + jitter]``. Draws come from the RNG
        the caller passes (a named sim stream), keeping runs
        deterministic per seed.
    """

    max_rounds: int = 2
    base_delay: float = 5.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before retry ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        d = min(self.base_delay * self.multiplier ** (attempt - 1),
                self.max_delay)
        if rng is not None and self.jitter > 0 and d > 0:
            d *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return d


class BreakerState(enum.Enum):
    """Circuit breaker lifecycle."""

    CLOSED = "closed"          # normal operation
    OPEN = "open"              # endpoint blacklisted, attempts skipped
    HALF_OPEN = "half-open"    # one probe allowed after the cooldown


class CircuitBreaker:
    """Endpoint blacklisting for one host.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` returns False so callers skip the host without
    paying a connect timeout. After ``reset_timeout`` seconds one probe
    is let through (half-open); its outcome re-closes or re-opens the
    circuit.
    """

    def __init__(self, host: str, failure_threshold: int = 3,
                 reset_timeout: float = 120.0, obs=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.host = host
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.obs = obs          # optional repro.obs.Observability bundle
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0          # times the circuit opened
        self.skips = 0          # attempts shed while open

    def allow(self, now: float) -> bool:
        """True if an attempt against the host may proceed at ``now``."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                if self.obs is not None:
                    self.obs.event("rm.breaker.half_open",
                                   prog="request-manager", host=self.host)
                return True
            self._record_skip()
            return False
        # HALF_OPEN: one probe is already in flight; shed the rest.
        self._record_skip()
        return False

    def _record_skip(self) -> None:
        self.skips += 1
        if self.obs is not None:
            self.obs.count("rm.breaker_skips_total", host=self.host)

    def record_failure(self, now: float) -> None:
        """Feed one failed attempt; may open the circuit."""
        self.failures += 1
        if (self.state is BreakerState.HALF_OPEN
                or self.failures >= self.failure_threshold):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.trips += 1
            self.failures = 0
            if self.obs is not None:
                self.obs.event("rm.breaker.open", prog="request-manager",
                               host=self.host, trips=self.trips)
                self.obs.count("rm.breaker_trips_total", host=self.host)

    def record_success(self) -> None:
        """A successful attempt closes the circuit and clears history."""
        was_open = self.state is not BreakerState.CLOSED
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at = None
        if was_open and self.obs is not None:
            self.obs.event("rm.breaker.close", prog="request-manager",
                           host=self.host)

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.host!r}, {self.state.value}, "
                f"trips={self.trips})")


class BreakerBoard:
    """Per-ticket registry of per-host breakers.

    All file threads of one :class:`~repro.rm.request.RequestTicket`
    share the board, so the first thread to find a host dead spares the
    others the probe.
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 120.0, obs=None):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.obs = obs
        self._breakers: Dict[str, CircuitBreaker] = {}

    def for_host(self, host: str) -> CircuitBreaker:
        """The (shared) breaker guarding ``host``."""
        breaker = self._breakers.get(host)
        if breaker is None:
            breaker = CircuitBreaker(host, self.failure_threshold,
                                     self.reset_timeout, obs=self.obs)
            self._breakers[host] = breaker
        return breaker

    def snapshot(self) -> Dict[str, str]:
        """host → breaker state (for monitors and logs)."""
        return {h: b.state.value for h, b in sorted(self._breakers.items())}

    @property
    def total_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())

    @property
    def total_skips(self) -> int:
        return sum(b.skips for b in self._breakers.values())

    def __repr__(self) -> str:
        return f"BreakerBoard({self.snapshot()})"


@dataclass
class ResiliencePolicy:
    """The RM's fault-tolerance configuration.

    Attributes
    ----------
    retry:
        Whole-file retry rounds with backoff (see :class:`RetryPolicy`).
    breaker_failure_threshold, breaker_reset_timeout:
        Parameters for each ticket's :class:`BreakerBoard`.
    file_deadline:
        Default per-file budget, seconds from the file thread start;
        None disables.
    ticket_deadline:
        Default whole-ticket budget, seconds from submit; None disables.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 120.0
    file_deadline: Optional[float] = None
    ticket_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_reset_timeout <= 0:
            raise ValueError("breaker_reset_timeout must be positive")
        for name in ("file_deadline", "ticket_deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")

    def board(self, obs=None) -> BreakerBoard:
        """A fresh per-ticket breaker board (optionally instrumented)."""
        return BreakerBoard(self.breaker_failure_threshold,
                            self.breaker_reset_timeout, obs=obs)
