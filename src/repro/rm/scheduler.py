"""Multi-tenant transfer scheduling: admission control + fair queueing.

The ESG-I prototype's request manager spawns one worker per file with no
admission control, so a large portal workload stampedes every GridFTP
server at once. The ESG follow-on had to serve thousands of portal
users from the same request-manager architecture, and continental-scale
replication campaigns get their sustained throughput from *disciplined
scheduling* of concurrent transfers, not unbounded fan-out. This module
is that discipline:

- **Admission control** — per-server and per-link concurrency caps with
  *bounded* wait queues. A full queue rejects immediately
  (:class:`QueueFull`) instead of queueing silently, so backpressure is
  visible to the caller (the RM treats it like any other transient
  candidate failure and backs off).
- **Fair queueing** — a deficit-round-robin (DRR) variant across flows
  (one flow per ticket/user): each flow's deficit grows by ``quantum``
  bytes per scheduling visit and a flow's head request is granted once
  the deficit covers its size. Small interactive requests therefore
  overtake bulk replication without starving it.
- **Priority classes** — each request carries an integer priority
  (lower = more interactive; the RM passes the ticket's file count, so
  one-file interactive tickets outrank bulk replication). DRR runs
  within the best eligible class only.
- **Priority aging** — a head-of-queue request bypassed while it was
  *eligible* (its caps had room) ages by one per bypass; once its age
  reaches ``aging_rounds`` it is granted ahead of both priority and
  DRR order (oldest first). This yields a hard starvation bound,
  checked by the property suite: a granted request's bypass count never
  exceeds ``aging_rounds + (older waiters at enqueue time)``.
- **Stream budgeting** — instead of every transfer claiming the full
  configured TCP parallelism, a per-server ``stream_budget`` is split
  across the transfers admitted to that server at grant time.

Everything is deterministic for a fixed seed: flows are kept in
insertion-ordered dicts/lists, ties break on a global admission
sequence number, and no ``hash()``/set iteration is involved. With
``audit=True`` the scheduler records every transition so tests can
replay and verify the invariants at every simulated instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.core import Environment
from repro.sim.events import Event


class QueueFull(Exception):
    """Admission rejected: the server's wait queue is at capacity.

    Carries the server and observed depth so callers can log a useful
    backpressure signal before retrying elsewhere / later.
    """

    def __init__(self, server: str, depth: int):
        super().__init__(f"{server}: admission queue full ({depth} waiting)")
        self.server = server
        self.depth = depth


@dataclass
class SchedulerConfig:
    """Tuning knobs for :class:`TransferScheduler`.

    Attributes
    ----------
    per_server_cap:
        Concurrent admitted transfers per GridFTP server.
    per_link_cap:
        Concurrent admitted transfers per link key (the RM passes the
        destination site, capping fan-in to one user's downlink).
        ``None`` disables link caps.
    max_queue_depth:
        Waiting requests a server will hold before admission is
        rejected with :class:`QueueFull` (bounded queues, not silent
        buildup).
    quantum:
        DRR deficit added per scheduling visit, in bytes. Requests no
        larger than the quantum are admitted on their flow's first
        visit; bulk requests wait for their deficit to accumulate.
    aging_rounds:
        Eligible bypasses a head-of-flow request tolerates before it is
        force-granted ahead of DRR order (the starvation bound).
    stream_budget:
        Total parallel TCP streams to split across a server's admitted
        transfers. ``None`` leaves each transfer's requested
        parallelism untouched.
    """

    per_server_cap: int = 4
    per_link_cap: Optional[int] = None
    max_queue_depth: int = 128
    quantum: float = 8 * 2**20
    aging_rounds: int = 4
    stream_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.per_server_cap < 1:
            raise ValueError("per_server_cap must be >= 1")
        if self.per_link_cap is not None and self.per_link_cap < 1:
            raise ValueError("per_link_cap must be >= 1 when set")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.aging_rounds < 0:
            raise ValueError("aging_rounds must be >= 0")
        if self.stream_budget is not None and self.stream_budget < 1:
            raise ValueError("stream_budget must be >= 1 when set")


class TransferGrant:
    """An admitted transfer's hold on scheduler capacity.

    Returned by :meth:`TransferScheduler.acquire`; must be passed back
    to :meth:`TransferScheduler.release` exactly once.
    """

    __slots__ = ("server", "flow", "link", "size", "streams", "seq",
                 "priority", "enqueued_at", "granted_at", "bypasses",
                 "backlog", "released")

    def __init__(self, slot: "_Slot", streams: int, granted_at: float):
        self.server = slot.server
        self.flow = slot.flow
        self.link = slot.link
        self.size = slot.size
        self.streams = streams
        self.priority = slot.priority
        self.seq = slot.seq
        self.enqueued_at = slot.enqueued_at
        self.granted_at = granted_at
        self.bypasses = slot.age
        self.backlog = slot.backlog
        self.released = False

    @property
    def waited(self) -> float:
        """Seconds spent queued before admission."""
        return self.granted_at - self.enqueued_at

    def __repr__(self) -> str:
        return (f"TransferGrant(#{self.seq} {self.flow}@{self.server}, "
                f"{self.streams} streams, waited {self.waited:.2f}s)")


class _Slot:
    """One waiting admission request."""

    __slots__ = ("seq", "flow", "server", "link", "size", "streams",
                 "priority", "event", "enqueued_at", "age", "backlog")

    def __init__(self, seq: int, flow: str, server: str,
                 link: Optional[str], size: float, streams: int,
                 priority: int, event: Event, enqueued_at: float,
                 backlog: int):
        self.seq = seq
        self.flow = flow
        self.server = server
        self.link = link
        self.size = size
        self.streams = streams
        self.priority = priority
        self.event = event
        self.enqueued_at = enqueued_at
        self.age = 0            # eligible bypasses suffered at head
        self.backlog = backlog  # older waiters on this server at enqueue


class _Flow:
    """Per-ticket FIFO of waiting slots plus its DRR deficit."""

    __slots__ = ("key", "deficit", "slots")

    def __init__(self, key: str):
        self.key = key
        self.deficit = 0.0
        self.slots: List[_Slot] = []


class _ServerState:
    """Admission bookkeeping for one GridFTP server."""

    __slots__ = ("name", "flows", "order", "rr", "active")

    def __init__(self, name: str):
        self.name = name
        self.flows: Dict[str, _Flow] = {}
        self.order: List[str] = []   # flow keys, first-arrival order
        self.rr = 0                  # DRR pointer into ``order``
        self.active = 0

    @property
    def waiting(self) -> int:
        return sum(len(f.slots) for f in self.flows.values())


class TransferScheduler:
    """Shared admission-control + fair-queueing layer for transfers.

    Sits between :class:`~repro.rm.manager.RequestManager` workers and
    the GridFTP session layer: workers ``acquire`` a slot before
    connecting and ``release`` it when the attempt ends. One scheduler
    instance is shared by every RM in a testbed — that is what makes it
    multi-tenant.

    Parameters
    ----------
    env:
        Simulation environment.
    config:
        :class:`SchedulerConfig`; defaults apply when omitted.
    obs:
        Optional :class:`~repro.obs.Observability` bundle. Emits
        ``rm.sched.queue_depth`` / ``rm.sched.active`` gauges,
        ``rm.sched.wait_seconds`` histograms, and per-ticket
        ``rm.sched.ticket_bytes_total`` goodput counters.
    audit:
        Record every transition in :attr:`audit_log` as
        ``(time, op, server, flow, seq, active, waiting, link_active)``
        tuples — the property suite's ground truth.
    """

    def __init__(self, env: Environment,
                 config: Optional[SchedulerConfig] = None,
                 obs=None, audit: bool = False):
        self.env = env
        self.config = config or SchedulerConfig()
        self.obs = obs
        self._servers: Dict[str, _ServerState] = {}
        self._link_active: Dict[str, int] = {}
        self._seq = 0
        # instrumentation
        self.admitted = 0       # acquire() calls that were queued/granted
        self.rejected = 0       # acquire() calls bounced with QueueFull
        self.granted = 0
        self.withdrawn = 0      # slots abandoned while queued (aborts)
        self.ticket_bytes: Dict[str, float] = {}
        self.total_bytes = 0.0
        self.audit_log: Optional[List[Tuple]] = [] if audit else None

    # -- public API -------------------------------------------------------
    def acquire(self, server: str, flow: str, size: float,
                link: Optional[str] = None, streams: int = 1,
                priority: int = 0, abort: Optional[Event] = None):
        """Simulation process: wait for an admission slot on ``server``.

        Parameters
        ----------
        server:
            Server key (GridFTP hostname).
        flow:
            Fair-queueing flow key — the ticket (or user) this request
            belongs to.
        size:
            Bytes the transfer intends to move (drives DRR accounting;
            0 is fine for unknown sizes and schedules first).
        link:
            Optional link key also capped by ``per_link_cap`` (the RM
            passes the destination site).
        streams:
            Parallel TCP streams the caller would like; the grant's
            ``streams`` is this value, clipped by the stream budget.
        priority:
            Scheduling class, lower = more urgent (interactive). DRR
            runs among the best eligible class; aging still rescues
            bypassed lower classes (the starvation bound is priority-
            independent).
        abort:
            Optional event; if it fires while queued the request is
            withdrawn and ``None`` is returned instead of a grant.

        Raises
        ------
        QueueFull
            When the server's wait queue is at ``max_queue_depth``.
        """
        ss = self._servers.get(server)
        if ss is None:
            ss = self._servers[server] = _ServerState(server)
        if ss.waiting >= self.config.max_queue_depth:
            self.rejected += 1
            self._count("rm.sched.rejected_total", server=server)
            self._audit("reject", ss, flow, -1)
            raise QueueFull(server, ss.waiting)
        self._seq += 1
        slot = _Slot(self._seq, flow, server, link, max(0.0, size),
                     max(1, streams), priority, Event(self.env),
                     self.env.now, backlog=ss.waiting)
        fl = ss.flows.get(flow)
        if fl is None:
            fl = ss.flows[flow] = _Flow(flow)
            ss.order.append(flow)
        fl.slots.append(slot)
        self.admitted += 1
        self._count("rm.sched.enqueued_total", server=server)
        self._gauges(ss)
        self._audit("enqueue", ss, flow, slot.seq)
        self._dispatch(ss)
        if abort is None:
            grant = yield slot.event
            return grant
        yield self.env.any_of([slot.event, abort])
        if slot.event.triggered:
            return slot.event.value
        self._withdraw(ss, slot)
        return None

    def release(self, grant: TransferGrant, bytes_done: float = 0.0) -> None:
        """Return a grant's capacity; feeds per-ticket goodput counters."""
        if grant.released:
            return
        grant.released = True
        ss = self._servers[grant.server]
        ss.active -= 1
        if grant.link is not None:
            self._link_active[grant.link] -= 1
        moved = max(0.0, bytes_done)
        self.ticket_bytes[grant.flow] = \
            self.ticket_bytes.get(grant.flow, 0.0) + moved
        self.total_bytes += moved
        if moved > 0:
            self._count("rm.sched.ticket_bytes_total", moved,
                        ticket=grant.flow)
        self._gauges(ss)
        self._audit("release", ss, grant.flow, grant.seq)
        # The freed capacity may unblock this server — and, when link
        # caps are on, waiters on *other* servers sharing the link.
        self._dispatch(ss)
        if grant.link is not None and self.config.per_link_cap is not None:
            for other in self._servers.values():
                if other is not ss:
                    self._dispatch(other)

    def queue_depth(self, server: str) -> int:
        """Waiting requests for one server (0 for unknown servers)."""
        ss = self._servers.get(server)
        return ss.waiting if ss is not None else 0

    def active_count(self, server: str) -> int:
        """Admitted (in-flight) transfers on one server."""
        ss = self._servers.get(server)
        return ss.active if ss is not None else 0

    def flow_bytes(self, flows: Iterable[str]) -> float:
        """Total bytes the scheduler accounted to the given flow keys.

        Reconciliation cross-check: a campaign's delivered bytes must
        not exceed what its admission grants actually moved.
        """
        return sum(self.ticket_bytes.get(flow, 0.0) for flow in flows)

    def stats(self) -> Dict[str, object]:
        """Aggregate instrumentation snapshot."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "granted": self.granted,
            "withdrawn": self.withdrawn,
            "total_bytes": self.total_bytes,
            "ticket_bytes": dict(self.ticket_bytes),
            "waiting": {name: ss.waiting
                        for name, ss in self._servers.items() if ss.waiting},
            "active": {name: ss.active
                       for name, ss in self._servers.items() if ss.active},
        }

    # -- scheduling core --------------------------------------------------
    def _dispatch(self, ss: _ServerState) -> None:
        """Grant as many waiting slots as the caps allow right now."""
        while ss.order and ss.active < self.config.per_server_cap:
            picked, eligible = self._pick(ss)
            if picked is None:
                return  # every head is blocked on its link cap
            # Bypassed-but-eligible heads age; that is the starvation
            # clock the aged fast-path below consumes.
            for head in eligible:
                if head is not picked:
                    head.age += 1
            self._grant(ss, picked)

    def _pick(self, ss: _ServerState
              ) -> Tuple[Optional[_Slot], List[_Slot]]:
        """Choose the next head slot to admit.

        Returns ``(winner, eligible_heads)`` where ``eligible_heads``
        are the flow heads whose caps had room at this instant (the
        winner included); ``(None, [])`` when nothing is eligible.
        """
        cap = self.config.per_link_cap
        eligible: List[_Slot] = []
        for key in ss.order:
            head = ss.flows[key].slots[0]
            if (cap is not None and head.link is not None
                    and self._link_active.get(head.link, 0) >= cap):
                continue
            eligible.append(head)
        if not eligible:
            return None, []
        # Aged fast-path: the oldest admitted-first among starved heads.
        aged = [h for h in eligible if h.age >= self.config.aging_rounds]
        if aged:
            return min(aged, key=lambda h: h.seq), eligible
        # DRR within the most urgent eligible class; less urgent heads
        # still age (they were bypassed while their caps had room).
        best = min(h.priority for h in eligible)
        contenders = [h for h in eligible if h.priority == best]
        # DRR: credit one quantum per visited flow, admit the first head
        # its deficit covers. Deficits persist across dispatches, so a
        # bulk head is admitted after ~size/quantum visits.
        quantum = self.config.quantum
        blocked = {h.seq for h in contenders}
        max_size = max(h.size for h in contenders)
        cycles = int(max_size / quantum) + 2
        for _ in range(cycles * len(ss.order)):
            key = ss.order[self.rr_index(ss)]
            fl = ss.flows[key]
            head = fl.slots[0]
            ss.rr += 1
            if head.seq not in blocked:
                continue  # link-capped / out-of-class flows earn no deficit
            fl.deficit += quantum
            if fl.deficit >= head.size:
                fl.deficit -= head.size
                return head, eligible
        # Unreachable when ``eligible`` is non-empty: each full cycle
        # adds a quantum to every eligible flow's deficit.
        return None, []  # pragma: no cover - defensive

    @staticmethod
    def rr_index(ss: _ServerState) -> int:
        return ss.rr % len(ss.order)

    def _grant(self, ss: _ServerState, slot: _Slot) -> None:
        fl = ss.flows[slot.flow]
        fl.slots.remove(slot)
        if not fl.slots:
            self._drop_flow(ss, slot.flow)
        ss.active += 1
        if slot.link is not None:
            self._link_active[slot.link] = \
                self._link_active.get(slot.link, 0) + 1
        streams = slot.streams
        budget = self.config.stream_budget
        if budget is not None:
            streams = max(1, min(streams, budget // ss.active))
        grant = TransferGrant(slot, streams, self.env.now)
        self.granted += 1
        if self.obs is not None:
            self.obs.observe("rm.sched.wait_seconds", grant.waited,
                             server=ss.name)
            self.obs.count("rm.sched.granted_total", server=ss.name)
        self._gauges(ss)
        self._audit("grant", ss, slot.flow, slot.seq)
        slot.event.succeed(grant)

    def _withdraw(self, ss: _ServerState, slot: _Slot) -> None:
        """Remove an aborted slot from its queue (deadline/cancel)."""
        fl = ss.flows.get(slot.flow)
        if fl is None or slot not in fl.slots:
            return
        fl.slots.remove(slot)
        if not fl.slots:
            self._drop_flow(ss, slot.flow)
        self.withdrawn += 1
        self._count("rm.sched.withdrawn_total", server=ss.name)
        self._gauges(ss)
        self._audit("withdraw", ss, slot.flow, slot.seq)
        # The head it may have been blocking changes nothing capacity-
        # wise, but a shorter queue can matter to callers polling depth.

    def _drop_flow(self, ss: _ServerState, key: str) -> None:
        idx = ss.order.index(key)
        ss.order.pop(idx)
        del ss.flows[key]
        # Keep the DRR pointer aimed at the same successor flow.
        if ss.order:
            pos = ss.rr % (len(ss.order) + 1)
            if idx < pos:
                pos -= 1
            ss.rr = pos % len(ss.order)
        else:
            ss.rr = 0

    # -- instrumentation --------------------------------------------------
    def _count(self, name: str, amount: float = 1.0, **labels) -> None:
        if self.obs is not None:
            self.obs.count(name, amount, **labels)

    def _gauges(self, ss: _ServerState) -> None:
        if self.obs is not None:
            self.obs.gauge("rm.sched.queue_depth", ss.waiting,
                           server=ss.name)
            self.obs.gauge("rm.sched.active", ss.active, server=ss.name)

    def _audit(self, op: str, ss: _ServerState, flow: str,
               seq: int) -> None:
        if self.audit_log is not None:
            links = tuple(sorted(self._link_active.items()))
            self.audit_log.append((self.env.now, op, ss.name, flow, seq,
                                   ss.active, ss.waiting, links))
