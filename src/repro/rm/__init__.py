"""The LBNL Request Manager (RM) and its transfer monitor.

§4: "The Request Manager (RM) is a component designed to initiate,
control and monitor multiple file transfers on behalf of multiple users
concurrently. ... For each file of each request, the multi-threaded RM
opens a separate program thread. Each thread performs ... the following
tasks: (1) it finds all replicas for the file from the Replica Catalog
using an LDAP protocol; (2) for each replica it consults the NWS ...;
(3) it selects the 'best' replica based on the NWS information; (4) it
initiates a GridFTP 'get' request to transfer the file; and (5) it
monitors the progress of each file transfer by checking the file size of
the file being transferred at the local site every few seconds."

- :class:`RequestManager` — that per-file pipeline, one simulated
  process ("thread") per file, with HRM staging for MSS-resident data
  and the §7 reliability plug-in (switch replicas on low rate).
- :class:`TransferMonitor` — the Figure 4 display: per-file progress,
  chosen replica locations, and a message log.
- :class:`CorbaChannel` — the CORBA-ish RPC shim CDAT uses to call the
  RM ("The CDAT system calls the RM via a CORBA protocol that permits
  the specification of multiple logical files").
- :mod:`repro.rm.resilience` — retry/backoff, circuit breakers,
  deadlines, and the failure-classification taxonomy that harden the
  pipeline against control-plane faults.
"""

from repro.rm.rpc import CorbaChannel
from repro.rm.request import FileRequest, FileState, RequestTicket
from repro.rm.resilience import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    FailureClass,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.rm.manager import RequestManager
from repro.rm.monitor import TransferMonitor

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "CorbaChannel",
    "FailureClass",
    "FileRequest",
    "FileState",
    "RequestManager",
    "RequestTicket",
    "ResiliencePolicy",
    "RetryPolicy",
    "TransferMonitor",
]
