"""The transfer-monitoring display (Figure 4).

"a transfer-monitoring tool was developed to show the status of the
request transfer dynamically. Each file is monitored every few seconds
as to its current size. This information as well as the total bytes
transferred for all file requests are displayed on the client's screen."

Three panes, as in the figure: per-file progress bars on top, chosen
replica locations in the middle, and initiation/selection messages at
the bottom. :meth:`render` produces the text snapshot; :meth:`run`
samples periodically and keeps history for tests/benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.rm.manager import RequestManager
from repro.rm.request import FileState, RequestTicket
from repro.sim.core import Environment


class TransferMonitor:
    """Periodic snapshots of a ticket's progress.

    Parameters
    ----------
    env, manager, ticket, period:
        What to watch and how often.
    events:
        Optional NetLogger (or any iterable of
        :class:`~repro.netlogger.log.LogRecord`). When hooked, the
        Messages pane shows the ticket's latest NetLogger lifeline
        events instead of the manager's free-text messages. Defaults to
        ``obs.logger`` when an ``obs`` bundle is given.
    obs:
        Optional :class:`~repro.obs.Observability`; each :meth:`run`
        sample also updates the ``monitor.sample`` gauge (bytes done,
        labelled by ticket).
    """

    def __init__(self, env: Environment, manager: RequestManager,
                 ticket: RequestTicket, period: float = 3.0,
                 events=None, obs=None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.manager = manager
        self.ticket = ticket
        self.period = period
        self.obs = obs
        if events is None and obs is not None:
            events = obs.logger
        self.events = events
        self.snapshots: List[Tuple[float, float]] = []  # (t, total bytes)

    def _ticket_events(self, limit: int) -> List:
        """The newest ULM records carrying this ticket's id."""
        if self.events is None:
            return []
        tid = str(self.ticket.id)
        out = [r for r in self.events if r.fields.get("ticket") == tid]
        return out[-limit:]

    # -- rendering --------------------------------------------------------
    def render(self, bar_width: int = 30, max_messages: int = 12) -> str:
        """A Figure 4-style text snapshot."""
        t = self.env.now
        lines = [f"=== Request #{self.ticket.id} at t={t:.1f}s ==="]
        lines.append("--- File Transfer Progress ---")
        for fr in self.ticket.files:
            pct = 100.0 * fr.fraction
            lines.append(
                f"{fr.logical_file:<42} {fr.progress_bar(bar_width)} "
                f"{pct:5.1f}%  {fr.bytes_done / 2**20:8.1f}/"
                f"{fr.size / 2**20:8.1f} MiB  [{fr.state.value}]")
        total = self.ticket.bytes_done
        lines.append(f"TOTAL transferred: {total / 2**20:.1f} MiB")
        lines.append("--- Replica Selections ---")
        for fr in self.ticket.files:
            if fr.chosen_location is not None:
                lines.append(f"{fr.logical_file:<42} <- "
                             f"{fr.chosen_location}"
                             + (f" (after {fr.replica_switches} switch"
                                f"{'es' if fr.replica_switches != 1 else ''})"
                                if fr.replica_switches else ""))
        lines.append("--- Messages ---")
        records = self._ticket_events(max_messages)
        if records:
            for r in records:
                detail = " ".join(
                    f"{k}={v}" for k, v in sorted(r.fields.items())
                    if k != "ticket")
                lines.append(f"[{r.t:9.1f}s] {r.event} {detail}".rstrip())
        else:
            for mt, text in self.manager.messages[-max_messages:]:
                lines.append(f"[{mt:9.1f}s] {text}")
        return "\n".join(lines)

    # -- sampling ------------------------------------------------------------
    def run(self):
        """Simulation process: sample until the ticket completes."""
        while not self.ticket.done.triggered:
            self._sample()
            tick = self.env.timeout(self.period)
            yield self.env.any_of([self.ticket.done, tick])
        self._sample()

    def _sample(self) -> None:
        done = self.ticket.bytes_done
        self.snapshots.append((self.env.now, done))
        if self.obs is not None:
            self.obs.gauge("monitor.sample", done,
                           ticket=str(self.ticket.id))

    def aggregate_rate_series(self) -> List[Tuple[float, float]]:
        """(t, bytes/s) estimated from consecutive snapshots."""
        out = []
        for (t0, b0), (t1, b1) in zip(self.snapshots, self.snapshots[1:]):
            if t1 > t0:
                out.append((t1, (b1 - b0) / (t1 - t0)))
        return out
