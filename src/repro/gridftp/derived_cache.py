"""Per-server LRU cache for ERET derived products.

Interactive portal traffic is repetitive: the same subset / extract /
time-mean of the same file is requested again and again (every reload
of a plot). The derived product is tiny but re-computing it costs a
stage pin, a decode, and server CPU. This cache remembers finished
products keyed by ``(source content digest, operation, canonical
args)`` — the digest key means a corrupted or republished replica can
never serve a stale product — and answers repeats with zero bytes
decoded.

Byte-budgeted LRU: entries are evicted least-recently-used-first once
the budget is exceeded; a product larger than the whole budget is
simply not admitted. Hits, misses, and evictions are counted on the
instance, exported as metrics, and logged as ULM events so lifelines
show where a plot came from.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class DerivedProduct:
    """One cached ERET result."""

    size: float
    content: Optional[bytes]


class DerivedProductCache:
    """Byte-budgeted LRU of derived products for one GridFTP server."""

    def __init__(self, capacity_bytes: float, hostname: str = "",
                 obs=None):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.hostname = hostname
        self.obs = obs          # optional repro.obs.Observability bundle
        self._entries: "OrderedDict[str, DerivedProduct]" = OrderedDict()
        self.bytes_used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def make_key(digest: str, op: str, args: dict) -> str:
        """Canonical cache key: source digest + op + sorted JSON args."""
        return f"{digest}|{op}|{json.dumps(args, sort_keys=True, default=list)}"

    def get(self, key: str, file: str = "",
            op: str = "") -> Optional[DerivedProduct]:
        """The cached product for ``key`` (refreshes recency), or None."""
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            if self.obs is not None:
                self.obs.count("gridftp.derived_cache_misses_total",
                               host=self.hostname)
                self.obs.event("gridftp.derived.miss", prog="gridftp",
                               host=self.hostname, file=file, op=op)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self.obs is not None:
            self.obs.count("gridftp.derived_cache_hits_total",
                           host=self.hostname)
            self.obs.event("gridftp.derived.hit", prog="gridftp",
                           host=self.hostname, file=file, op=op)
        return hit

    def put(self, key: str, size: float, content: Optional[bytes],
            file: str = "", op: str = "") -> None:
        """Admit a product, evicting LRU entries to fit the budget."""
        if size > self.capacity_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= old.size
        while self._entries and self.bytes_used + size > self.capacity_bytes:
            victim_key, victim = self._entries.popitem(last=False)
            self.bytes_used -= victim.size
            self.evictions += 1
            if self.obs is not None:
                self.obs.count("gridftp.derived_cache_evictions_total",
                               host=self.hostname)
                self.obs.event("gridftp.derived.evict", prog="gridftp",
                               host=self.hostname, key=victim_key)
        self._entries[key] = DerivedProduct(float(size), content)
        self.bytes_used += float(size)
        if self.obs is not None:
            self.obs.gauge("gridftp.derived_cache_bytes", self.bytes_used,
                           host=self.hostname)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"DerivedProductCache({len(self._entries)} products, "
                f"{self.bytes_used:.0f}/{self.capacity_bytes:.0f}B, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")
