"""GridFTP: secure, parallel, striped, restartable data transfer.

§6.1 of the paper lists the features; each is implemented here over the
simulated transport:

- **GSI support** — sessions mutually authenticate before any command
  (``repro.gsi``); the handshake cost is visible in transfer latency.
- **Third-party control** — a client may initiate a transfer between two
  other servers (:meth:`GridFtpClient.third_party_copy`).
- **Parallel data transfer** — one ``get`` may use N TCP streams
  (:class:`ParallelTransfer`), block-distributing the file.
- **Striped data transfer** — a logical file partitioned over several
  hosts moves via all of them at once (:class:`StripedTransfer`),
  composable with per-host parallelism (the SC'2000 Table 1 config is 8
  stripes × 4 streams).
- **Server-side processing** — ERET plugins transform data before
  transmission; partial-file retrieval is built in.
- **TCP buffer negotiation** — SBUF, with automatic sizing from the
  bandwidth–delay product when not set manually.
- **Reliable, restartable transfers** — stalled/broken streams are
  retried from restart markers; user-written fault-recovery policies
  (e.g. the SC'2000 reliability plug-in that switches replicas when the
  rate drops) hook in via :class:`repro.gridftp.restart.ReliabilityPolicy`.
- **Data channel caching** — post-SC'2000 feature: idle data channels
  (with their warm TCP windows) are reused by subsequent transfers,
  eliminating teardown/re-authentication dips (Figure 8 discussion).
"""

from repro.gridftp.protocol import (
    FtpReply,
    GridFtpConfig,
    GridFtpError,
    TransferStats,
)
from repro.gridftp.channels import DataChannelCache
from repro.gridftp.derived_cache import DerivedProductCache
from repro.gridftp.server import GridFtpServer
from repro.gridftp.client import ClientSession, GridFtpClient, TransferHandle
from repro.gridftp.striped import StripedServer, StripedTransferResult
from repro.gridftp.restart import (
    ReliabilityPolicy,
    RestartLog,
    RestartMarkers,
)

__all__ = [
    "ClientSession",
    "DataChannelCache",
    "DerivedProductCache",
    "FtpReply",
    "GridFtpClient",
    "GridFtpConfig",
    "GridFtpError",
    "GridFtpServer",
    "ReliabilityPolicy",
    "RestartLog",
    "RestartMarkers",
    "StripedServer",
    "StripedTransferResult",
    "TransferHandle",
    "TransferStats",
]
