"""Standard server-side processing (ERET) plug-ins.

§6.1: "Server side processing that allows for the inclusion of user
written code that can process the data prior to transmission or
storage. Partial file retrieval is included by default."

§9 (ESG-II): "distribution of data analysis and visualization
pipelines, so that some data analysis operations (at least extraction
and subsetting, similar to those available with DODS) can be performed
local to the data before it is transferred over the network."

These plug-ins give GridFTP servers exactly that: SDBF-aware
extraction, subsetting, and time reduction executed at the data, so
only the derived product crosses the WAN.

Each standard plug-in returns ``(derived_size, derived_content,
bytes_decoded)`` — the third element is how many source bytes it had
to turn into arrays, which the server charges as decode CPU time.
Chunked SDBF files (``repro.data.ncformat`` version 2) are served by
decoding only the chunks the request touches; flat files decode whole.
User plug-ins may still return plain 2-tuples; the server then charges
a whole-file decode.

A plug-in may also carry a ``stage_prefix(file, args)`` attribute: the
byte prefix of the file that suffices to serve the request (``None``
when the whole file is needed). The server uses it to start tape
cut-through at the request's chunk set instead of waiting for the
entire file to stage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.digest import file_digest
from repro.data.ncformat import FormatError, SdbfReader, decode, encode
from repro.data.variables import DataError, Dataset, Variable
from repro.storage.filesystem import FileObject


class PluginError(Exception):
    """A server-side processing step failed."""


def _require_reader(file: FileObject) -> SdbfReader:
    if file.content is None:
        raise PluginError(f"{file.name}: no content to process "
                          f"(size-only synthetic file)")
    try:
        return SdbfReader(file.content)
    except FormatError as exc:
        raise PluginError(f"{file.name}: not an SDBF file: {exc}") from exc


def _require_dataset(file: FileObject) -> Dataset:
    """Whole-file decode (the flat-SDBF path)."""
    if file.content is None:
        raise PluginError(f"{file.name}: no content to process "
                          f"(size-only synthetic file)")
    try:
        return decode(file.content)
    except Exception as exc:
        raise PluginError(f"{file.name}: not an SDBF file: {exc}") from exc


def _range_indexers(reader: SdbfReader, variable: str, ranges: Dict,
                    op: str) -> Tuple[Tuple[str, ...], List[np.ndarray]]:
    """Per-dim index arrays for coordinate ranges, with clean errors.

    Mirrors :meth:`Dataset.subset` exactly so the chunked fast path
    produces bit-identical derived products.
    """
    try:
        meta = reader.variable_meta(variable)
    except FormatError as exc:
        raise PluginError(f"{op}: {exc}") from exc
    dims = tuple(meta["dims"])
    unknown = set(ranges) - set(dims)
    if unknown:
        raise PluginError(f"{op}: {variable!r} has no dims "
                          f"{sorted(unknown)}")
    indexers: List[np.ndarray] = []
    for dim in dims:
        coord = reader.coord(dim)
        if dim in ranges:
            lo, hi = ranges[dim]
            if lo > hi:
                raise PluginError(f"{op}: empty range for {dim!r}: "
                                  f"{lo} > {hi}")
            mask = (coord >= lo) & (coord <= hi)
            if not mask.any():
                raise PluginError(f"{op}: range {tuple(ranges[dim])} "
                                  f"selects nothing on {dim!r}")
            indexers.append(np.where(mask)[0])
        else:
            indexers.append(np.arange(len(coord)))
    return dims, indexers


def subset_plugin(file: FileObject,
                  args: dict) -> Tuple[float, bytes, float]:
    """Coordinate-range subsetting, DODS-style, at the server.

    ``args``: ``{"variable": name, "<dim>": (lo, hi), ...}``. Returns
    the re-encoded subset. Chunked files decode only the chunks the
    requested ranges touch.
    """
    variable = args.get("variable")
    if not variable:
        raise PluginError("subset: 'variable' argument required")
    ranges = {k: tuple(v) for k, v in args.items() if k != "variable"}
    reader = _require_reader(file)
    if not reader.is_chunked:
        ds = _require_dataset(file)
        try:
            sub = ds.subset(variable, **ranges)
        except DataError as exc:
            raise PluginError(f"subset: {exc}") from exc
        blob = encode(sub)
        return float(len(blob)), blob, float(len(file.content))
    dims, indexers = _range_indexers(reader, variable, ranges, "subset")
    meta = reader.variable_meta(variable)
    bounds = [(int(idx[0]), int(idx[-1])) for idx in indexers]
    slab = reader.read_slab(variable, bounds)
    out = Dataset(f"{reader.name}:{variable}", dict(reader.attrs))
    for dim, idx in zip(dims, indexers):
        out.add_coord(dim, reader.coord(dim)[idx])
    sel = np.ix_(*[idx - lo for idx, (lo, _) in zip(indexers, bounds)])
    out.add_variable(Variable(variable, dims, slab[sel],
                              dict(meta.get("attrs", {}))))
    blob = encode(out)
    return float(len(blob)), blob, float(reader.bytes_decoded)


def extract_variable_plugin(file: FileObject,
                            args: dict) -> Tuple[float, bytes, float]:
    """Ship one variable (with its coordinates), dropping the rest."""
    variable = args.get("variable")
    if not variable:
        raise PluginError("extract: 'variable' argument required")
    reader = _require_reader(file)
    try:
        meta = reader.variable_meta(variable)
    except FormatError:
        raise PluginError(f"extract: no variable {variable!r}") from None
    if not reader.is_chunked:
        ds = _require_dataset(file)
        out = Dataset(f"{ds.name}:{variable}", dict(ds.attrs))
        var = ds[variable]
        for dim in var.dims:
            out.add_coord(dim, ds.coords[dim])
        out.add_variable(Variable(var.name, var.dims, var.data,
                                  dict(var.attrs)))
        blob = encode(out)
        return float(len(blob)), blob, float(len(file.content))
    dims = tuple(meta["dims"])
    data = reader.read_variable(variable)
    out = Dataset(f"{reader.name}:{variable}", dict(reader.attrs))
    for dim in dims:
        out.add_coord(dim, reader.coord(dim))
    out.add_variable(Variable(variable, dims, data,
                              dict(meta.get("attrs", {}))))
    blob = encode(out)
    return float(len(blob)), blob, float(reader.bytes_decoded)


def time_mean_plugin(file: FileObject,
                     args: dict) -> Tuple[float, bytes, float]:
    """Reduce over time at the server: ship a single mean field.

    The strongest data-reduction case: a year of monthly fields becomes
    one field (≈12× smaller), computed where the data lives.
    """
    variable = args.get("variable")
    if not variable:
        raise PluginError("time_mean: 'variable' argument required")
    reader = _require_reader(file)
    try:
        meta = reader.variable_meta(variable)
    except FormatError:
        raise PluginError(f"time_mean: no variable {variable!r}") from None
    dims = tuple(meta["dims"])
    if "time" not in dims:
        raise PluginError(f"time_mean: {variable!r} has no time axis")
    if not reader.is_chunked:
        ds = _require_dataset(file)
        var = ds[variable]
        data = var.data
        attrs = dict(var.attrs)
        ds_name, ds_attrs = ds.name, dict(ds.attrs)
        coords = ds.coords
        decoded = float(len(file.content))
    else:
        data = reader.read_variable(variable)
        attrs = dict(meta.get("attrs", {}))
        ds_name, ds_attrs = reader.name, dict(reader.attrs)
        coords = {dim: reader.coord(dim) for dim in dims if dim != "time"}
        decoded = float(reader.bytes_decoded)
    axis = dims.index("time")
    mean = data.mean(axis=axis)
    out = Dataset(f"{ds_name}:{variable}:tmean", ds_attrs)
    kept_dims = tuple(d for d in dims if d != "time")
    for dim in kept_dims:
        out.add_coord(dim, coords[dim])
    out.add_variable(Variable(variable, kept_dims, mean, attrs))
    blob = encode(out)
    return float(len(blob)), blob, decoded


def checksum_plugin(file: FileObject,
                    args: dict) -> Tuple[float, bytes, float]:
    """Ship a tiny integrity digest instead of the data (ESTO-style).

    Uses :func:`repro.data.digest.file_digest` — the same blake2s
    digest the replica catalog records at publish time and replication
    campaigns verify on arrival — so an ERET checksum is directly
    comparable to both. Costs a whole-file scan, like CKSM.
    """
    blob = file_digest(file).encode()
    return float(len(blob)), blob, float(file.size)


# -- staging planners ----------------------------------------------------------
def _planned_bounds(reader: SdbfReader, variable: str,
                    ranges: Dict) -> Optional[list]:
    dims, indexers = _range_indexers(reader, variable, ranges, "plan")
    return [(int(idx[0]), int(idx[-1])) for idx in indexers]


def _subset_stage_prefix(file: FileObject, args: dict) -> Optional[float]:
    """Byte prefix that covers a subset request (None = whole file)."""
    try:
        reader = SdbfReader(file.content)
        variable = args.get("variable")
        ranges = {k: tuple(v) for k, v in args.items() if k != "variable"}
        bounds = _planned_bounds(reader, variable, ranges)
        return reader.needed_prefix(variable, bounds)
    except Exception:
        return None


def _variable_stage_prefix(file: FileObject,
                           args: dict) -> Optional[float]:
    """Byte prefix covering one whole variable (extract / time_mean)."""
    try:
        reader = SdbfReader(file.content)
        variable = args.get("variable")
        shape = tuple(reader.variable_meta(variable)["shape"])
        bounds = [(0, s - 1) for s in shape]
        return reader.needed_prefix(variable, bounds)
    except Exception:
        return None


subset_plugin.stage_prefix = _subset_stage_prefix
extract_variable_plugin.stage_prefix = _variable_stage_prefix
time_mean_plugin.stage_prefix = _variable_stage_prefix


STANDARD_PLUGINS = {
    "subset": subset_plugin,
    "extract": extract_variable_plugin,
    "time_mean": time_mean_plugin,
    "checksum": checksum_plugin,
}


def install_standard_plugins(server) -> None:
    """Register the standard plug-in set on a GridFTP server."""
    for name, plugin in STANDARD_PLUGINS.items():
        server.register_plugin(name, plugin)
