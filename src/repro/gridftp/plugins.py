"""Standard server-side processing (ERET) plug-ins.

§6.1: "Server side processing that allows for the inclusion of user
written code that can process the data prior to transmission or
storage. Partial file retrieval is included by default."

§9 (ESG-II): "distribution of data analysis and visualization
pipelines, so that some data analysis operations (at least extraction
and subsetting, similar to those available with DODS) can be performed
local to the data before it is transferred over the network."

These plug-ins give GridFTP servers exactly that: SDBF-aware
extraction, subsetting, and time reduction executed at the data, so
only the derived product crosses the WAN.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.ncformat import decode, encode
from repro.data.variables import DataError, Dataset, Variable
from repro.storage.filesystem import FileObject


class PluginError(Exception):
    """A server-side processing step failed."""


def _require_dataset(file: FileObject) -> Dataset:
    if file.content is None:
        raise PluginError(f"{file.name}: no content to process "
                          f"(size-only synthetic file)")
    try:
        return decode(file.content)
    except Exception as exc:
        raise PluginError(f"{file.name}: not an SDBF file: {exc}") from exc


def subset_plugin(file: FileObject, args: dict) -> Tuple[float, bytes]:
    """Coordinate-range subsetting, DODS-style, at the server.

    ``args``: ``{"variable": name, "<dim>": (lo, hi), ...}``. Returns
    the re-encoded subset.
    """
    variable = args.get("variable")
    if not variable:
        raise PluginError("subset: 'variable' argument required")
    ds = _require_dataset(file)
    ranges = {k: tuple(v) for k, v in args.items()
              if k != "variable"}
    try:
        sub = ds.subset(variable, **ranges)
    except DataError as exc:
        raise PluginError(f"subset: {exc}") from exc
    blob = encode(sub)
    return float(len(blob)), blob


def extract_variable_plugin(file: FileObject,
                            args: dict) -> Tuple[float, bytes]:
    """Ship one variable (with its coordinates), dropping the rest."""
    variable = args.get("variable")
    if not variable:
        raise PluginError("extract: 'variable' argument required")
    ds = _require_dataset(file)
    if variable not in ds:
        raise PluginError(f"extract: no variable {variable!r}")
    out = Dataset(f"{ds.name}:{variable}", dict(ds.attrs))
    var = ds[variable]
    for dim in var.dims:
        out.add_coord(dim, ds.coords[dim])
    out.add_variable(Variable(var.name, var.dims, var.data,
                              dict(var.attrs)))
    blob = encode(out)
    return float(len(blob)), blob


def time_mean_plugin(file: FileObject, args: dict) -> Tuple[float, bytes]:
    """Reduce over time at the server: ship a single mean field.

    The strongest data-reduction case: a year of monthly fields becomes
    one field (≈12× smaller), computed where the data lives.
    """
    variable = args.get("variable")
    if not variable:
        raise PluginError("time_mean: 'variable' argument required")
    ds = _require_dataset(file)
    if variable not in ds:
        raise PluginError(f"time_mean: no variable {variable!r}")
    var = ds[variable]
    if "time" not in var.dims:
        raise PluginError(f"time_mean: {variable!r} has no time axis")
    axis = var.dims.index("time")
    mean = var.data.mean(axis=axis)
    out = Dataset(f"{ds.name}:{variable}:tmean", dict(ds.attrs))
    kept_dims = tuple(d for d in var.dims if d != "time")
    for dim in kept_dims:
        out.add_coord(dim, ds.coords[dim])
    out.add_variable(Variable(variable, kept_dims, mean,
                              dict(var.attrs)))
    blob = encode(out)
    return float(len(blob)), blob


def checksum_plugin(file: FileObject, args: dict) -> Tuple[float, bytes]:
    """Ship a tiny integrity digest instead of the data (ESTO-style)."""
    import hashlib
    if file.content is not None:
        digest = hashlib.sha256(file.content).hexdigest()
    else:
        digest = hashlib.sha256(
            f"{file.name}:{file.size}".encode()).hexdigest()
    blob = digest.encode()
    return float(len(blob)), blob


STANDARD_PLUGINS = {
    "subset": subset_plugin,
    "extract": extract_variable_plugin,
    "time_mean": time_mean_plugin,
    "checksum": checksum_plugin,
}


def install_standard_plugins(server) -> None:
    """Register the standard plug-in set on a GridFTP server."""
    for name, plugin in STANDARD_PLUGINS.items():
        server.register_plugin(name, plugin)
