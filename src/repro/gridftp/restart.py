"""Restart bookkeeping and user-written fault-recovery policies.

§7: "A reliability plug-in was written that monitored performance and if
data transfer rates dropped below a certain, user configurable, point,
an alternate replica would be selected." :class:`ReliabilityPolicy` is
that plug-in's decision logic; the request manager consults it while
polling transfer progress and, when it fires, aborts the current GridFTP
get and re-issues it against the next-best replica.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class RestartLog:
    """Restart-marker history for one logical transfer."""

    path: str
    markers: List[Tuple[float, float, str]] = field(default_factory=list)

    def mark(self, t: float, bytes_done: float, reason: str) -> None:
        """Record a restart point."""
        self.markers.append((t, bytes_done, reason))

    @property
    def restarts(self) -> int:
        return len(self.markers)

    def resume_offset(self) -> float:
        """Bytes safely delivered before the last interruption."""
        return self.markers[-1][1] if self.markers else 0.0


@dataclass
class ReliabilityPolicy:
    """User-configurable low-rate detection.

    Attributes
    ----------
    min_rate:
        Bytes/s below which the transfer counts as underperforming.
    grace_period:
        Seconds after transfer start before the policy may fire (lets
        slow start and staging finish).
    consecutive_samples:
        How many consecutive underperforming samples trigger a switch.
    """

    min_rate: float
    grace_period: float = 15.0
    consecutive_samples: int = 3

    def __post_init__(self) -> None:
        if self.min_rate <= 0:
            raise ValueError("min_rate must be positive")
        if self.grace_period < 0 or self.consecutive_samples < 1:
            raise ValueError("bad policy configuration")
        self._low_count = 0

    def observe(self, elapsed: float, rate: float) -> bool:
        """Feed one progress sample; True = switch replicas now."""
        if elapsed < self.grace_period:
            return False
        if rate < self.min_rate:
            self._low_count += 1
        else:
            self._low_count = 0
        if self._low_count >= self.consecutive_samples:
            self._low_count = 0
            return True
        return False

    def reset(self) -> None:
        """Forget accumulated low samples (new attempt started)."""
        self._low_count = 0

    def clone(self) -> "ReliabilityPolicy":
        """A pristine copy of this policy (no accumulated samples).

        Each transfer attempt gets its own instance so concurrent file
        threads never share low-rate counters; ``dataclasses.replace``
        copies every field, so policies grown new attributes clone
        correctly without call-site updates.
        """
        return dataclasses.replace(self)
