"""Restart bookkeeping and user-written fault-recovery policies.

§7: "A reliability plug-in was written that monitored performance and if
data transfer rates dropped below a certain, user configurable, point,
an alternate replica would be selected." :class:`ReliabilityPolicy` is
that plug-in's decision logic; the request manager consults it while
polling transfer progress and, when it fires, aborts the current GridFTP
get and re-issues it against the next-best replica.

:class:`RestartMarkers` models GridFTP's extended-mode restart markers
("111 Range Marker 0-29,40-89"): the set of byte ranges safely written
so far, kept canonical (sorted, disjoint, adjacent ranges coalesced) so
a restarting client resends exactly the complement. The block pump in
:mod:`repro.gridftp.client` records one per transfer.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple


class RestartMarkers:
    """Canonical set of transferred byte ranges for one transfer.

    Ranges are half-open ``[lo, hi)`` floats (the simulator moves
    fractional bytes). The invariant after every mutation: ranges are
    sorted, non-empty, pairwise disjoint, and never merely adjacent —
    touching or overlapping ranges are coalesced into one.
    """

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[Tuple[float, float]] = ()):
        self._ranges: List[Tuple[float, float]] = []
        for lo, hi in ranges:
            self.add(lo, hi)

    # -- mutation ---------------------------------------------------------
    def add(self, lo: float, hi: float) -> None:
        """Record ``[lo, hi)`` as transferred; merges and coalesces."""
        if hi < lo:
            raise ValueError(f"inverted range [{lo}, {hi})")
        if hi == lo:
            return  # empty ranges carry no information
        ranges = self._ranges
        out: List[Tuple[float, float]] = []
        placed = False
        for a, b in ranges:
            if b < lo or (placed and a > hi):
                out.append((a, b))
            elif a > hi and not placed:
                out.append((lo, hi))
                out.append((a, b))
                placed = True
            else:
                # overlaps or touches [lo, hi): absorb into it
                lo, hi = min(lo, a), max(hi, b)
        if not placed:
            out.append((lo, hi))
        out.sort()
        self._ranges = out

    def merge(self, other: "RestartMarkers") -> "RestartMarkers":
        """Union of two marker sets (e.g. stripes reporting separately)."""
        merged = RestartMarkers(self._ranges)
        for lo, hi in other._ranges:
            merged.add(lo, hi)
        return merged

    # -- queries ----------------------------------------------------------
    @property
    def ranges(self) -> Tuple[Tuple[float, float], ...]:
        """The canonical (sorted, disjoint, coalesced) range tuple."""
        return tuple(self._ranges)

    @property
    def bytes_done(self) -> float:
        """Total bytes covered by the markers."""
        return sum(hi - lo for lo, hi in self._ranges)

    def contiguous_prefix(self) -> float:
        """Bytes safely delivered from offset 0 (a REST-able offset)."""
        if self._ranges and self._ranges[0][0] == 0.0:
            return self._ranges[0][1]
        return 0.0

    def missing(self, total: float) -> List[Tuple[float, float]]:
        """The complement within ``[0, total)`` — what a restart resends."""
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for lo, hi in self._ranges:
            if lo >= total:
                break
            if lo > cursor:
                gaps.append((cursor, min(lo, total)))
            cursor = max(cursor, hi)
        if cursor < total:
            gaps.append((cursor, total))
        return gaps

    def covers(self, total: float) -> bool:
        """True when ``[0, total)`` is fully marked."""
        return not self.missing(total)

    # -- wire format ------------------------------------------------------
    def serialize(self) -> str:
        """The marker text a Range Marker reply carries (``0-29,40-89``).

        17 significant digits make the float round-trip exact, so
        ``parse(serialize(m)) == m`` holds for any marker set.
        """
        return ",".join(f"{lo:.17g}-{hi:.17g}" for lo, hi in self._ranges)

    @classmethod
    def parse(cls, text: str) -> "RestartMarkers":
        """Parse :meth:`serialize` output back into canonical markers."""
        markers = cls()
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            # Split on the separating dash only — not the minus sign of
            # a scientific-notation exponent ("0-1.5e-05").
            bits = re.split(r"(?<![eE])-", part)
            if len(bits) != 2 or not bits[0] or not bits[1]:
                raise ValueError(f"malformed range marker {part!r}")
            markers.add(float(bits[0]), float(bits[1]))
        return markers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RestartMarkers):
            return NotImplemented
        return self._ranges == other._ranges

    def __len__(self) -> int:
        return len(self._ranges)

    def __repr__(self) -> str:
        return f"RestartMarkers({self.serialize()!r})"


@dataclass
class RestartLog:
    """Restart-marker history for one logical transfer."""

    path: str
    markers: List[Tuple[float, float, str]] = field(default_factory=list)

    def mark(self, t: float, bytes_done: float, reason: str) -> None:
        """Record a restart point."""
        self.markers.append((t, bytes_done, reason))

    @property
    def restarts(self) -> int:
        return len(self.markers)

    def resume_offset(self) -> float:
        """Bytes safely delivered before the last interruption."""
        return self.markers[-1][1] if self.markers else 0.0


@dataclass
class ReliabilityPolicy:
    """User-configurable low-rate detection.

    Attributes
    ----------
    min_rate:
        Bytes/s below which the transfer counts as underperforming.
    grace_period:
        Seconds after transfer start before the policy may fire (lets
        slow start and staging finish).
    consecutive_samples:
        How many consecutive underperforming samples trigger a switch.
    """

    min_rate: float
    grace_period: float = 15.0
    consecutive_samples: int = 3

    def __post_init__(self) -> None:
        if self.min_rate <= 0:
            raise ValueError("min_rate must be positive")
        if self.grace_period < 0 or self.consecutive_samples < 1:
            raise ValueError("bad policy configuration")
        self._low_count = 0

    def observe(self, elapsed: float, rate: float) -> bool:
        """Feed one progress sample; True = switch replicas now."""
        if elapsed < self.grace_period:
            return False
        if rate < self.min_rate:
            self._low_count += 1
        else:
            self._low_count = 0
        if self._low_count >= self.consecutive_samples:
            self._low_count = 0
            return True
        return False

    def reset(self) -> None:
        """Forget accumulated low samples (new attempt started)."""
        self._low_count = 0

    def clone(self) -> "ReliabilityPolicy":
        """A pristine copy of this policy (no accumulated samples).

        Each transfer attempt gets its own instance so concurrent file
        threads never share low-rate counters; ``dataclasses.replace``
        copies every field, so policies grown new attributes clone
        correctly without call-site updates.
        """
        return dataclasses.replace(self)
