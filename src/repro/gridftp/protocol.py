"""Protocol-level definitions: replies, errors, configuration, stats.

GridFTP extends RFC 959 FTP; we keep the reply-code discipline (1xx
preliminary, 2xx success, 4xx transient failure, 5xx permanent failure)
because the client's retry logic branches on it, exactly as a real
implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class FtpReply:
    """A control-channel reply."""

    code: int
    text: str = ""

    @property
    def is_preliminary(self) -> bool:
        return 100 <= self.code < 200

    @property
    def is_success(self) -> bool:
        return 200 <= self.code < 300

    @property
    def is_transient_error(self) -> bool:
        return 400 <= self.code < 500

    @property
    def is_permanent_error(self) -> bool:
        return self.code >= 500

    def __str__(self) -> str:
        return f"{self.code} {self.text}"


# Reply codes used by the implementation (RFC 959 + common practice).
OPENING_DATA = 150
COMMAND_OK = 200
FEATURES = 211
FILE_STATUS = 213
CLOSING_DATA = 226
AUTH_OK = 234
SERVICE_UNAVAILABLE = 421
CANT_OPEN_DATA = 425
TRANSFER_ABORTED = 426
ACTION_NOT_TAKEN = 450
FILE_UNAVAILABLE = 550
SYNTAX_ERROR = 501
NOT_LOGGED_IN = 530


class GridFtpError(Exception):
    """A command or transfer failed; carries the FTP reply."""

    def __init__(self, reply: FtpReply):
        super().__init__(str(reply))
        self.reply = reply

    @property
    def transient(self) -> bool:
        """True if a retry may succeed (4xx)."""
        return self.reply.is_transient_error


@dataclass
class GridFtpConfig:
    """Client-side transfer configuration.

    Attributes
    ----------
    parallelism:
        TCP streams per (source host → destination) pair (``OPTS RETR
        Parallelism=N``).
    buffer_bytes:
        Explicit SBUF value; ``None`` negotiates the bandwidth–delay
        product automatically (§7's sizing formula).
    channel_caching:
        Keep data channels (and warm TCP windows) between transfers.
    stall_timeout:
        Seconds of zero progress before a stream is declared dead.
    retry_limit:
        Restart attempts per transfer before giving up.
    retry_backoff:
        Seconds between restart attempts.
    progress_poll:
        How often monitoring samples transferred bytes ("checking the
        file size ... every few seconds", §4).
    progress_poll_max:
        When set, the request manager's progress monitor backs off
        exponentially from ``progress_poll`` up to this ceiling while a
        transfer keeps making progress — large fleets use it so monitor
        ticks don't dominate the event budget. ``None`` (default) keeps
        the fixed-interval behaviour.
    stall_poll:
        Explicit watchdog tick for the transport/data-channel stall
        detectors; ``None`` (default) polls at
        ``min(stall_timeout / 4, 5)`` seconds.
    loss_rate:
        Random-loss events per second per data stream (models shared /
        congested paths; 0 = clean path).
    fallback_bandwidth:
        Bytes/s assumed for a replica whose path has no NWS forecast
        (degraded-mode ranking); pessimistic by design so measured paths
        win.
    fallback_latency:
        One-way seconds assumed for an unmeasured path.
    stage_watermark:
        Fraction of a tape-resident file that must be staged before the
        transfer starts (stage/transfer cut-through). ``None`` (default)
        keeps the paper's strictly sequential behaviour — wait for the
        whole file. Must be in (0, 1]: a strictly positive watermark
        guarantees the stage (and its cache pin) completes before the
        rate-capped transfer can drain the last byte.
    record_series:
        When True (default), request-manager transfers keep one closed
        per-block RateSeries on their :class:`TransferStats` (feeds the
        bandwidth timeline and critical-path attribution). Fleet-scale
        runs turn this off: the recorders cost memory per block and pin
        every flow to the exact (non-aggregated) fluid path.
    verify_checksum:
        When True, the request manager re-computes every delivered
        file's digest and compares it against the catalog's
        publish-time digest; a mismatch quarantines the replica and
        re-transfers from another copy. False (the default) preserves
        the trusting pre-integrity behaviour.
    checksum_rate:
        Bytes/s a checksum scan processes (the disk-read + CPU-hash
        pipeline); used by both the client-side verify-on-arrival scan
        and the server's CKSM command.
    """

    parallelism: int = 1
    buffer_bytes: Optional[float] = None
    channel_caching: bool = False
    stall_timeout: float = 30.0
    retry_limit: int = 10
    retry_backoff: float = 5.0
    progress_poll: float = 2.0
    progress_poll_max: Optional[float] = None
    stall_poll: Optional[float] = None
    loss_rate: float = 0.0
    fallback_bandwidth: float = 125000.0  # 1 Mb/s
    fallback_latency: float = 0.1
    stage_watermark: Optional[float] = None
    record_series: bool = True
    verify_checksum: bool = False
    checksum_rate: float = 150 * 2**20

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.buffer_bytes is not None and self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if self.stall_timeout <= 0 or self.retry_backoff < 0:
            raise ValueError("bad timeout configuration")
        if self.progress_poll <= 0:
            raise ValueError("progress_poll must be positive")
        if (self.progress_poll_max is not None
                and self.progress_poll_max < self.progress_poll):
            raise ValueError("progress_poll_max must be >= progress_poll")
        if self.stall_poll is not None and self.stall_poll <= 0:
            raise ValueError("stall_poll must be positive")
        if self.loss_rate < 0:
            raise ValueError("loss_rate must be >= 0")
        if self.fallback_bandwidth <= 0 or self.fallback_latency < 0:
            raise ValueError("bad fallback path configuration")
        if self.stage_watermark is not None \
                and not (0.0 < self.stage_watermark <= 1.0):
            raise ValueError("stage_watermark must be in (0, 1]")
        if self.checksum_rate <= 0:
            raise ValueError("checksum_rate must be positive")


@dataclass
class TransferStats:
    """Outcome of one logical transfer."""

    path: str
    requested_bytes: float
    transferred_bytes: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    streams: int = 1
    stripes: int = 1
    restarts: int = 0
    replica_switches: int = 0
    channel_reused: bool = False
    # Blocks that completed while a corrupt-transfer fault window was
    # open on the path (the delivered file carries integrity marks).
    tainted_blocks: int = 0
    faults: list = field(default_factory=list)
    # RestartMarkers recorded by the block pump (byte ranges delivered);
    # None for transfers that never entered the pump.
    restart_markers: Optional[object] = None
    # Source bytes the server's ERET plug-in decoded to produce this
    # product (0 for plain transfers and derived-cache hits).
    eret_decoded_bytes: float = 0.0
    # True when the product came from the server's derived-product cache.
    eret_cache_hit: bool = False
    # Closed per-flow RateSeries (one per block actually moved); aggregate
    # with repro.net.aggregate_series for the wire-bandwidth timeline.
    series: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock seconds from start to completion."""
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        """Average goodput in bytes/s (0 for instant transfers)."""
        return (self.transferred_bytes / self.duration
                if self.duration > 0 else 0.0)

    def __repr__(self) -> str:
        return (f"TransferStats({self.path!r}, "
                f"{self.transferred_bytes / 2**20:.1f} MiB in "
                f"{self.duration:.2f}s, {self.mean_rate * 8 / 1e6:.1f} Mb/s, "
                f"{self.streams}x{self.stripes}, restarts={self.restarts})")
