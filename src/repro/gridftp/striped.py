"""Striped transfers: one logical file served by many hosts at once.

"Striped data transfer that increases parallelism by allowing data to be
striped across multiple hosts. Striping can be combined with parallelism
to have multiple TCP streams between each pair of hosts." (§6.1)

A :class:`StripedServer` fronts a set of backend :class:`GridFtpServer`
instances, each holding a partition of the logical file. A striped get
runs one parallel sub-transfer per backend concurrently; aggregate
bandwidth is the sum — this is the SC'2000 Table 1 configuration
(8 stripes × ≤4 streams = ≤32 TCP connections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gridftp.client import GridFtpClient, TransferHandle
from repro.gridftp.protocol import (
    FILE_UNAVAILABLE,
    FtpReply,
    GridFtpConfig,
    GridFtpError,
    TransferStats,
)
from repro.gridftp.server import GridFtpServer
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


@dataclass
class StripedTransferResult:
    """Aggregate outcome of a striped get."""

    path: str
    total_bytes: float
    started_at: float
    finished_at: float
    per_stripe: List[TransferStats] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        """Aggregate goodput, bytes/s."""
        return self.total_bytes / self.duration if self.duration > 0 else 0.0

    @property
    def stripes(self) -> int:
        return len(self.per_stripe)


class StripedServer:
    """A striped GridFTP endpoint (SPAS/SPOR).

    Parameters
    ----------
    name:
        Logical hostname of the striped endpoint.
    backends:
        The per-stripe servers.
    """

    def __init__(self, name: str, backends: Sequence[GridFtpServer]):
        if not backends:
            raise ValueError("need at least one backend")
        self.name = name
        self.backends = list(backends)
        # path -> ordered [(backend_index, partition_name, size)]
        self._layout: Dict[str, List[Tuple[int, str, float]]] = {}

    # -- data placement ------------------------------------------------------
    def partition_file(self, path: str, size: float,
                       content: Optional[bytes] = None) -> None:
        """Split a logical file evenly across the backends.

        Each backend receives ``<path>.pN`` holding its slice; content,
        when given, is sliced accordingly.
        """
        if size < 0:
            raise ValueError("size must be >= 0")
        n = len(self.backends)
        base = size / n
        layout: List[Tuple[int, str, float]] = []
        offset = 0.0
        for i, backend in enumerate(self.backends):
            part_size = base if i < n - 1 else size - base * (n - 1)
            part_name = f"{path}.p{i}"
            part_content = None
            if content is not None:
                lo = int(round(offset))
                part_content = content[lo:lo + int(round(part_size))]
            backend.fs.create(part_name, part_size, content=part_content,
                              overwrite=True)
            layout.append((i, part_name, part_size))
            offset += part_size
        self._layout[path] = layout

    def layout(self, path: str) -> List[Tuple[int, str, float]]:
        """The stripe map for a logical file."""
        entry = self._layout.get(path)
        if entry is None:
            raise GridFtpError(FtpReply(FILE_UNAVAILABLE,
                                        f"{path}: not striped here"))
        return entry

    def size(self, path: str) -> float:
        """Total logical size across stripes."""
        return sum(s for _, _, s in self.layout(path))

    def striped_get(self, client: GridFtpClient, client_host,
                    path: str, dest_fs: FileSystem,
                    dest_name: Optional[str] = None,
                    record: bool = False,
                    config: Optional[GridFtpConfig] = None):
        """Simulation process: fetch ``path`` via every stripe at once.

        With ``record=True``, each per-stripe TransferStats carries its
        flow RateSeries; sum everything with
        :func:`repro.net.aggregate_series` for the aggregate bandwidth
        timeline. Returns :class:`StripedTransferResult`.
        """
        env: Environment = client.env
        layout = self.layout(path)
        cfg = config or client.config
        started = env.now
        obs = client.obs
        if obs is not None:
            obs.event("gridftp.striped.start", prog="gridftp",
                      host=self.name, file=path, stripes=len(layout))
        sessions = []
        for idx, _, _ in layout:
            session = yield from client.connect(
                client_host, self.backends[idx].hostname, cfg)
            sessions.append(session)
        scratch = FileSystem(env, f"stripe-scratch:{path}")
        procs = []
        for session, (idx, part_name, _) in zip(sessions, layout):
            procs.append(env.process(session.get(
                part_name, scratch, client_host, record=record,
                config=cfg)))
        results = yield env.all_of(procs)
        for session in sessions:
            session.close()
        per_stripe = [results[p] for p in procs]
        total = sum(s.transferred_bytes for s in per_stripe)
        # Reassemble the logical file at the destination.
        parts = sorted(scratch, key=lambda f: f.name)
        content = (b"".join(p.content for p in parts)
                   if all(p.content is not None for p in parts) and parts
                   else None)
        dest_fs.create(dest_name or path, total, content=content,
                       overwrite=True)
        if obs is not None:
            obs.event("gridftp.striped.done", prog="gridftp",
                      host=self.name, file=path,
                      bytes=f"{total:.0f}",
                      seconds=f"{env.now - started:.3f}")
            obs.count("gridftp.striped_transfers_total", host=self.name)
            obs.observe("gridftp.striped_seconds", env.now - started)
        return StripedTransferResult(
            path=path, total_bytes=total, started_at=started,
            finished_at=env.now, per_stripe=per_stripe)

    def __repr__(self) -> str:
        return (f"StripedServer({self.name!r}, {len(self.backends)} stripes, "
                f"{len(self._layout)} files)")
