"""Data-channel caching.

"This mechanism allows a client to indicate that a TCP stream is likely
to be re-used soon after the existing transfer completes. In response ...
we temporarily keep the TCP channel active and allow subsequent transfers
to use the channel without requiring costly breakdown, restart, and
re-authentication operations." (§7, post-SC'2000 improvement.)

A cached channel keeps its :class:`~repro.net.tcp.TcpStream` — and hence
its warm congestion window — so a reusing transfer skips both the
handshake and slow start.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.net.transport import Connection
from repro.sim.core import Environment


class DataChannelCache:
    """Pool of idle data channels keyed by (src node, dst node).

    Parameters
    ----------
    env:
        Simulation environment.
    idle_ttl:
        Seconds an idle channel stays alive before being torn down
        (checked lazily at acquire time).
    """

    def __init__(self, env: Environment, idle_ttl: float = 60.0):
        self.env = env
        self.idle_ttl = idle_ttl
        self._idle: Dict[Tuple[str, str], List[Tuple[float, Connection]]] = \
            defaultdict(list)
        self.reuses = 0  # instrumentation
        self.expirations = 0

    def acquire(self, src: str, dst: str) -> Optional[Connection]:
        """Take an idle channel for this endpoint pair, if one is live."""
        pool = self._idle.get((src, dst))
        while pool:
            stored_at, conn = pool.pop()
            if self.env.now - stored_at > self.idle_ttl:
                conn.close()
                self.expirations += 1
                continue
            if conn.open:
                self.reuses += 1
                return conn
        return None

    def release(self, conn: Connection) -> None:
        """Return a channel to the pool for later reuse."""
        if not conn.open:
            return
        self._idle[(conn.src, conn.dst)].append((self.env.now, conn))

    def drain(self) -> int:
        """Close every idle channel; returns how many were closed."""
        n = 0
        for pool in self._idle.values():
            for _, conn in pool:
                conn.close()
                n += 1
            pool.clear()
        return n

    def idle_count(self, src: str, dst: str) -> int:
        """Idle channels currently pooled for this pair."""
        return len(self._idle.get((src, dst), []))
