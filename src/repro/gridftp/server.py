"""The GridFTP server: one per data host.

The server owns a filesystem (what it serves), optional server-side
processing plug-ins (ERET), and an optional HRM for tape-resident data —
"the motivation for GridFTP is to provide a uniform interface to various
storage systems" (§6.1), so the same RETR works whether the bytes are on
disk or must first be staged from HPSS.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.data.digest import add_mark, file_digest, marks_of
from repro.gridftp.derived_cache import DerivedProductCache
from repro.gridftp.protocol import (
    ACTION_NOT_TAKEN,
    FILE_UNAVAILABLE,
    FtpReply,
    GridFtpError,
    SYNTAX_ERROR,
)
from repro.gsi.auth import AuthenticationError, GsiContext
from repro.hosts.host import Host
from repro.sim.core import Environment
from repro.storage.filesystem import FileObject, FileSystem
from repro.storage.hrm import HierarchicalResourceManager, StagingError

# An ERET plugin: (file, args) -> (derived_size, derived_content|None)
# or (derived_size, derived_content|None, bytes_decoded). The optional
# third element is how many source bytes the plug-in decoded; 2-tuple
# plug-ins are charged a whole-file decode. A plug-in may also carry a
# ``stage_prefix(file, args) -> Optional[float]`` attribute naming the
# byte prefix that suffices to serve the request (used for tape
# staging cut-through).
EretPlugin = Callable[[FileObject, dict], tuple]


class GridFtpServer:
    """A GridFTP endpoint serving one host's filesystem.

    Parameters
    ----------
    env, host:
        Simulation environment and the host this server runs on.
    filesystem:
        The namespace served.
    gsi:
        Security context (None disables authentication — used by unit
        tests and by the DODS baseline comparison).
    credential_chain:
        The server's certificate chain for mutual auth.
    hrm:
        Optional hierarchical resource manager for tape-backed files.
    hostname:
        DNS name clients connect to (defaults to the host's node name).
    max_connections:
        Concurrent control sessions the daemon accepts; further
        connects are *rejected* with a 421 reply rather than silently
        queued, so client-side admission control (the transfer
        scheduler) is observable against a hard server limit. ``None``
        (the default) accepts everything.
    checksum_rate:
        Bytes/s the CKSM command scans at (disk read + hash CPU).
    eret_rate:
        Bytes/s an ERET plug-in decodes source data at (server CPU).
        The charge is proportional to *bytes decoded*, so chunked SDBF
        files — where a subset decodes only the touched chunks — cost
        less to serve than flat ones.
    derived_cache_bytes:
        Byte budget for the per-server LRU cache of derived products,
        keyed by source content digest + operation + args. A repeat of
        the same reduction is answered from the cache with zero bytes
        decoded and no stage pin. ``0`` disables the cache.
    eret_range_staging:
        When True (default), an ERET request against a tape-resident
        chunked file starts as soon as the byte prefix covering its
        chunk set is disk-resident, instead of waiting for the whole
        file to stage.
    """

    def __init__(self, env: Environment, host: Host, filesystem: FileSystem,
                 gsi: Optional[GsiContext] = None,
                 credential_chain: tuple = (),
                 hrm: Optional[HierarchicalResourceManager] = None,
                 hostname: Optional[str] = None, obs=None,
                 max_connections: Optional[int] = None,
                 checksum_rate: float = 150 * 2**20,
                 eret_rate: float = 150 * 2**20,
                 derived_cache_bytes: float = 64 * 2**20,
                 eret_range_staging: bool = True):
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1 when set")
        if checksum_rate <= 0:
            raise ValueError("checksum_rate must be positive")
        if eret_rate <= 0:
            raise ValueError("eret_rate must be positive")
        if derived_cache_bytes < 0:
            raise ValueError("derived_cache_bytes must be >= 0")
        self.env = env
        self.host = host
        self.fs = filesystem
        self.gsi = gsi
        self.credential_chain = credential_chain
        self.hrm = hrm
        self.obs = obs          # optional repro.obs.Observability bundle
        self.hostname = hostname or host.node
        self.max_connections = max_connections
        self.active_connections = 0
        self.rejected_connections = 0
        self._plugins: Dict[str, EretPlugin] = {}
        self.bytes_served = 0.0
        self.transfers_served = 0
        self.auth_failures = 0
        self.up = True
        self.crashes = 0
        self._active_handles: set = set()
        # Cut-through hand-off: per-path stack of tape readahead rate
        # caps, pushed by _materialize when a transfer starts against a
        # still-growing file and claimed synchronously by the client.
        self._pending_rate_caps: Dict[str, list] = {}
        self.cutthrough_served = 0
        self.checksum_rate = float(checksum_rate)
        self.checksums_served = 0
        self.eret_rate = float(eret_rate)
        self.eret_range_staging = eret_range_staging
        self.eret_decoded_bytes = 0.0
        self.eret_range_staged = 0
        self.derived_cache: Optional[DerivedProductCache] = (
            DerivedProductCache(derived_cache_bytes, self.hostname, obs)
            if derived_cache_bytes > 0 else None)
        # Per-path stack of how each in-flight RETR must balance its
        # stage pin: "release" (full stage waited, pin held), "shared"
        # (returned before stage completion — still a waiter, maybe
        # pinned later), "none" (no HRM touch: disk file or cache hit).
        self._retrieve_actions: Dict[str, list] = {}
        # ERET accounting hand-off: per-path stack of
        # {"decoded": bytes, "cache": bool}, claimed synchronously by
        # the client after prepare_retrieve (like the rate cap).
        self._pending_eret_info: Dict[str, list] = {}

    # -- connection limiting ----------------------------------------------
    def try_accept(self) -> bool:
        """Reserve a control-session slot; False = at the limit (421)."""
        if (self.max_connections is not None
                and self.active_connections >= self.max_connections):
            self.rejected_connections += 1
            if self.obs is not None:
                self.obs.count("gridftp.server_rejects_total",
                               host=self.hostname)
            return False
        self.active_connections += 1
        if self.obs is not None:
            self.obs.gauge("gridftp.server_connections",
                           self.active_connections, host=self.hostname)
        return True

    def release_connection(self) -> None:
        """Give back a control-session slot (idempotent at zero)."""
        if self.active_connections > 0:
            self.active_connections -= 1
            if self.obs is not None:
                self.obs.gauge("gridftp.server_connections",
                               self.active_connections,
                               host=self.hostname)

    # -- fault injection ---------------------------------------------------
    def register_handle(self, handle) -> None:
        """Track an in-flight transfer so a crash can drop it."""
        self._active_handles.add(handle)

    def unregister_handle(self, handle) -> None:
        """Forget a transfer that finished (or already aborted)."""
        self._active_handles.discard(handle)

    def crash(self) -> None:
        """Go down: refuse new connections, abort in-flight transfers."""
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        self.active_connections = 0
        aborted = len(self._active_handles)
        for handle in list(self._active_handles):
            handle.abort(f"server {self.hostname} crashed")
        self._active_handles.clear()
        if self.obs is not None:
            self.obs.event("gridftp.server.crash", prog="gridftp",
                           host=self.hostname, aborted=aborted)
            self.obs.count("gridftp.server_crashes_total",
                           host=self.hostname)

    def restart(self) -> None:
        """Come back up; clients must reconnect."""
        if not self.up and self.obs is not None:
            self.obs.event("gridftp.server.restart", prog="gridftp",
                           host=self.hostname)
        self.up = True

    # -- endpoints ---------------------------------------------------------
    @property
    def data_node(self) -> str:
        """Topology node data flows originate from (the serving disk)."""
        return self.host.store_node

    @property
    def control_node(self) -> str:
        """Topology node for the control connection."""
        return self.host.node

    # -- plugins ------------------------------------------------------------
    def register_plugin(self, name: str, plugin: EretPlugin) -> None:
        """Install a server-side processing plug-in (ERET module)."""
        self._plugins[name] = plugin

    @property
    def features(self) -> Tuple[str, ...]:
        """FEAT response: supported extensions."""
        feats = ["GSI", "PARALLEL", "SBUF", "REST STREAM", "ERET", "SPAS",
                 "SIZE", "64BIT"]
        feats.extend(f"ERET:{n}" for n in sorted(self._plugins))
        return tuple(feats)

    # -- command handlers (invoked by ClientSession) --------------------------
    def authenticate(self, client_chain: tuple, rtt: float):
        """Simulation process: GSI mutual authentication (or no-op)."""
        if self.gsi is None:
            return ("anonymous", self.hostname)
        try:
            result = yield from self.gsi.authenticate(
                self.env, client_chain, self.credential_chain, rtt)
        except AuthenticationError:
            self.auth_failures += 1
            raise
        return result

    def size(self, path: str) -> float:
        """SIZE: the file's byte count (64-bit — no 2 GB ceiling)."""
        file = self._find(path)
        return file.size

    def cksm(self, path: str):
        """CKSM: the file's content digest (simulation process).

        Cost-modeled as a full disk+CPU scan at ``checksum_rate``.
        MSS-resident files stage through the HRM first, and the stage's
        cache pin is held for the entire scan so cache churn cannot
        evict the bytes mid-checksum.
        """
        if not self.up:
            raise GridFtpError(FtpReply(
                ACTION_NOT_TAKEN, f"server {self.hostname} is down"))
        if self.hrm is not None and self.hrm.mss.has(path):
            try:
                req = self.hrm.request_stage(path)
                file = yield req.ready
            except StagingError as exc:
                raise GridFtpError(FtpReply(
                    ACTION_NOT_TAKEN, f"{path}: staging failed: {exc}")) \
                    from exc
            try:
                yield self.env.timeout(file.size / self.checksum_rate)
            finally:
                self.hrm.release(path)
        else:
            if not self.fs.exists(path):
                raise GridFtpError(FtpReply(
                    FILE_UNAVAILABLE, f"{path}: no such file"))
            file = self.fs.stat(path)
            yield self.env.timeout(file.size / self.checksum_rate)
        self.checksums_served += 1
        if self.obs is not None:
            self.obs.count("gridftp.checksums_total", host=self.hostname)
        return file_digest(file)

    def integrity_marks(self, path: str) -> tuple:
        """Corruption marks on the served copy of ``path`` (() = pristine
        or unknown). Free to call: metadata, not a scan."""
        try:
            return marks_of(self._find(path))
        except GridFtpError:
            return ()

    def corrupt_file(self, path: str, tag: str = "at-rest") -> FileObject:
        """Fault injection: silently damage the served copy of ``path``.

        Appends an integrity mark, which changes the file's digest —
        only a checksum scan can tell the copy has gone bad.
        """
        file = self._find(path)
        add_mark(file, tag)
        if self.obs is not None:
            self.obs.event("gridftp.replica.corrupted", prog="gridftp",
                           host=self.hostname, file=path, tag=tag)
            self.obs.count("gridftp.replica_corruptions_total",
                           host=self.hostname)
        return file

    def exists(self, path: str) -> bool:
        """True if this server can produce ``path`` (disk or tape)."""
        if self.fs.exists(path):
            return True
        return self.hrm is not None and self.hrm.mss.has(path)

    def prepare_retrieve(self, path: str, offset: float = 0.0,
                         length: Optional[float] = None,
                         eret: Optional[str] = None,
                         eret_args: Optional[dict] = None,
                         watermark: Optional[float] = None):
        """Simulation process: make ``path`` ready to send.

        Stages tape-resident files through the HRM if needed, applies any
        ERET plug-in, validates the partial-retrieval window, and returns
        ``(bytes_to_send, content_or_None)``.

        With ``watermark`` set (a fraction in (0, 1]), a whole-file RETR
        of a file that is still staging returns as soon as that fraction
        is disk-resident (stage/transfer cut-through): the server pushes
        the tape readahead rate for the client to claim, so the
        transfer can never overtake the staged prefix. Partial reads
        address arbitrary byte ranges and always wait for the full file.

        ERET requests take their own reduced-data fast path: a hit in
        the derived-product cache answers with zero bytes decoded and
        no stage pin; otherwise, if the plug-in publishes a
        ``stage_prefix`` planner and the file is tape-resident, the
        plug-in runs as soon as that prefix is disk-resident (range
        staging cut-through). Decode CPU is charged at ``eret_rate``
        proportional to the bytes the plug-in actually decoded.
        """
        if not self.up:
            raise GridFtpError(FtpReply(
                ACTION_NOT_TAKEN, f"server {self.hostname} is down"))
        if offset < 0 or (length is not None and length < 0):
            raise GridFtpError(FtpReply(SYNTAX_ERROR,
                                        "negative offset/length"))
        if eret is not None or offset != 0.0 or length is not None:
            watermark = None
        if eret is not None:
            plugin = self._plugins.get(eret)
            if plugin is None:
                raise GridFtpError(FtpReply(
                    SYNTAX_ERROR, f"no ERET plugin {eret!r}"))
            size, content, action, info = yield from self._serve_eret(
                path, eret, plugin, eret_args or {})
        else:
            file, action = yield from self._materialize(path, watermark)
            size, content, info = file.size, file.content, None
        try:
            if offset > size:
                raise GridFtpError(FtpReply(
                    SYNTAX_ERROR,
                    f"offset {offset:.0f} beyond size {size:.0f}"))
        except GridFtpError:
            self._settle_retrieve(path, action, abandon=True)
            raise
        nbytes = (size - offset) if length is None else min(length,
                                                            size - offset)
        if content is not None:
            lo = int(offset)
            content = content[lo:lo + int(nbytes)]
        self._retrieve_actions.setdefault(path, []).append(action)
        if info is not None:
            self._pending_eret_info.setdefault(path, []).append(info)
        return nbytes, content

    def _serve_eret(self, path: str, eret: str, plugin: EretPlugin,
                    args: dict):
        """Simulation process: produce a derived product for ``path``.

        Returns ``(size, content, action, info)`` where ``action`` is
        the stage-pin balance this RETR owes and ``info`` is the
        accounting dict the client claims.
        """
        try:
            src = self._find(path)
        except GridFtpError:
            src = None
        key = None
        if src is not None and self.derived_cache is not None:
            key = DerivedProductCache.make_key(file_digest(src), eret, args)
            hit = self.derived_cache.get(key, file=path, op=eret)
            if hit is not None:
                return (hit.size, hit.content, "none",
                        {"decoded": 0.0, "cache": True})
        prefix = None
        if (self.eret_range_staging and src is not None
                and self.hrm is not None and self.hrm.mss.has(path)):
            planner = getattr(plugin, "stage_prefix", None)
            if planner is not None:
                prefix = planner(src, args)
        file, action = yield from self._materialize(path, None,
                                                    prefix_bytes=prefix)
        try:
            result = plugin(file, args)
            if len(result) >= 3:
                size, content, decoded = result[0], result[1], result[2]
            else:
                size, content = result
                decoded = float(file.size)
            if size < 0:
                raise GridFtpError(FtpReply(
                    SYNTAX_ERROR, f"plugin {eret!r} returned bad size"))
        except Exception:
            # Balance the stage pin this RETR took before surfacing the
            # failure, or the file stays pinned forever.
            self._settle_retrieve(path, action, abandon=True)
            raise
        # Decode CPU: proportional to source bytes turned into arrays,
        # not to file size — the whole point of the chunked layout.
        yield self.env.timeout(decoded / self.eret_rate)
        self.eret_decoded_bytes += decoded
        if self.obs is not None:
            self.obs.count("gridftp.eret_decoded_bytes_total", decoded,
                           host=self.hostname)
        if key is not None:
            self.derived_cache.put(key, size, content, file=path, op=eret)
        return size, content, action, {"decoded": decoded, "cache": False}

    def claim_retrieve_rate_cap(self, path: str) -> Optional[float]:
        """Pop the cut-through rate cap pushed by the last
        ``prepare_retrieve`` of ``path``, if any.

        Called by the client synchronously after ``prepare_retrieve``
        returns (no simulation yield in between, so hand-offs cannot
        interleave across sessions).
        """
        caps = self._pending_rate_caps.get(path)
        if not caps:
            return None
        cap = caps.pop()
        if not caps:
            del self._pending_rate_caps[path]
        return cap

    def claim_retrieve_eret_info(self, path: str) -> Optional[dict]:
        """Pop the ERET accounting dict (``{"decoded": bytes, "cache":
        bool}``) pushed by the last ``prepare_retrieve`` of ``path``.

        Called by the client synchronously after ``prepare_retrieve``
        returns, like :meth:`claim_retrieve_rate_cap`.
        """
        infos = self._pending_eret_info.get(path)
        if not infos:
            return None
        info = infos.pop()
        if not infos:
            del self._pending_eret_info[path]
        return info

    def finish_retrieve(self, path: str, nbytes: float) -> None:
        """Account a completed (possibly partial) send and balance the
        stage pin this RETR took (no-op for non-MSS files)."""
        self.bytes_served += nbytes
        self.transfers_served += 1
        if self.obs is not None:
            self.obs.count("gridftp.served_total", host=self.hostname)
            self.obs.count("gridftp.served_bytes_total", nbytes,
                           host=self.hostname)
        self._settle_retrieve(path, self._pop_action(path))

    def abandon_retrieve(self, path: str) -> None:
        """A RETR that passed ``prepare_retrieve`` failed mid-transfer:
        balance its stage pin (or pending waiter slot) so the file does
        not stay pinned forever."""
        self._settle_retrieve(path, self._pop_action(path), abandon=True)

    def _pop_action(self, path: str) -> str:
        """Pop this RETR's pin-balance action ("release" when untracked,
        matching the pre-action-stack behavior)."""
        stack = self._retrieve_actions.get(path)
        if not stack:
            return "release"
        action = stack.pop()
        if not stack:
            del self._retrieve_actions[path]
        return action

    def _settle_retrieve(self, path: str, action: str,
                         abandon: bool = False) -> None:
        """Balance one RETR's stage pin according to its action.

        "none" never touched the HRM. "shared" returned before its
        stage completed, so it may or may not hold a pin yet —
        ``hrm.abandon`` handles both. "release" holds a pin; a failed
        transfer still abandons so a mid-stage crash cannot double-free.
        """
        if self.hrm is None or action == "none":
            return
        if action == "shared" or abandon:
            self.hrm.abandon(path)
        else:
            self.hrm.release(path)

    def store(self, path: str, size: float,
              content: Optional[bytes] = None,
              overwrite: bool = True) -> FileObject:
        """STOR: accept an uploaded file into the served filesystem."""
        return self.fs.create(path, size, content=content,
                              overwrite=overwrite)

    # -- internals -------------------------------------------------------------
    def _find(self, path: str) -> FileObject:
        if self.fs.exists(path):
            return self.fs.stat(path)
        if self.hrm is not None and self.hrm.mss.has(path):
            if self.hrm.mss.tape.has(path):
                return self.hrm.mss.tape.lookup(path)
        raise GridFtpError(FtpReply(FILE_UNAVAILABLE,
                                    f"{path}: no such file"))

    def _materialize(self, path: str, watermark: Optional[float] = None,
                     prefix_bytes: Optional[float] = None):
        """Ensure enough of the file is disk-resident; returns
        ``(FileObject, action)`` where ``action`` names how the RETR
        must later balance its stage pin (see ``_settle_retrieve``).

        MSS-resident files always go through the HRM — even when already
        published to the serving disk — so every RETR takes exactly one
        cache pin (the HRM's fast path pins cached files per caller) and
        every finish/abandon balances it. With ``watermark`` set, a
        still-staging file is served once that fraction is on disk; the
        transfer is then rate-capped at the tape readahead so it can
        never overtake the staged prefix. With ``prefix_bytes`` set
        (ERET range staging), the file is served once that many leading
        bytes are on disk — the plug-in only reads that prefix, so no
        rate cap is needed; the rest of the stage finishes in the
        background.
        """
        if self.hrm is not None and self.hrm.mss.has(path):
            try:
                req = self.hrm.request_stage(path)
                streaming = (not req.ready.triggered
                             and req.progress is not None and req.size > 0)
                if streaming and watermark is not None:
                    gate = req.progress.at_bytes(watermark * req.size)
                    # Whichever comes first: the watermark, or the whole
                    # stage (a failed stage raises here via AnyOf).
                    yield self.env.any_of([gate, req.ready])
                    if not req.ready.triggered:
                        return self._begin_cutthrough(path, req), "shared"
                    file = req.ready.value
                elif streaming and prefix_bytes is not None:
                    gate = req.progress.at_bytes(
                        min(prefix_bytes, req.size))
                    yield self.env.any_of([gate, req.ready])
                    if not req.ready.triggered:
                        self.eret_range_staged += 1
                        if self.obs is not None:
                            self.obs.count("gridftp.eret_range_staged_total",
                                           host=self.hostname)
                            self.obs.event(
                                "hrm.rangestage.start", prog="gridftp",
                                host=self.hostname, file=path,
                                prefix=f"{prefix_bytes:.0f}",
                                total=f"{req.size:.0f}")
                        return self.hrm.mss.tape.lookup(path), "shared"
                    file = req.ready.value
                else:
                    file = yield req.ready
            except StagingError as exc:
                # Surface tape/HRM failures as a transient 450 so the RM
                # can classify and retry elsewhere.
                raise GridFtpError(FtpReply(
                    ACTION_NOT_TAKEN, f"{path}: staging failed: {exc}")) \
                    from exc
            return file, "release"
        if self.fs.exists(path):
            return self.fs.stat(path), "none"
        raise GridFtpError(FtpReply(FILE_UNAVAILABLE,
                                    f"{path}: no such file"))
        yield  # pragma: no cover - makes this a generator in all paths

    def _begin_cutthrough(self, path: str, req) -> FileObject:
        """Serve a growing file: push the readahead rate cap for the
        client and account the overlap."""
        rate = self.hrm.mss.tape.spec.read_rate
        self._pending_rate_caps.setdefault(path, []).append(rate)
        self.cutthrough_served += 1
        if self.obs is not None:
            self.obs.count("gridftp.cutthrough_total", host=self.hostname)
            self.obs.event(
                "hrm.cutthrough.start", prog="gridftp", host=self.hostname,
                file=path, staged=f"{req.progress.staged_bytes():.0f}",
                total=f"{req.size:.0f}")
        return self.hrm.mss.tape.lookup(path)

    def __repr__(self) -> str:
        return (f"GridFtpServer({self.hostname!r}, "
                f"{len(self.fs)} files, hrm={self.hrm is not None})")
