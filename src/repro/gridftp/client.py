"""The GridFTP client: sessions, parallel gets, puts, third-party copies.

A :class:`ClientSession` is an authenticated control connection to one
server. ``get`` moves a file with N parallel data channels: the file is
cut into blocks, channels pull blocks from a shared queue (approximating
GridFTP's extended-block mode), and failed channels' unfinished blocks
return to the queue for restart — so a transient outage costs a restart,
not a re-send of everything (§6.1 "reliable and restartable data
transfer" / Figure 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.data.digest import MARKS_KEY
from repro.gridftp.channels import DataChannelCache
from repro.gridftp.protocol import (
    CANT_OPEN_DATA,
    FtpReply,
    GridFtpConfig,
    GridFtpError,
    SERVICE_UNAVAILABLE,
    TRANSFER_ABORTED,
    TransferStats,
)
from repro.gridftp.restart import RestartMarkers
from repro.gridftp.server import GridFtpServer
from repro.gsi.auth import AuthenticationError
from repro.net.fluid import FlowError
from repro.net.recorder import RateRecorder
from repro.net.tcp import TcpParams, bdp_buffer_size
from repro.net.transport import Connection, ConnectionRefused, Transport
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.storage.filesystem import FileSystem

_MIN_BLOCK = 256 * 1024.0
_BLOCKS_PER_CHANNEL = 4


class TransferHandle:
    """Live view of an in-progress transfer (what the RM monitor polls)."""

    def __init__(self, env: Environment, path: str, total: float):
        self.env = env
        self.path = path
        self.total = total
        self.done: Event = Event(env)
        self._completed = 0.0
        self._active_flows: List = []
        self.aborted = False
        self.abort_reason = ""
        # Fires on abort() so waiters that hold no flow yet (e.g. a
        # worker queued in the transfer scheduler) can wake promptly.
        self.abort_event: Event = Event(env)
        # sim time the first data flow started moving bytes (TTFB anchor)
        self.first_byte_at: Optional[float] = None
        # True when this transfer started against a still-staging file
        # (stage/transfer cut-through).
        self.cutthrough = False
        # Integrity marks picked up in flight: one entry per block that
        # completed while a corrupt-transfer fault window was open on
        # the path. A non-empty list means the delivered file is bad.
        self.taints: List[str] = []

    def begin_attempt(self, total: float) -> None:
        """Reset per-attempt progress for a new get/put on this handle.

        A reused handle (retry after a failed attempt) must not carry
        the previous attempt's delivered bytes or in-flight taints
        forward: the new attempt re-sends from scratch, so stale
        ``_completed`` would double-count bytes in the scheduler's
        grant accounting and stale taints would condemn a clean copy.
        """
        self.total = total
        self._completed = 0.0
        self._active_flows = []
        self.taints = []

    def bytes_done(self) -> float:
        """Bytes delivered so far (live flows included)."""
        live = sum(f.progress() for f in self._active_flows if f.active)
        return self._completed + live

    @property
    def fraction(self) -> float:
        """Completion fraction in [0, 1]."""
        return self.bytes_done() / self.total if self.total > 0 else 1.0

    def abort(self, reason: str = "user abort") -> None:
        """Cancel the transfer; the waiter sees a GridFtpError."""
        self.aborted = True
        self.abort_reason = reason
        if not self.abort_event.triggered:
            self.abort_event.succeed(reason)
        for f in list(self._active_flows):
            if f.active:
                f.abort(reason)


class ClientSession:
    """An authenticated control connection to one GridFTP server."""

    def __init__(self, client: "GridFtpClient", server: GridFtpServer,
                 control: Connection, subjects: Tuple[str, str]):
        self.client = client
        self.server = server
        self.control = control
        self.subjects = subjects
        self.env = client.env
        self.commands_sent = 0
        self._closed = False

    # -- simple commands ---------------------------------------------------
    def _command(self, server_time: float = 0.0):
        self.commands_sent += 1
        yield from self.control.request(server_time=server_time)

    def feat(self):
        """Simulation process: FEAT — the server's extension list."""
        yield from self._command()
        return self.server.features

    def size(self, path: str):
        """Simulation process: SIZE — byte count or 550."""
        yield from self._command()
        return self.server.size(path)

    def exists(self, path: str):
        """Simulation process: probe for a file (SIZE that may 550)."""
        yield from self._command()
        return self.server.exists(path)

    def cksm(self, path: str):
        """Simulation process: CKSM — the server scans the file (disk
        read + hash CPU, cost-modeled) and returns its content digest."""
        yield from self._command()
        digest = yield from self.server.cksm(path)
        return digest

    def close(self) -> None:
        """Tear down the control connection and free the server slot."""
        if self._closed:
            return
        self._closed = True
        self.control.close()
        self.server.release_connection()

    # -- data transfer ----------------------------------------------------------
    def get(self, path: str, dest_fs: FileSystem, dest_host,
            dest_name: Optional[str] = None,
            offset: float = 0.0, length: Optional[float] = None,
            eret: Optional[str] = None, eret_args: Optional[dict] = None,
            record: bool = False,
            handle: Optional[TransferHandle] = None,
            config: Optional[GridFtpConfig] = None):
        """Simulation process: RETR ``path`` into ``dest_fs``.

        Returns :class:`TransferStats`. With ``record=True`` the stats
        carry one closed RateSeries per moved block (sum them with
        :func:`repro.net.aggregate_series` for the bandwidth timeline).
        Raises :class:`GridFtpError` with a 4xx/5xx reply on failure
        (426 when retries are exhausted).
        """
        cfg = config or self.client.config
        env = self.env
        # SBUF + OPTS + RETR setup commands.
        yield from self._command()
        nbytes, content = yield from self.server.prepare_retrieve(
            path, offset, length, eret, eret_args,
            watermark=cfg.stage_watermark)
        # Claimed synchronously (no yield since prepare returned): a
        # non-None cap means the file is still growing on the staging
        # disk and the transfer must not outrun the tape readahead.
        rate_cap = self.server.claim_retrieve_rate_cap(path)
        eret_info = self.server.claim_retrieve_eret_info(path)
        stats = TransferStats(path=path, requested_bytes=nbytes,
                              started_at=env.now, streams=cfg.parallelism)
        if eret_info is not None:
            stats.eret_decoded_bytes = eret_info["decoded"]
            stats.eret_cache_hit = eret_info["cache"]
        if handle is None:
            handle = TransferHandle(env, path, nbytes)
        else:
            handle.begin_attempt(nbytes)
        handle.cutthrough = rate_cap is not None
        src = self.server.data_node
        dst = dest_host.store_node
        # Register with the server so a crash drops this transfer.
        self.server.register_handle(handle)
        try:
            yield from self._pump_blocks(path, src, dst, nbytes, cfg, stats,
                                         handle, record, rate_cap=rate_cap)
        except BaseException:
            # The RETR dies here without reaching finish_retrieve: give
            # back the stage pin (or pending waiter slot) it holds.
            self.server.abandon_retrieve(path)
            raise
        finally:
            self.server.unregister_handle(handle)
        # 226 closing data connection.
        yield from self._command()
        name = dest_name or path
        delivered = dest_fs.create(name, nbytes, content=content,
                                   overwrite=True)
        # Integrity propagation: the delivered copy inherits the source
        # replica's at-rest marks plus any in-flight taints. The marks
        # change the file's digest — only verification can see them.
        marks = (tuple(self.server.integrity_marks(path))
                 + tuple(handle.taints))
        if marks:
            delivered.metadata[MARKS_KEY] = marks
        stats.tainted_blocks = len(handle.taints)
        self.server.finish_retrieve(path, nbytes)
        stats.finished_at = env.now
        handle._completed = nbytes
        handle.done.succeed(stats)
        self._record_transfer("get", stats, handle)
        return stats

    def _record_transfer(self, op: str, stats: TransferStats,
                         handle: TransferHandle) -> None:
        """Per-transfer metrics (no-op when the client is uninstrumented)."""
        obs = self.client.obs
        if obs is None:
            return
        host = self.server.hostname
        obs.count("gridftp.transfers_total", op=op, host=host)
        obs.count("gridftp.bytes_total", stats.transferred_bytes, op=op)
        obs.observe("gridftp.transfer_seconds",
                    stats.finished_at - stats.started_at, op=op)
        if handle.first_byte_at is not None:
            obs.observe("gridftp.ttfb_seconds",
                        handle.first_byte_at - stats.started_at, op=op)
            if handle.cutthrough:
                obs.observe("hrm.cutthrough_ttfb_seconds",
                            handle.first_byte_at - stats.started_at)

    def _channel_worker(self, conn: Connection,
                        queue: List[Tuple[float, float]],
                        failed: List[Tuple[float, float]],
                        series_out: Optional[list],
                        handle: TransferHandle, path: str,
                        markers: RestartMarkers,
                        rate_cap: Optional[float] = None):
        """One data channel pulling blocks until the queue drains.

        ``queue`` holds ``(offset, length)`` blocks; every byte range
        fully delivered is recorded in ``markers`` (GridFTP restart
        markers), and a failed block's undelivered tail goes back to
        ``failed`` for the next restart round. ``rate_cap`` (cut-through)
        is a hard per-channel ceiling the TCP window cannot exceed.
        """
        moved = 0.0
        # Corrupt-transfer windows: the fluid model has no per-byte
        # stream to flip bits in, so corruption is sampled at block
        # granularity — a block whose flow starts or completes inside an
        # open window on any path link arrives damaged.
        path_links = conn.transport.network.topology.path(conn.src,
                                                          conn.dst)
        while queue:
            offset, block = queue.pop()
            rec = (RateRecorder(f"gridftp:{path}")
                   if series_out is not None else None)
            suspect = any(l.corrupting for l in path_links)
            try:
                flow = conn.transport.network.transfer(
                    conn.src, conn.dst, block,
                    cap=conn.stream.window_cap,
                    name=f"gridftp:{path}", recorder=rec,
                    limit=(rate_cap if rate_cap is not None
                           else float("inf")))
                handle._active_flows.append(flow)
                if handle.first_byte_at is None:
                    handle.first_byte_at = self.env.now
                    obs = self.client.obs
                    if obs is not None:
                        obs.event("gridftp.first_byte", prog="gridftp",
                                  host=self.server.hostname, file=path)
                self.env.process(conn.stream.drive(flow))
                yield from self._watch(conn, flow)
                moved += block
                conn.bytes_sent += block
                conn.transfers += 1
                handle._active_flows.remove(flow)
                handle._completed += block
                markers.add(offset, offset + block)
                if suspect or any(l.corrupting for l in path_links):
                    handle.taints.append(
                        f"xfer@{self.env.now:.3f}+{offset:.0f}")
                    obs = self.client.obs
                    if obs is not None:
                        obs.count("gridftp.tainted_blocks_total",
                                  host=self.server.hostname)
                if rec is not None and not rec.is_empty:
                    series_out.append(rec.close(self.env.now))
            except FlowError as exc:
                delivered = exc.flow.transferred if exc.flow else 0.0
                moved += delivered
                handle._completed += delivered
                if delivered > 0:
                    markers.add(offset, offset + delivered)
                if exc.flow in handle._active_flows:
                    handle._active_flows.remove(exc.flow)
                if rec is not None and not rec.is_empty:
                    series_out.append(rec.close(self.env.now))
                failed.append((offset + delivered, block - delivered))
                conn.close()
                return moved
        return moved

    def _watch(self, conn: Connection, flow):
        """Stall watchdog for one block (mirrors Connection.send)."""
        env = self.env
        timeout = conn.params.stall_timeout
        poll = conn.params.poll_interval(timeout)
        last_progress = flow.transferred
        last_change = env.now
        while flow.active:
            tick = env.timeout(poll)
            yield env.any_of([flow.done, tick])
            if flow.done.processed:
                break
            progress = flow.progress()
            if progress > last_progress + 1e-9:
                last_progress = progress
                last_change = env.now
            elif env.now - last_change >= timeout:
                flow.abort(f"stalled for {timeout:.0f}s")
                break
        _ = flow.done.value  # raises FlowError on abort

    def put(self, path: str, source_fs: FileSystem, source_host,
            dest_name: Optional[str] = None,
            record: bool = False,
            handle: Optional[TransferHandle] = None,
            config: Optional[GridFtpConfig] = None):
        """Simulation process: STOR a local file onto the server.

        Uploads are as restartable as downloads — interrupted blocks
        are retried from restart markers, up to ``retry_limit``.
        """
        cfg = config or self.client.config
        file = source_fs.stat(path)
        yield from self._command()
        src = source_host.store_node
        dst = self.server.data_node
        stats = TransferStats(path=path, requested_bytes=file.size,
                              started_at=self.env.now,
                              streams=cfg.parallelism)
        if handle is None:
            handle = TransferHandle(self.env, path, file.size)
        else:
            handle.begin_attempt(file.size)
        yield from self._pump_blocks(path, src, dst, file.size, cfg,
                                     stats, handle, record)
        yield from self._command()
        self.server.store(dest_name or path, file.size,
                          content=file.content)
        stats.finished_at = self.env.now
        handle._completed = file.size
        handle.done.succeed(stats)
        self._record_transfer("put", stats, handle)
        return stats

    def _pump_blocks(self, path: str, src: str, dst: str, nbytes: float,
                     cfg: GridFtpConfig, stats: TransferStats,
                     handle: TransferHandle, record: bool,
                     rate_cap: Optional[float] = None):
        """Shared restartable block pump for RETR and STOR.

        Opens ``cfg.parallelism`` data channels, drains the block queue,
        requeues what failed, and retries with backoff until done or
        ``retry_limit`` is exhausted (426). ``rate_cap`` (cut-through)
        bounds the *aggregate* rate: it is split evenly across the open
        channels so the sum can never exceed the tape readahead.
        """
        env = self.env
        buffer_bytes = self.client.negotiate_buffer(src, dst, cfg)
        blocks = _make_blocks(nbytes, cfg.parallelism)
        markers = RestartMarkers()
        stats.restart_markers = markers
        completed = 0.0
        attempts = 0
        while blocks:
            if handle.aborted:
                raise GridFtpError(FtpReply(TRANSFER_ABORTED,
                                            handle.abort_reason))
            try:
                channels = yield from self.client._open_channels(
                    src, dst, cfg, buffer_bytes)
            except GridFtpError as exc:
                # Path currently unreachable (e.g. mid-outage): that is a
                # transient condition — back off and retry like any other
                # interrupted attempt.
                if not exc.transient:
                    raise
                channels = []
            if not channels:
                attempts += 1
                stats.restarts += 1
                if self.client.obs is not None:
                    self.client.obs.count("gridftp.restarts_total",
                                          reason="no_channels")
                stats.faults.append((env.now, "no data channels"))
                if attempts > cfg.retry_limit:
                    raise GridFtpError(FtpReply(
                        TRANSFER_ABORTED,
                        f"{path}: cannot open data channels to {dst} "
                        f"after {attempts} attempts"))
                yield env.timeout(cfg.retry_backoff)
                continue
            stats.channel_reused = stats.channel_reused or any(
                c.transfers > 0 for c in channels)
            queue = list(blocks)
            failed: List[Tuple[float, float]] = []
            per_channel = (rate_cap / len(channels)
                           if rate_cap is not None else None)
            workers = [env.process(self._channel_worker(
                conn, queue, failed, stats.series if record else None,
                handle, path, markers, rate_cap=per_channel))
                for conn in channels]
            results = yield env.all_of(workers)
            moved = sum(results.values())
            completed += moved
            stats.transferred_bytes += moved
            # Unfinished work: blocks whose channel died, plus blocks no
            # channel ever pulled (every channel died).
            blocks = failed + queue
            for conn in channels:
                if conn.open:
                    self.client._release_channel(conn, cfg)
            if blocks:
                attempts += 1
                stats.restarts += 1
                if self.client.obs is not None:
                    self.client.obs.count("gridftp.restarts_total",
                                          reason="blocks_lost")
                stats.faults.append((env.now, f"{len(blocks)} blocks lost"))
                if handle.aborted:
                    raise GridFtpError(FtpReply(TRANSFER_ABORTED,
                                                handle.abort_reason))
                if attempts > cfg.retry_limit:
                    raise GridFtpError(FtpReply(
                        TRANSFER_ABORTED,
                        f"{path}: {completed:.0f}/{nbytes:.0f}B after "
                        f"{attempts} attempts"))
                yield env.timeout(cfg.retry_backoff)


class GridFtpClient:
    """Factory for sessions; owns config, credentials, and channel cache.

    Parameters
    ----------
    env, transport:
        Simulation environment and transport layer.
    registry:
        hostname → :class:`GridFtpServer` (the simulated "network" of
        grid-enabled endpoints).
    credential_chain:
        The user's (proxy) credential chain for GSI.
    config:
        Default :class:`GridFtpConfig` for transfers.
    """

    def __init__(self, env: Environment, transport: Transport,
                 registry: Dict[str, GridFtpServer],
                 credential_chain: tuple = (),
                 config: Optional[GridFtpConfig] = None,
                 client_name: str = "client", obs=None):
        self.env = env
        self.transport = transport
        self.registry = registry
        self.credential_chain = credential_chain
        self.config = config or GridFtpConfig()
        self.client_name = client_name
        self.obs = obs          # optional repro.obs.Observability bundle
        self.channel_cache = DataChannelCache(env)
        self._stream_serial = 0

    def _count_connect(self, hostname: str, outcome: str) -> None:
        if self.obs is not None:
            self.obs.count("gridftp.connects_total", host=hostname,
                           outcome=outcome)

    # -- session management ---------------------------------------------------
    def connect(self, client_host, hostname: str,
                config: Optional[GridFtpConfig] = None):
        """Simulation process: open an authenticated control session."""
        server = self.registry.get(hostname)
        if server is None:
            self._count_connect(hostname, "unknown")
            raise GridFtpError(FtpReply(CANT_OPEN_DATA,
                                        f"unknown server {hostname!r}"))
        if not server.up:
            self._count_connect(hostname, "down")
            raise GridFtpError(FtpReply(
                CANT_OPEN_DATA, f"server {hostname} refused connection "
                "(down)"))
        if not server.try_accept():
            # At its connection limit the daemon rejects outright (421)
            # instead of queueing silently — visible backpressure.
            self._count_connect(hostname, "busy")
            raise GridFtpError(FtpReply(
                SERVICE_UNAVAILABLE,
                f"server {hostname} refused connection (busy: "
                f"{server.max_connections} sessions)"))
        cfg = config or self.config
        try:
            control = yield from self.transport.connect(
                client_host.node, hostname,
                TcpParams(stall_timeout=cfg.stall_timeout,
                          stall_poll=cfg.stall_poll))
        except ConnectionRefused as exc:
            server.release_connection()
            self._count_connect(hostname, "refused")
            raise GridFtpError(FtpReply(CANT_OPEN_DATA, str(exc))) from exc
        rtt = self.transport.network.topology.rtt(
            client_host.node, server.control_node)
        try:
            subjects = yield from server.authenticate(
                self.credential_chain, rtt)
        except AuthenticationError as exc:
            control.close()
            server.release_connection()
            self._count_connect(hostname, "auth")
            raise GridFtpError(FtpReply(530, str(exc))) from exc
        self._count_connect(hostname, "ok")
        return ClientSession(self, server, control, subjects)

    # -- data channel pool --------------------------------------------------------
    def negotiate_buffer(self, src: str, dst: str,
                         cfg: GridFtpConfig) -> float:
        """SBUF value: explicit, or the path's bandwidth–delay product."""
        if cfg.buffer_bytes is not None:
            return cfg.buffer_bytes
        topo = self.transport.network.topology
        rtt = topo.rtt(src, dst)
        bottleneck = topo.bottleneck_capacity(src, dst)
        return max(bdp_buffer_size(bottleneck, rtt), 64 * 1024.0)

    def _open_channels(self, src: str, dst: str, cfg: GridFtpConfig,
                       buffer_bytes: float):
        """Simulation process: acquire ``cfg.parallelism`` data channels."""
        channels: List[Connection] = []
        needed = cfg.parallelism
        if cfg.channel_caching:
            while len(channels) < needed:
                cached = self.channel_cache.acquire(src, dst)
                if cached is None:
                    break
                channels.append(cached)
        params = TcpParams(buffer_bytes=buffer_bytes,
                           stall_timeout=cfg.stall_timeout,
                           stall_poll=cfg.stall_poll,
                           loss_rate=cfg.loss_rate)
        while len(channels) < needed:
            try:
                # A unique stream counter keeps loss processes on
                # successive connections independent.
                self._stream_serial += 1
                conn = yield from self.transport.connect(
                    src, dst, params,
                    rng=self.env.rng.spawn("gridftp.loss",
                                           self._stream_serial))
            except ConnectionRefused as exc:
                if channels:
                    break  # work with what we have
                raise GridFtpError(FtpReply(CANT_OPEN_DATA,
                                            str(exc))) from exc
            channels.append(conn)
        return channels

    def _release_channel(self, conn: Connection, cfg: GridFtpConfig) -> None:
        if cfg.channel_caching:
            self.channel_cache.release(conn)
        else:
            conn.close()

    # -- third-party transfers -------------------------------------------------------
    def third_party_copy(self, control_host, src_hostname: str,
                         dst_hostname: str, path: str,
                         dest_name: Optional[str] = None,
                         record: bool = False,
                         config: Optional[GridFtpConfig] = None):
        """Simulation process: server-to-server copy under client control.

        "Third-party control of data transfer that allows a user or
        application at one site to initiate, monitor and control a data
        transfer operation between two other sites." (§6.1)
        """
        cfg = config or self.config
        src_session = yield from self.connect(control_host, src_hostname,
                                              cfg)
        dst_session = yield from self.connect(control_host, dst_hostname,
                                              cfg)
        dst_server = dst_session.server
        try:
            stats = yield from src_session.get(
                path, dst_server.fs, dst_server.host,
                dest_name=dest_name, record=record, config=cfg)
        finally:
            src_session.close()
            dst_session.close()
        return stats


def _make_blocks(nbytes: float, parallelism: int
                 ) -> List[Tuple[float, float]]:
    """Cut a transfer into a work queue of ``(offset, length)`` blocks.

    More blocks than channels (×4) so channels that finish early keep
    pulling work — a fluid-scale stand-in for extended-block mode. The
    offsets let the pump keep GridFTP restart markers per byte range.
    """
    if nbytes <= 0:
        return []
    n_blocks = max(1, parallelism * _BLOCKS_PER_CHANNEL)
    if nbytes / n_blocks < _MIN_BLOCK:
        n_blocks = max(1, int(nbytes // _MIN_BLOCK))
    block = nbytes / n_blocks
    blocks = [(i * block, block) for i in range(n_blocks)]
    # Fix rounding drift on the last block.
    last_off = (n_blocks - 1) * block
    blocks[-1] = (last_off, nbytes - last_off)
    return blocks
