"""Command-line interface: the paper's experiments from a shell.

Installed as the ``repro`` console script::

    repro demo                 # the quickstart flow (browse/fetch/render)
    repro table1 [--minutes N] # the SC'2000 striped-transfer experiment
    repro figure8 [--hours N]  # the commodity-internet reliability run
    repro browse               # list the synthetic archive
    repro portal VAR           # an ESG-II server-side subset request
    repro trace                # per-file NetLogger lifelines of a demo run
    repro metrics [--json]     # the same run's metrics registry
    repro slo                  # per-tenant SLO burn-rate evaluation
    repro report [--files N]   # campaign reconciliation certificate
    repro catalog [--sites N]  # federated replica catalog walkthrough
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_demo(args) -> int:
    from repro.esg import EarthSystemGrid
    esg = EarthSystemGrid.demo_testbed(seed=args.seed)
    result, viz = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "tas",
                                        months=(6, 8))
    print(viz)
    print(f"\n{len(result.logical_files)} files from "
          f"{sorted(set(f.chosen_location for f in result.ticket.files))} "
          f"in {result.transfer_seconds:.1f} simulated seconds")
    return 0


def _cmd_browse(args) -> int:
    from repro.esg import EarthSystemGrid
    esg = EarthSystemGrid.demo_testbed(seed=args.seed, materialize=False)
    for entry in esg.browse():
        variables = ", ".join(v["name"] for v in entry["variables"])
        print(f"{entry['dataset']:<28} model={entry['model']:<10} "
              f"files={entry['files']:>4}  [{variables}]")
    return 0


def _cmd_table1(args) -> int:
    from repro.scenarios import ScinetTestbed, run_table1_schedule
    duration = args.minutes * 60.0
    print(f"simulating the SC'2000 schedule for {args.minutes} min...",
          file=sys.stderr)
    result = run_table1_schedule(ScinetTestbed(seed=args.seed),
                                 duration=duration)
    for label, value in result.rows():
        print(f"{label:<48} {value}")
    return 0


def _cmd_figure8(args) -> int:
    from repro.net import FaultSchedule
    from repro.scenarios import CommodityTestbed, run_figure8_schedule
    from repro.scenarios.commodity import HOURS, default_fault_schedule
    duration = args.hours * HOURS
    faults = (default_fault_schedule() if args.hours >= 10
              else FaultSchedule()
              .site_outage("dallas", start=duration * 0.2,
                           duration=duration * 0.08,
                           description="SCinet power failure")
              .degrade("commodity:fwd", start=duration * 0.6,
                       duration=duration * 0.1, fraction=0.15,
                       description="backbone problems"))
    print(f"simulating {args.hours} h of repeated 2 GB transfers...",
          file=sys.stderr)
    result = run_figure8_schedule(CommodityTestbed(seed=args.seed),
                                  duration=duration, faults=faults,
                                  bin_seconds=duration / 100)
    peak = result.bin_rates.max() or 1.0
    for t, r in zip(result.bin_times, result.bin_rates):
        bar = "#" * int(46 * r / peak)
        print(f"{t / HOURS:6.2f} h {r * 8 / 1e6:7.1f} Mb/s {bar}")
    print(f"plateau {result.plateau_rate * 8 / 1e6:.1f} Mb/s; "
          f"{result.transfers_completed} transfers, "
          f"{result.restarts} restarts")
    return 0


def _cmd_portal(args) -> int:
    from repro.cdat import render_field
    from repro.scenarios import EsgTestbed
    tb = EsgTestbed(seed=args.seed, materialize=True,
                    sdbf_chunks={"time": 1, "lat": 8, "lon": 16})
    tb.warm_nws(90.0)

    if args.series:
        # Aggregation view: one request fans across the dataset's whole
        # file series at the best replicas; the user never sees files.
        def flow():
            series = yield from tb.portal.open_series(
                "pcmdi.ncar_csm.run1")
            return (yield from series.fetch(args.variable,
                                            operation="subset"))

        resp = tb.run_process(flow())
        field = resp.dataset[args.variable].data.mean(axis=0)
        title = (f"{args.variable}: annual mean over "
                 f"{resp.files}-file series")
    else:
        def flow():
            return (yield from tb.portal.request(
                "pcmdi.ncar_csm.run1", args.variable,
                operation="time_mean", months=(1, 1)))

        resp = tb.run_process(flow())
        field = resp.dataset[args.variable].data
        title = f"{args.variable}: server-side January mean"
    print(render_field(field, title=title, width=64, height=16))
    print(f"moved {resp.bytes_shipped / 1024:.1f} KB of "
          f"{resp.full_bytes / 1024:.1f} KB "
          f"({resp.reduction:.1f}x less than a full download); "
          f"servers decoded {resp.server_decoded_bytes / 1024:.1f} KB, "
          f"{resp.cache_hits} cache hits; from {resp.source_hostname}")
    return 0


def _demo_fetch(seed: int):
    """Run the demo fetch once; returns the instrumented testbed."""
    from repro.esg import EarthSystemGrid
    esg = EarthSystemGrid.demo_testbed(seed=seed)
    esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "tas", months=(6, 8))
    return esg.testbed


def _cmd_trace(args) -> int:
    from repro.netlogger import (failure_breakdown, reconstruct_lifelines,
                                 reconstruction_report, stage_breakdown,
                                 ttfb_values)
    tb = _demo_fetch(args.seed)
    lifelines = reconstruct_lifelines(tb.logger.records)
    lives = sorted(lifelines.values(),
                   key=lambda life: (life.requested_at or 0.0, life.file))
    print(reconstruction_report(lives, dropped=tb.logger.dropped).render())
    print(f"=== lifelines ({len(lives)} files, seed {args.seed}) ===")
    for life in lives:
        dur = (f"{life.duration:7.2f}s" if life.duration is not None
               else "      ?")
        ttfb = (f"{life.ttfb:6.3f}s" if life.ttfb is not None
                else "     ?")
        stages = " ".join(f"{name}={secs:.2f}" for name, secs
                          in life.stage_totals().items())
        mark = "" if life.complete else "  [INCOMPLETE]"
        print(f"{life.file:<44} {life.outcome or '?':<9} dur={dur} "
              f"ttfb={ttfb}  {stages}{mark}")
    print("\n=== per-stage latency ===")
    for stats in stage_breakdown(lives).values():
        print(f"{stats.name:<12} n={stats.count:<4} "
              f"mean={stats.mean:8.3f}s  max={stats.max:8.3f}s  "
              f"total={stats.total:8.3f}s")
    ttfbs = ttfb_values(lives)
    if ttfbs:
        print(f"\nTTFB: n={len(ttfbs)} "
              f"mean={sum(ttfbs) / len(ttfbs):.3f}s "
              f"max={max(ttfbs):.3f}s")
    failures = failure_breakdown(lives)
    if failures:
        print("failures: " + ", ".join(f"{cls}={n}" for cls, n
                                       in failures.items()))
    faults = sorted({(w.kind, w.target, w.start, w.end)
                     for life in lives for w in life.faults})
    if faults:
        print("\n=== fault windows touching lifelines ===")
        for kind, target, start, end in faults:
            print(f"{kind:<10} {target:<24} "
                  f"[{start:.1f}s .. {end:.1f}s]")
    if args.spans:
        print("\n=== spans ===")
        for trace_id in tb.obs.tracer.traces():
            print(tb.obs.tracer.render_tree(trace_id))
    return 0


def _cmd_metrics(args) -> int:
    import json
    tb = _demo_fetch(args.seed)
    kernel = tb.env.kernel_stats
    if args.json:
        doc = tb.obs.metrics.to_json()
        doc["netlogger"] = {"emitted": tb.logger.emitted,
                            "dropped": tb.logger.dropped}
        doc["kernel"] = kernel
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        text = tb.obs.metrics.render_prometheus()
        print(text, end="" if text.endswith("\n") else "\n")
        # the event log's own health: a nonzero dropped count means
        # lifeline reconstruction downstream is working from holes.
        print(f"# netlogger_events_emitted {tb.logger.emitted}")
        print(f"# netlogger_events_dropped {tb.logger.dropped}")
        # simulator substrate health: dispatch volume and cancellation
        # hygiene of the event kernel behind everything above.
        print(f"# kernel_queue {kernel['queue']}")
        print(f"# kernel_events_scheduled {kernel['events_scheduled']}")
        print(f"# kernel_events_dispatched {kernel['events_dispatched']}")
        print(f"# kernel_events_cancelled {kernel['events_cancelled']}")
        print(f"# kernel_queue_compactions {kernel['queue_compactions']}")
    return 0


def _cmd_slo(args) -> int:
    from repro.net.units import mbps
    from repro.obs.slo import SloEngine, SloSpec
    from repro.rm.scheduler import SchedulerConfig
    from repro.scenarios import EsgTestbed

    tb = EsgTestbed(seed=args.seed, with_tape=True,
                    file_size_override=24 * 2**20,
                    scheduler=SchedulerConfig())
    tb.start_timeseries()
    engine = SloEngine(tb.env, tb.obs, eval_interval=15.0)
    engine.add(SloSpec("client-ttfb", "p95_ttfb",
                       threshold=args.ttfb, tenant="client",
                       long_window=240.0, short_window=60.0))
    engine.add(SloSpec("client-queue", "queue_wait_p95",
                       threshold=10.0, tenant="client",
                       long_window=240.0, short_window=60.0))
    engine.add(SloSpec("client-goodput", "goodput_floor",
                       threshold=mbps(1) / 8, tenant="client",
                       long_window=240.0, short_window=60.0))
    engine.start()
    tb.warm_nws(120.0)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:8]
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    tb.env.run(until=tb.env.now + 60.0)
    print(f"=== SLO summary at t={tb.env.now:.0f}s "
          f"(seed {args.seed}) ===")
    header = (f"{'slo':<16} {'tenant':<8} {'objective':<16} "
              f"{'value':>10} {'burn L/S':>12} {'state':<9} alerts")
    print(header)
    for row in engine.summary():
        value = ("-" if row["value"] is None
                 else f"{row['value']:.3f}")
        burn = f"{row['burn_long']:.2f}/{row['burn_short']:.2f}"
        state = "BREACHING" if row["breaching"] else "ok"
        print(f"{row['slo']:<16} {row['tenant']:<8} "
              f"{row['objective']:<16} {value:>10} {burn:>12} "
              f"{state:<9} {row['alerts']}")
    for alert in engine.alerts:
        closed = (f"closed {alert.closed_at:.0f}s"
                  if alert.closed_at is not None else "OPEN")
        print(f"breach: {alert.spec} tenant={alert.tenant} "
              f"opened {alert.opened_at:.0f}s {closed} "
              f"peak burn {alert.peak_burn:.2f}")
    return 0


def _cmd_report(args) -> int:
    from repro.campaign import (CampaignManifest, ReplicationCampaign,
                                plan_campaign, reconcile)
    from repro.data.digest import add_mark
    from repro.gridftp.protocol import GridFtpConfig
    from repro.net.units import mbps
    from repro.rm.scheduler import SchedulerConfig
    from repro.scenarios import EsgTestbed

    tb = EsgTestbed(seed=args.seed, with_tape=True,
                    file_size_override=16 * 2**20,
                    scheduler=SchedulerConfig())
    tb.warm_nws(90.0)
    cfg = GridFtpConfig(parallelism=4, verify_checksum=True)
    rm = tb.add_client("mirror", downlink=mbps(622), config=cfg)
    ds = tb.dataset_ids()[0]
    manifest, replicas = plan_campaign(tb.replica_catalog, [ds])
    manifest = CampaignManifest(manifest.entries[:args.files])
    campaign = ReplicationCampaign(tb.env, rm, manifest, replicas,
                                   obs=tb.obs, name="mirror",
                                   batch_size=4)
    done = campaign.start()
    tb.env.run(until=done)
    if args.inject_discrepancy:
        # tamper with a delivered copy after the fact: the certificate
        # must catch silent post-delivery corruption.
        victim = manifest.entries[0]
        if rm.dest_fs.exists(victim.logical_file):
            add_mark(rm.dest_fs.stat(victim.logical_file), "bitrot")
    report = reconcile(campaign)
    print(report.render())
    return report.exit_code


def _cmd_catalog(args) -> int:
    from repro.replica import FederatedReplicaCatalog
    from repro.sim.core import Environment

    env = Environment(seed=args.seed)
    sites = [f"site-{chr(ord('a') + i)}" for i in range(args.sites)]
    fed = FederatedReplicaCatalog(env, sites, replication=2,
                                  sync_interval=5.0,
                                  cache_ttl=args.cache_ttl)
    fed.start()
    collections = [f"pcmdi.demo.run{i:02d}"
                   for i in range(args.collections)]
    for coll in collections:
        files = [f"{coll}.nc{j:04d}" for j in range(args.files)]
        fed.create_collection(coll, description="CLI walkthrough")
        fed.register_location(coll, "origin", "gsiftp",
                              f"{fed.router.home(coll)}.example.org",
                              2811, "/archive", files)
        fed.register_location(coll, "mirror", "gsiftp",
                              "mirror.example.org", 2811, "/cache",
                              files[: max(1, args.files // 2)])
    fed.sync_now()

    # knock out the home shard of the first collection mid-run: its
    # lookups must degrade to partial answers served by the peer copy.
    victim = fed.router.home(collections[0])
    fed.sites[victim].directory.add_outage(start=10.0, duration=25.0)

    lost = [0]

    def driver():
        for i in range(args.lookups):
            coll = collections[i % len(collections)]
            name = f"{coll}.nc{(i * 7) % args.files:04d}"
            try:
                yield from fed.find_replicas(coll, name)
            except Exception as exc:
                lost[0] += 1
                print(f"t={env.now:6.1f}s  {name}: LOST ({exc})")
            yield env.timeout(1.0)
        # the stale-tolerance loop in miniature: a verify-on-open
        # mismatch demotes the entry, a home write refreshes it.
        coll = collections[0]
        name = f"{coll}.nc0000"
        fed.demote(coll, name, "mirror")
        hidden = yield from fed.find_replicas(coll, name)
        fed.add_file_to_location(coll, "origin", f"{coll}.extra")
        refreshed = yield from fed.find_replicas(coll, name)
        print(f"t={env.now:6.1f}s  demoted {name}@mirror: offered "
              f"{[loc.name for loc in hidden]}, after refresh "
              f"{[loc.name for loc in refreshed]}")

    proc = env.process(driver())
    env.run(until=proc)

    print(f"\n=== shard map ({args.collections} collections over "
          f"{args.sites} sites, seed {args.seed}) ===")
    for coll, prefs in sorted(fed.shard_map().items()):
        mark = "  [home was down 10-35s]" if prefs[0] == victim else ""
        print(f"{coll:<22} home={prefs[0]:<8} "
              f"peers={','.join(prefs[1:])}{mark}")
    stats = fed.stats()
    print("\n=== federation stats ===")
    print("entries/site  " + "  ".join(
        f"{site}={n}" for site, n in sorted(stats["sites"].items())))
    for key in ("queries", "cache_hits", "stale_hits", "partial_queries",
                "demotes", "refreshes", "replicated_ops",
                "conflicts_resolved", "syncs"):
        print(f"{key:<20} {stats[key]}")
    print(f"{'lookups_lost':<20} {lost[0]}")
    print("breakers      " + "  ".join(
        f"{site}={state}"
        for site, state in sorted(stats["breakers"].items())))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Earth System Grid prototype reproduction (SC 2001)")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed (default 7)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="quickstart: fetch + visualize")
    sub.add_parser("browse", help="list the synthetic archive")
    t1 = sub.add_parser("table1", help="the Table 1 experiment")
    t1.add_argument("--minutes", type=float, default=10.0)
    f8 = sub.add_parser("figure8", help="the Figure 8 experiment")
    f8.add_argument("--hours", type=float, default=2.0)
    pt = sub.add_parser("portal", help="ESG-II server-side request")
    pt.add_argument("variable", choices=["tas", "pr", "clt"])
    pt.add_argument("--series", action="store_true",
                    help="fan one request across the dataset's whole "
                         "file series (aggregation view)")
    tr = sub.add_parser("trace",
                        help="per-file lifelines of a demo fetch")
    tr.add_argument("--spans", action="store_true",
                    help="also print the causal span trees")
    mt = sub.add_parser("metrics",
                        help="metrics registry of a demo fetch")
    mt.add_argument("--json", action="store_true",
                    help="JSON export instead of Prometheus text")
    sl = sub.add_parser("slo",
                        help="per-tenant SLO burn-rate evaluation")
    sl.add_argument("--ttfb", type=float, default=2.0,
                    help="p95 TTFB bound in seconds (default 2.0)")
    rp = sub.add_parser(
        "report",
        help="run a mirror campaign and print its reconciliation "
             "certificate (exit 1 on discrepancies)")
    rp.add_argument("--files", type=int, default=8,
                    help="campaign size in files (default 8)")
    rp.add_argument("--inject-discrepancy", action="store_true",
                    help="corrupt one delivered file post-hoc (the "
                         "report must exit nonzero)")
    ct = sub.add_parser(
        "catalog",
        help="federated replica catalog walkthrough: sharded publish, "
             "fan-out lookups through a shard outage, demote/refresh")
    ct.add_argument("--sites", type=int, default=4,
                    help="site catalogs in the federation (default 4)")
    ct.add_argument("--collections", type=int, default=12,
                    help="logical collections to publish (default 12)")
    ct.add_argument("--files", type=int, default=40,
                    help="files per collection (default 40)")
    ct.add_argument("--lookups", type=int, default=48,
                    help="timed federated lookups to run (default 48)")
    ct.add_argument("--cache-ttl", type=float, default=5.0,
                    help="client lookup cache TTL in seconds (default 5)")
    return parser


_COMMANDS = {
    "demo": _cmd_demo,
    "browse": _cmd_browse,
    "table1": _cmd_table1,
    "figure8": _cmd_figure8,
    "portal": _cmd_portal,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "slo": _cmd_slo,
    "report": _cmd_report,
    "catalog": _cmd_catalog,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (console script ``repro``)."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
