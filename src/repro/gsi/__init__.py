"""Grid Security Infrastructure (GSI) stand-in.

GridFTP's first listed feature is "Grid Security Infrastructure (GSI)
support for robust and flexible authentication, integrity, and
confidentiality" (§6.1). This package reproduces the *semantics* that the
rest of the system depends on — certificate chains rooted at trusted CAs,
short-lived delegated proxy credentials, and a mutual-authentication
handshake with a real verification step and a simulated wire/crypto cost —
using toy hash-based signatures instead of RSA/X.509.
"""

from repro.gsi.credentials import (
    Certificate,
    CertificateAuthority,
    CredentialError,
    Identity,
    KeyPair,
    ProxyCertificate,
    TrustAnchors,
)
from repro.gsi.auth import AuthenticationError, GsiContext, SecurityPolicy

__all__ = [
    "AuthenticationError",
    "Certificate",
    "CertificateAuthority",
    "CredentialError",
    "GsiContext",
    "Identity",
    "KeyPair",
    "ProxyCertificate",
    "SecurityPolicy",
    "TrustAnchors",
]
