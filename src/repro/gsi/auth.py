"""Mutual authentication and the cost it adds to connection setup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.gsi.credentials import (
    Certificate,
    CredentialError,
    TrustAnchors,
)
from repro.sim.core import Environment


class AuthenticationError(Exception):
    """Mutual authentication failed."""


@dataclass(frozen=True)
class SecurityPolicy:
    """Handshake cost model and authorization hook.

    GSI mutual auth over SSL costs extra round trips plus asymmetric
    crypto time on both ends; this is a visible component of small-file
    transfer latency and of the no-channel-caching dips in Figure 8.

    Attributes
    ----------
    handshake_rtts:
        Extra round trips for the SSL/GSI exchange.
    crypto_time:
        CPU seconds spent on signature/key operations per endpoint.
    """

    handshake_rtts: float = 2.0
    crypto_time: float = 0.05

    def handshake_cost(self, rtt: float) -> float:
        """Seconds added to connection establishment."""
        return self.handshake_rtts * rtt + 2 * self.crypto_time


class GsiContext:
    """A security context pairing credentials with a trust registry."""

    def __init__(self, trust: TrustAnchors,
                 policy: SecurityPolicy = SecurityPolicy()):
        self.trust = trust
        self.policy = policy
        self.handshakes = 0  # instrumentation
        self.rejections = 0

    def authenticate(self, env: Environment,
                     client_chain: Tuple[Certificate, ...],
                     server_chain: Tuple[Certificate, ...],
                     rtt: float):
        """Simulation process: mutual authentication.

        Verifies both chains against the trust anchors, charges the
        handshake cost, and returns (client_subject, server_subject).
        Raises :class:`AuthenticationError` on any verification failure
        (after the wire cost — failures are not free).
        """
        yield env.timeout(self.policy.handshake_cost(rtt))
        try:
            client = self.trust.verify_chain(client_chain, env.now)
            server = self.trust.verify_chain(server_chain, env.now)
        except CredentialError as exc:
            self.rejections += 1
            raise AuthenticationError(str(exc)) from exc
        self.handshakes += 1
        return client, server
