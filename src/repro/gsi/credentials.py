"""Toy certificates, CAs, and delegated proxies.

Signatures are keyed SHA-256 digests: sign(payload) with a private key is
``sha256(private || payload)``, and verification recomputes with the
claimed signer's private key via the trust registry. This is obviously
not real public-key cryptography — it preserves the *structure* (who can
mint what, what a verifier must check, how delegation chains extend)
without pulling in a crypto library.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class CredentialError(Exception):
    """A credential is malformed, expired, or has a bad signature."""


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass(frozen=True)
class KeyPair:
    """A toy keypair: public = H(private)."""

    private: str

    @property
    def public(self) -> str:
        return _digest("pub", self.private)

    @classmethod
    def generate(cls, seed: str) -> "KeyPair":
        return cls(private=_digest("priv", seed))

    def sign(self, payload: str) -> str:
        """Keyed digest over ``payload``."""
        return _digest("sig", self.private, payload)


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to a public key.

    ``issuer`` names the signer; ``not_after`` is simulated time.
    """

    subject: str
    public_key: str
    issuer: str
    not_after: float
    signature: str

    @property
    def payload(self) -> str:
        return _digest("cert", self.subject, self.public_key, self.issuer,
                       repr(self.not_after))

    def is_expired(self, now: float) -> bool:
        return now > self.not_after


@dataclass(frozen=True)
class ProxyCertificate(Certificate):
    """A short-lived credential signed by an end-entity (delegation).

    ``delegation_depth`` counts hops from the original identity; GSI
    restricted proxies would carry policy here.
    """

    delegation_depth: int = 1


class CertificateAuthority:
    """Mints end-entity certificates."""

    def __init__(self, name: str, seed: Optional[str] = None):
        self.name = name
        self.keys = KeyPair.generate(seed or f"ca:{name}")

    def issue(self, subject: str, public_key: str,
              not_after: float = float("inf")) -> Certificate:
        """Sign a certificate for ``subject``."""
        unsigned = Certificate(subject, public_key, self.name, not_after, "")
        return Certificate(subject, public_key, self.name, not_after,
                           self.keys.sign(unsigned.payload))


class TrustAnchors:
    """The verifier's set of trusted CAs (and known end entities).

    With toy symmetric signatures, verification needs the signer's key
    material, so the registry holds :class:`KeyPair` per name; what
    matters for the model is *which* names a site chooses to trust.
    """

    def __init__(self):
        self._keys: Dict[str, KeyPair] = {}

    def trust_ca(self, ca: CertificateAuthority) -> None:
        """Add a CA to the trusted set."""
        self._keys[ca.name] = ca.keys

    def register_entity(self, name: str, keys: KeyPair) -> None:
        """Record an end entity's keys (needed to check proxy signatures)."""
        self._keys[name] = keys

    def verify(self, cert: Certificate, now: float) -> None:
        """Raise :class:`CredentialError` unless the cert checks out."""
        if cert.is_expired(now):
            raise CredentialError(f"certificate for {cert.subject!r} "
                                  f"expired at {cert.not_after}")
        signer = self._keys.get(cert.issuer)
        if signer is None:
            raise CredentialError(f"untrusted issuer {cert.issuer!r}")
        if signer.sign(cert.payload) != cert.signature:
            raise CredentialError(f"bad signature on {cert.subject!r}")

    def verify_chain(self, chain: Tuple[Certificate, ...], now: float) -> str:
        """Verify an end-entity + proxies chain; returns the subject.

        The chain is ordered leaf-first: [proxy..., end-entity-cert]. Each
        proxy must be signed by the next element's subject.
        """
        if not chain:
            raise CredentialError("empty credential chain")
        for cert, parent in zip(chain, chain[1:]):
            if cert.issuer != parent.subject:
                raise CredentialError(
                    f"chain break: {cert.subject!r} issued by "
                    f"{cert.issuer!r}, expected {parent.subject!r}")
        self.verify(chain[-1], now)
        for cert in chain[:-1]:
            if cert.is_expired(now):
                raise CredentialError(
                    f"proxy for {cert.subject!r} expired")
            signer = self._keys.get(cert.issuer)
            if signer is None:
                raise CredentialError(
                    f"unknown delegator {cert.issuer!r}")
            if signer.sign(cert.payload) != cert.signature:
                raise CredentialError(f"bad proxy signature "
                                      f"({cert.subject!r})")
        return chain[-1].subject


class Identity:
    """An end entity: keys, a CA-issued certificate, and proxy minting."""

    _serial = itertools.count(1)

    def __init__(self, subject: str, ca: CertificateAuthority,
                 trust: TrustAnchors, not_after: float = float("inf")):
        self.subject = subject
        self.keys = KeyPair.generate(f"id:{subject}:{next(self._serial)}")
        self.certificate = ca.issue(subject, self.keys.public, not_after)
        trust.register_entity(subject, self.keys)
        self.chain: Tuple[Certificate, ...] = (self.certificate,)

    def make_proxy(self, now: float, lifetime: float = 12 * 3600.0,
                   depth: int = 1) -> Tuple[Certificate, ...]:
        """Mint a delegated proxy chain valid for ``lifetime`` seconds."""
        proxy_subject = f"{self.subject}/proxy"
        proxy_keys = KeyPair.generate(f"proxy:{proxy_subject}:{now}")
        unsigned = ProxyCertificate(proxy_subject, proxy_keys.public,
                                    self.subject, now + lifetime, "",
                                    delegation_depth=depth)
        proxy = ProxyCertificate(proxy_subject, proxy_keys.public,
                                 self.subject, now + lifetime,
                                 self.keys.sign(unsigned.payload),
                                 delegation_depth=depth)
        return (proxy,) + self.chain

    def __repr__(self) -> str:
        return f"Identity({self.subject!r})"
