"""Shared resources for simulation processes.

- :class:`Resource` — N interchangeable slots (e.g. tape drives).
- :class:`PriorityResource` — slots granted lowest-priority-value-first.
- :class:`Store` — a FIFO buffer of Python objects (e.g. a staging queue).
- :class:`Container` — a continuous level (e.g. disk cache bytes).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_seq")

    def __init__(self, env: "Environment", resource: "Resource",
                 priority: int = 0):
        super().__init__(env)
        self.resource = resource
        self.priority = priority
        self._seq = 0

    def cancel(self) -> None:
        """Withdraw an ungranted request (granted requests must release)."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` interchangeable slots, granted FIFO.

    Usage inside a process::

        req = resource.request()
        yield req
        ... hold the slot ...
        resource.release(req)
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list = []
        self._waiting: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self.env, self, priority)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self._enqueue(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted slot."""
        try:
            self.users.remove(req)
        except ValueError:
            raise RuntimeError("releasing a request that holds no slot")
        self._grant_next()

    # -- queue policy (overridden by PriorityResource) ---------------------
    def _enqueue(self, req: Request) -> None:
        self._waiting.append(req)

    def _dequeue(self) -> Optional[Request]:
        return self._waiting.popleft() if self._waiting else None

    def _cancel(self, req: Request) -> None:
        if req in self.users:
            raise RuntimeError("cannot cancel a granted request; release it")
        try:
            self._waiting.remove(req)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._dequeue()
            if nxt is None:
                return
            self.users.append(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority.

    Lower ``priority`` values are granted first; ties are FIFO.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: list = []
        self._seq = 0

    @property
    def queue_length(self) -> int:
        return len(self._heap)

    def _enqueue(self, req: Request) -> None:
        self._seq += 1
        req._seq = self._seq
        heapq.heappush(self._heap, (req.priority, req._seq, req))

    def _dequeue(self) -> Optional[Request]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def _cancel(self, req: Request) -> None:
        if req in self.users:
            raise RuntimeError("cannot cancel a granted request; release it")
        self._heap = [entry for entry in self._heap if entry[2] is not req]
        heapq.heapify(self._heap)


class Store:
    """An unbounded-or-bounded FIFO buffer of arbitrary items."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()  # (event, item)

    def put(self, item: Any) -> Event:
        """Add ``item``; fires when the item has been accepted."""
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the oldest item (optionally, oldest matching)."""
        ev = Event(self.env)
        self._getters.append((ev, predicate))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # admit queued puts while there is room
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed(item)
                progressed = True
            # satisfy queued gets
            i = 0
            while i < len(self._getters) and self.items:
                ev, pred = self._getters[i]
                match_idx = None
                if pred is None:
                    match_idx = 0
                else:
                    for j, candidate in enumerate(self.items):
                        if pred(candidate):
                            match_idx = j
                            break
                if match_idx is None:
                    i += 1
                    continue
                item = self.items[match_idx]
                del self.items[match_idx]
                del self._getters[i]
                ev.succeed(item)
                progressed = True


class Container:
    """A continuous quantity with blocking put/get (e.g. cache bytes)."""

    def __init__(self, env: "Environment", capacity: float = float("inf"),
                 init: float = 0.0):
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque = deque()  # (event, amount)
        self._putters: deque = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires once it fits under ``capacity``."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Withdraw ``amount``; fires once the level covers it."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity + 1e-9:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if self._level >= amount - 1e-9:
                    self._getters.popleft()
                    self._level = max(0.0, self._level - amount)
                    ev.succeed(amount)
                    progressed = True
