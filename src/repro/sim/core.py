"""The simulation environment: clock + event queue + scheduler."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional, Union

from repro.sim.events import AllOf, AnyOf, Event, EventPriority, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. running a finished simulation)."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at a target event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class _CallbackEvent(Event):
    """Internal: re-delivers a callback for an already-processed event."""

    __slots__ = ("_fn", "_orig")

    def __init__(self, env: "Environment", fn: Callable, orig: Event):
        super().__init__(env)
        self._fn = fn
        self._orig = orig
        self._triggered = True
        env.schedule(self)

    def _process(self) -> None:
        self._processed = True
        self.callbacks = None
        self._fn(self._orig)


class Environment:
    """Discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    seed:
        Seed for the environment's named random streams (``env.rng``).

    Example
    -------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5
    """

    def __init__(self, initial_time: float = 0.0, seed: int = 0):
        self._now = float(initial_time)
        self._queue: list = []  # (time, priority, seq, event)
        self._seq = 0
        self._n_cancelled = 0
        self.rng = RandomStreams(seed)
        self._active_process: Optional[Process] = None
        self._id_counters: dict = {}

    def next_id(self, kind: str) -> int:
        """Monotonic 1-based id for ``kind``, scoped to this environment.

        Replaces process-global ``itertools.count`` class counters:
        ids that end up in logs must be a function of the run, not of
        how many environments the process created before this one —
        otherwise same-seed replays diverge.
        """
        value = self._id_counters.get(kind, 0) + 1
        self._id_counters[kind] = value
        return value

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event firing when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event firing when at least one event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = EventPriority.NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, int(priority),
                                     self._seq, event))

    def schedule_callback(self, fn: Callable[[Event], None], event: Event) -> None:
        """Schedule ``fn(event)`` to run at the current time."""
        _CallbackEvent(self, fn, event)

    def cancel(self, event: Event) -> None:
        """Remove a scheduled event; its callbacks will never run.

        Intended for kernel-adjacent bookkeeping timers that nothing
        waits on (e.g. the fluid allocator's completion timer): the
        entry is skipped when it reaches the queue head, and the queue
        is compacted whenever cancelled entries outnumber live ones —
        superseded timers therefore cannot pile up over long runs.
        """
        if event._processed or event._cancelled:
            return
        event._cancelled = True
        self._n_cancelled += 1
        if (self._n_cancelled > 64
                and self._n_cancelled * 2 > len(self._queue)):
            self._queue = [entry for entry in self._queue
                           if not entry[3]._cancelled]
            heapq.heapify(self._queue)
            self._n_cancelled = 0

    def _discard_cancelled_head(self) -> None:
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._n_cancelled -= 1

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        self._discard_cancelled_head()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        self._discard_cancelled_head()
        if not self._queue:
            raise SimulationError("no more events")
        t, _prio, _seq, event = heapq.heappop(self._queue)
        if t < self._now - 1e-12:
            raise SimulationError(f"time went backwards: {t} < {self._now}")
        self._now = max(self._now, t)
        event._process()

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue drains;
            a number — run until the clock reaches that time;
            an :class:`Event` — run until that event is processed, and
            return its value.
        """
        if until is None:
            while True:
                self._discard_cancelled_head()
                if not self._queue:
                    return None
                self.step()
        if isinstance(until, Event):
            target = until

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev._value if ev._exc is None else ev._exc)

            target.add_callback(_stop)
            try:
                while True:
                    self._discard_cancelled_head()
                    if not self._queue:
                        break
                    self.step()
            except StopSimulation as stop:
                if target._exc is not None:
                    raise target._exc
                return stop.value
            raise SimulationError(
                "event queue drained before the target event fired")
        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}: clock already at {self._now}")
        while True:
            self._discard_cancelled_head()
            if not (self._queue and self._queue[0][0] <= horizon):
                break
            self.step()
        self._now = horizon
        return None
