"""The simulation environment: clock + event queue + scheduler.

Two queue backends share the ``schedule`` / ``cancel`` / ``step`` /
``run`` API and produce *identical* dispatch order (time, then
priority, then schedule sequence):

- ``queue="calendar"`` (default) — a slotted calendar queue: events are
  binned into fixed-width time buckets held in a dict, with a small heap
  of populated bucket indices. The current bucket is filtered of
  cancelled entries and sorted *once*, then consumed by a position
  pointer (batched same-instant dispatch); arrivals landing in the
  already-open bucket (typically zero-delay wakeups) go to a small
  overflow heap that is merged at the head by exact key comparison.
  Scheduling into a future bucket allocates no per-event tuple — the
  sort key lives in ``Event.__slots__`` — and cancellation is O(1): the
  entry is skipped when it reaches the head, never compacted.
- ``queue="heap"`` — the original binary heap of
  ``(time, priority, seq, event)`` tuples, retained for differential
  testing. Cancellation marks the event and compacts only when
  cancelled entries outnumber live ones 2:1, so a mass cancellation of
  n events triggers at most O(log n) heapify passes.
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from typing import Any, Callable, Generator, Optional, Union

from repro.sim.events import AllOf, AnyOf, Event, EventPriority, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStreams

_SORT_KEY = attrgetter("_t", "_prio", "_seq")

#: Default calendar-bucket width (simulated seconds). Wide enough that
#: bursty same-instant traffic lands in one bucket (one sort, pointer
#: consumption), narrow enough that a bucket rarely mixes events from
#: far-apart instants.
DEFAULT_BUCKET_WIDTH = 0.25


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. running a finished simulation)."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at a target event."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class _CallbackEvent(Event):
    """Internal: re-delivers a callback for an already-processed event."""

    __slots__ = ("_fn", "_orig")

    def __init__(self, env: "Environment", fn: Callable, orig: Event):
        super().__init__(env)
        self._fn = fn
        self._orig = orig
        self._triggered = True
        env.schedule(self)

    def _process(self) -> None:
        self._processed = True
        self.callbacks = None
        self._fn(self._orig)


class Environment:
    """Discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    seed:
        Seed for the environment's named random streams (``env.rng``).
    queue:
        Event-queue backend: ``"calendar"`` (default) or ``"heap"``.
        Both dispatch in exactly the same order; the heap is kept for
        differential testing.
    bucket_width:
        Calendar-bucket width in simulated seconds (calendar mode only).

    Example
    -------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5
    """

    def __init__(self, initial_time: float = 0.0, seed: int = 0,
                 queue: str = "calendar",
                 bucket_width: float = DEFAULT_BUCKET_WIDTH):
        if queue not in ("calendar", "heap"):
            raise ValueError(f"unknown queue backend {queue!r}")
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width!r}")
        self._now = float(initial_time)
        self.queue_kind = queue
        self._use_heap = queue == "heap"
        self._seq = 0
        # Cancelled entries still resident in the queue structures.
        self._n_cancelled = 0
        # Live (scheduled, not yet dispatched or cancelled) events.
        self._n_live = 0
        # Lifetime kernel counters (see :attr:`kernel_stats`).
        self._n_scheduled = 0
        self._n_dispatched = 0
        self._n_cancel_calls = 0
        self._n_compactions = 0
        if self._use_heap:
            self._queue: list = []  # (time, priority, seq, event)
        else:
            self._t0 = self._now
            self._inv_width = 1.0 / float(bucket_width)
            self._slots: dict = {}      # bucket index -> unsorted [Event]
            self._slot_heap: list = []  # populated bucket indices
            self._cur_slot = -1         # index of the bucket open in _ready
            self._ready: list = []      # current bucket, sorted, live prefix
            self._ready_pos = 0
            self._overflow: list = []   # (time, prio, seq, event) in cur slot
            self._head_in_overflow = False
        self.rng = RandomStreams(seed)
        self._active_process: Optional[Process] = None
        self._id_counters: dict = {}

    def next_id(self, kind: str) -> int:
        """Monotonic 1-based id for ``kind``, scoped to this environment.

        Replaces process-global ``itertools.count`` class counters:
        ids that end up in logs must be a function of the run, not of
        how many environments the process created before this one —
        otherwise same-seed replays diverge.
        """
        value = self._id_counters.get(kind, 0) + 1
        self._id_counters[kind] = value
        return value

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event firing when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event firing when at least one event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = EventPriority.NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        self._seq += 1
        self._n_scheduled += 1
        self._n_live += 1
        t = self._now + delay
        event._t = t
        event._prio = int(priority)
        event._seq = self._seq
        if self._use_heap:
            heapq.heappush(self._queue, (t, event._prio, self._seq, event))
            return
        slot = int((t - self._t0) * self._inv_width)
        if slot <= self._cur_slot:
            # Lands in (or before) the bucket already open for dispatch:
            # merge at the head through the overflow heap.
            heapq.heappush(self._overflow, (t, event._prio, self._seq, event))
            return
        bucket = self._slots.get(slot)
        if bucket is None:
            self._slots[slot] = [event]
            heapq.heappush(self._slot_heap, slot)
        else:
            bucket.append(event)

    def schedule_callback(self, fn: Callable[[Event], None], event: Event) -> None:
        """Schedule ``fn(event)`` to run at the current time."""
        _CallbackEvent(self, fn, event)

    def cancel(self, event: Event) -> None:
        """Remove a scheduled event; its callbacks will never run.

        Cancellation is O(1): the entry is marked and skipped when it
        reaches the queue head. To bound memory (not correctness), the
        backing store is swept of dead entries only once cancelled
        entries outnumber live ones 2:1 past a 64-entry watermark —
        each sweep removes at least two thirds of the residents, so a
        mass cancellation of n events triggers at most O(log n) sweeps
        (heapify passes in heap mode, plain bucket filters in calendar
        mode).
        """
        if event._processed or event._cancelled:
            return
        event._cancelled = True
        self._n_cancel_calls += 1
        if not event._triggered:
            return  # never scheduled; nothing resident in the queue
        self._n_cancelled += 1
        self._n_live -= 1
        if self._n_cancelled > 64 and self._n_cancelled > 2 * self._n_live:
            if self._use_heap:
                self._queue = [entry for entry in self._queue
                               if not entry[3]._cancelled]
                heapq.heapify(self._queue)
            else:
                self._compact_calendar()
            self._n_cancelled = 0
            self._n_compactions += 1

    def _compact_calendar(self) -> None:
        """Sweep cancelled entries out of the calendar structures.

        No heapify over events is ever needed: buckets are unsorted
        lists and the slot-index heap is left untouched — a bucket
        emptied here leaves a stale index behind, skipped at advance.
        """
        self._ready = [e for e in self._ready[self._ready_pos:]
                       if not e._cancelled]
        self._ready_pos = 0
        self._overflow = [entry for entry in self._overflow
                          if not entry[3]._cancelled]
        heapq.heapify(self._overflow)
        for slot in list(self._slots):
            bucket = [e for e in self._slots[slot] if not e._cancelled]
            if bucket:
                self._slots[slot] = bucket
            else:
                del self._slots[slot]

    # -- queue head ---------------------------------------------------------
    def _settle_head(self) -> Optional[Event]:
        """Return the next live event without consuming it, or None.

        Discards cancelled entries on the way and, in calendar mode,
        advances to the next populated bucket when the current one is
        drained.
        """
        if self._use_heap:
            q = self._queue
            while q and q[0][3]._cancelled:
                heapq.heappop(q)
                self._n_cancelled -= 1
            return q[0][3] if q else None
        while True:
            ready = self._ready
            pos = self._ready_pos
            n = len(ready)
            while pos < n and ready[pos]._cancelled:
                pos += 1
                self._n_cancelled -= 1
            self._ready_pos = pos
            ov = self._overflow
            while ov and ov[0][3]._cancelled:
                heapq.heappop(ov)
                self._n_cancelled -= 1
            if pos < n:
                ev = ready[pos]
                if ov and ov[0][:3] < (ev._t, ev._prio, ev._seq):
                    self._head_in_overflow = True
                    return ov[0][3]
                self._head_in_overflow = False
                return ev
            if ov:
                self._head_in_overflow = True
                return ov[0][3]
            if not self._slot_heap:
                return None
            slot = heapq.heappop(self._slot_heap)
            bucket = self._slots.pop(slot, None)
            if bucket is None:
                continue  # stale index left behind by a compaction sweep
            live = [e for e in bucket if not e._cancelled]
            self._n_cancelled -= len(bucket) - len(live)
            live.sort(key=_SORT_KEY)
            self._ready = live
            self._ready_pos = 0
            self._cur_slot = slot

    def _consume_head(self) -> None:
        if self._use_heap:
            heapq.heappop(self._queue)
        elif self._head_in_overflow:
            heapq.heappop(self._overflow)
        else:
            self._ready_pos += 1

    def _dispatch(self, event: Event) -> None:
        self._consume_head()
        t = event._t
        if t > self._now:
            self._now = t
        elif t < self._now - 1e-12:
            raise SimulationError(f"time went backwards: {t} < {self._now}")
        self._n_dispatched += 1
        self._n_live -= 1
        event._process()

    # -- introspection -------------------------------------------------------
    @property
    def kernel_stats(self) -> dict:
        """Lifetime kernel counters for the stats surface.

        ``queue_compactions`` counts heap-mode compaction (heapify)
        passes; it stays 0 in calendar mode, where cancellation never
        compacts.
        """
        return {
            "queue": self.queue_kind,
            "events_scheduled": self._n_scheduled,
            "events_dispatched": self._n_dispatched,
            "events_cancelled": self._n_cancel_calls,
            "queue_compactions": self._n_compactions,
        }

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._n_live

    def queue_depth(self) -> int:
        """Entries physically resident in the queue (live + cancelled).

        O(#populated buckets) in calendar mode; for tests asserting that
        cancelled timers cannot pile up over long runs.
        """
        if self._use_heap:
            return len(self._queue)
        return (len(self._ready) - self._ready_pos
                + len(self._overflow)
                + sum(len(b) for b in self._slots.values()))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        event = self._settle_head()
        return event._t if event is not None else float("inf")

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        event = self._settle_head()
        if event is None:
            raise SimulationError("no more events")
        self._dispatch(event)

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue drains;
            a number — run until the clock reaches that time;
            an :class:`Event` — run until that event is processed, and
            return its value.
        """
        if until is None:
            while True:
                event = self._settle_head()
                if event is None:
                    return None
                self._dispatch(event)
        if isinstance(until, Event):
            target = until

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev._value if ev._exc is None else ev._exc)

            target.add_callback(_stop)
            try:
                while True:
                    event = self._settle_head()
                    if event is None:
                        break
                    self._dispatch(event)
            except StopSimulation as stop:
                if target._exc is not None:
                    raise target._exc
                return stop.value
            raise SimulationError(
                "event queue drained before the target event fired")
        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}: clock already at {self._now}")
        while True:
            event = self._settle_head()
            if event is None or event._t > horizon:
                break
            self._dispatch(event)
        self._now = horizon
        return None
