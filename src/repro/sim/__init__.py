"""Discrete-event simulation kernel.

A small, deterministic, SimPy-flavoured kernel: an :class:`Environment`
drives a heap-ordered event queue; :class:`Process` objects are generator
coroutines that ``yield`` events (timeouts, resource requests, other
processes) and are resumed when those events fire.

The kernel is the substrate for every simulated component in ``repro``:
network flows, GridFTP servers, tape robots, NWS sensors, and the request
manager are all processes scheduled here.

Determinism: events firing at the same simulated time are ordered by
(priority, insertion sequence), and all randomness is drawn from named
seeded streams (:class:`RandomStreams`), so a given scenario+seed always
replays identically.
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    Interrupt,
    Timeout,
)
from repro.sim.core import Environment, SimulationError, StopSimulation
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "EventPriority",
    "Interrupt",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
