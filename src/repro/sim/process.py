"""Generator-coroutine processes for the simulation kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, EventPriority, Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment


class Process(Event):
    """A running coroutine; also an event that fires when it terminates.

    A process body is a generator that yields events::

        def body(env):
            yield env.timeout(1.0)
            result = yield some_other_process
            return result

    Yielding a failed event re-raises the failure inside the generator,
    where it can be caught. ``process.interrupt(cause)`` raises
    :class:`Interrupt` at the process's current yield point.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got "
                            f"{type(generator).__name__}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once at the current time.
        boot = Event(env)
        boot._triggered = True
        boot.add_callback(self._resume)
        env.schedule(boot, priority=EventPriority.URGENT)

    # -- public API -------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point.

        No-op semantics: interrupting a dead process is an error;
        a process cannot interrupt itself.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from the current target so the stale wake-up never lands.
        if self._target is not None:
            self._target.remove_callback(self._wake)
            self._target = None
        wake = Event(self.env)
        wake._triggered = True
        wake._exc = Interrupt(cause)
        wake._defused = True
        wake.add_callback(self._resume)
        self.env.schedule(wake, priority=EventPriority.URGENT)

    # -- kernel plumbing ----------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        env = self.env
        env._active_process = self
        try:
            while True:
                if trigger._exc is None:
                    try:
                        next_target = self._generator.send(trigger._value)
                    except StopIteration as stop:
                        self.succeed(stop.value)
                        return
                    except BaseException as exc:
                        # The body raised: the process fails; waiters see it,
                        # and with no waiters the kernel re-raises it.
                        self.fail(exc)
                        return
                else:
                    trigger.defuse()
                    try:
                        next_target = self._generator.throw(trigger._exc)
                    except StopIteration as stop:
                        self.succeed(stop.value)
                        return
                    except BaseException as exc:
                        self.fail(exc)
                        return
                if not isinstance(next_target, Event):
                    self.fail(TypeError(
                        f"process {self.name!r} yielded non-event "
                        f"{next_target!r}"))
                    return
                if next_target.env is not env:
                    raise ValueError("yielded event from another environment")
                if next_target._processed:
                    # Already done: consume its outcome immediately.
                    trigger = next_target
                    continue
                self._target = next_target
                next_target.add_callback(self._wake)
                return
        finally:
            env._active_process = None

    def _wake(self, ev: Event) -> None:
        self._target = None
        self._resume(ev)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
