"""Named, seeded random streams.

Every stochastic component draws from its own named stream so that adding a
new consumer of randomness never perturbs the draws seen by existing ones —
scenario results stay reproducible across code growth.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A registry of independent ``numpy`` generators keyed by name.

    >>> rng = RandomStreams(seed=42)
    >>> a = rng.stream("net.loss")
    >>> b = rng.stream("nws.probe")
    >>> a is rng.stream("net.loss")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """A fresh, unregistered generator for per-entity randomness."""
        digest = hashlib.sha256(
            f"{self.seed}:{name}:{index}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
