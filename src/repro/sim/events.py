"""Events for the simulation kernel.

An :class:`Event` moves through three states:

- *pending* — created, not yet triggered;
- *triggered* — given a value (or an exception) and scheduled on the
  environment's queue;
- *processed* — popped from the queue; its callbacks have run.

Processes wait on events by ``yield``-ing them; the kernel registers the
process as a callback. Yielding an already-processed event resumes the
process immediately (at the current simulated time).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same time.

    Lower values run first. URGENT is used for kernel-internal bookkeeping
    (e.g. interrupt delivery) that must precede ordinary events.
    """

    URGENT = 0
    NORMAL = 1
    LOW = 2


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies ``cause``, available as
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A single occurrence that processes may wait on.

    Parameters
    ----------
    env:
        The environment this event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_triggered",
                 "_processed", "_defused", "_cancelled",
                 # Queue sort key, written by Environment.schedule: the
                 # calendar backend keys buckets on these slots instead
                 # of allocating a (t, prio, seq, event) tuple per event.
                 "_t", "_prio", "_seq")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._defused = False
        self._cancelled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value and scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed."""
        if not self._triggered:
            raise RuntimeError("event value not yet available")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exc

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exc: BaseException, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event with an exception.

        Waiters see the exception re-raised at their ``yield``. If nobody
        ever waits, the environment raises it at processing time unless the
        event was :meth:`defused`.
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the outcome of another (for chaining)."""
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise it."""
        self._defused = True

    # -- callback plumbing ------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback is scheduled
        to run immediately (same simulated time, normal priority).
        """
        if self._processed:
            self.env.schedule_callback(fn, self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Unsubscribe ``fn`` if still registered (no-op otherwise)."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(fn)
            except ValueError:
                pass

    def _process(self) -> None:
        """Kernel hook: run callbacks exactly once."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        handled = bool(callbacks) or self._defused
        if callbacks:
            for fn in callbacks:
                fn(self)
        if self._exc is not None and not handled and not self._defused:
            raise self._exc

    def __repr__(self) -> str:
        state = ("processed" if self._processed
                 else "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env.schedule(self, delay=delay)


class Condition(Event):
    """Waits on several events; fires when ``evaluate`` says so.

    The value of a condition is a dict mapping each *fired* child event to
    its value (failed children propagate their exception instead).
    """

    __slots__ = ("events", "_evaluate", "_fired_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[int, int], bool]):
        super().__init__(env)
        self.events = tuple(events)
        self._evaluate = evaluate
        self._fired_count = 0
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all events must share one environment")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev._exc is not None:
            ev.defuse()
            self.fail(ev._exc)
            return
        self._fired_count += 1
        if self._evaluate(self._fired_count, len(self.events)):
            # Only children whose callbacks have run (Timeouts are *born*
            # triggered, so `triggered` would wrongly include unfired ones).
            self.succeed({e: e._value for e in self.events if e._processed})


class AllOf(Condition):
    """Fires when *all* child events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda fired, total: fired == total)


class AnyOf(Condition):
    """Fires when *any* child event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda fired, total: fired >= 1)
