"""Reproduction of the Earth System Grid (ESG-I) prototype, SC 2001.

This package implements, over a discrete-event simulated wide-area network,
the full stack described in *High-Performance Remote Access to Climate
Simulation Data: A Challenge Problem for Data Grid Technologies* (Allcock et
al., SC 2001):

- ``repro.sim`` — discrete-event simulation kernel (processes, resources).
- ``repro.net`` — fluid-flow WAN model with TCP window dynamics and faults.
- ``repro.hosts`` — host model (CPU interrupt cost, NICs, disks, RAID).
- ``repro.storage`` — filesystems, disk caches, tape libraries, HPSS, HRM.
- ``repro.ldap`` — lightweight directory substrate used by the catalogs.
- ``repro.gsi`` — Grid Security Infrastructure stand-in (certs, proxies).
- ``repro.data`` — self-describing binary climate data format + generators.
- ``repro.gridftp`` — the GridFTP protocol: parallel, striped, restartable.
- ``repro.replica`` — Globus-style replica catalog and management.
- ``repro.metadata`` — CDMS-style metadata catalog.
- ``repro.nws`` — Network Weather Service sensors and forecasters.
- ``repro.mds`` — MDS information service.
- ``repro.rm`` — the LBNL Request Manager and transfer monitor.
- ``repro.cdat`` — CDAT-style analysis and VCDAT-style visualization.
- ``repro.netlogger`` — NetLogger-style event logging and analysis.
- ``repro.baselines`` — DODS-, SRB-, and layered-gateway-style comparators.
- ``repro.scenarios`` — prebuilt testbeds (SciNET SC'2000, ESG multi-site).
- ``repro.esg`` — the end-to-end EarthSystemGrid facade.

See DESIGN.md for the full system inventory and the per-experiment index.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
