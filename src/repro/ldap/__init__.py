"""Lightweight LDAP-style directory substrate.

The ESG prototype stores its metadata catalog, replica catalog, and MDS
information service in LDAP directories ("Based on Lightweight Directory
Access Protocol (LDAP), this catalog provides a view of data as a
collection of datasets...", §3; the replica catalog and NWS/MDS are
likewise LDAP-backed, Figure 1).

This substrate provides the semantics those catalogs need:

- :class:`DN` — distinguished names (``lf=file1,lc=CO2 1998,rc=esg``);
- RFC 2254-style search filters (:func:`parse_filter`) with ``&``, ``|``,
  ``!``, equality, presence, substring wildcards, and ordering;
- :class:`DirectoryServer` — a DN-keyed tree with base/one/subtree
  search scopes and a simulated cost model (per-operation base latency
  plus per-entry-scanned cost), so catalog lookups take simulated time
  just as the prototype's LDAP round trips did.
"""

from repro.ldap.dn import DN, DnError
from repro.ldap.filters import FilterError, parse_filter
from repro.ldap.directory import (
    DirectoryError,
    DirectoryServer,
    Entry,
    Scope,
)
from repro.ldap.replicated import ReplicatedDirectory

__all__ = [
    "DN",
    "DnError",
    "DirectoryError",
    "DirectoryServer",
    "Entry",
    "FilterError",
    "ReplicatedDirectory",
    "Scope",
    "parse_filter",
]
