"""Distributed/replicated directory service.

§6.2: "Current design effort for the replica catalog is focused on
support for distribution and replication of the catalog..." — the
prototype's single LDAP server was a scaling and availability risk for
"thousands of users".

:class:`ReplicatedDirectory` implements the classic primary/replica
design of era LDAP deployments (slapd + slurpd): all writes go to the
primary and propagate asynchronously to read replicas on a sync period;
reads prefer the lowest-latency *healthy* server, so a replica can be
consulted while the primary is down (writes then fail — single-master
semantics), and replicas can serve stale entries between syncs, which
tests and benches can observe.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from repro.ldap.directory import DirectoryError, DirectoryServer, Scope
from repro.ldap.dn import DN
from repro.sim.core import Environment


class ReplicatedDirectory:
    """Single-master replication over several :class:`DirectoryServer`.

    Parameters
    ----------
    env:
        Simulation environment.
    primary:
        The master server (all writes).
    replicas:
        Read replicas, synced every ``sync_interval`` seconds.
    sync_interval:
        Replication period.
    health:
        Optional callable ``(server) -> bool``; unhealthy servers are
        skipped by reads (default: always healthy). Wire this to fault
        state to model an LDAP host outage.
    """

    def __init__(self, env: Environment, primary: DirectoryServer,
                 replicas: Optional[List[DirectoryServer]] = None,
                 sync_interval: float = 30.0,
                 health: Optional[Callable[[DirectoryServer], bool]] = None):
        if sync_interval <= 0:
            raise ValueError("sync_interval must be positive")
        self.env = env
        self.primary = primary
        self.replicas = list(replicas or [])
        self.sync_interval = sync_interval
        self.health = health or (lambda server: True)
        self._pending: List[Tuple[str, tuple]] = []  # replication log
        self.syncs = 0
        self.replicated_ops = 0
        self._running = False

    # -- replication machinery ----------------------------------------------
    def start(self) -> None:
        """Begin the periodic sync process (idempotent)."""
        if not self._running and self.replicas:
            self._running = True
            self.env.process(self._sync_loop())

    def _sync_loop(self):
        while True:
            yield self.env.timeout(self.sync_interval)
            self.sync_now()

    def sync_now(self) -> int:
        """Apply the pending write log to every replica; returns count."""
        applied = 0
        for op, args in self._pending:
            for replica in self.replicas:
                self._apply(replica, op, args)
            applied += 1
            self.replicated_ops += 1
        self._pending.clear()
        self.syncs += 1
        return applied

    @staticmethod
    def _apply(server: DirectoryServer, op: str, args: tuple) -> None:
        try:
            if op == "add":
                dn, attrs = args
                server.add(dn, {k: list(v) for k, v in attrs.items()})
            elif op == "modify":
                dn, replace, add_values, delete_attrs = args
                server.modify(dn, replace=replace, add_values=add_values,
                              delete_attrs=delete_attrs)
            elif op == "delete":
                (dn, recursive) = args
                server.delete(dn, recursive=recursive)
        except DirectoryError:
            # Replays against an already-converged replica are no-ops;
            # real slurpd tolerated these the same way.
            pass

    @property
    def lag(self) -> int:
        """Writes not yet propagated to replicas."""
        return len(self._pending)

    def add_outage(self, start: float, duration: float,
                   mode: str = "fail") -> None:
        """Schedule an outage window on every member server.

        A whole-service outage (the fault injector's "directory" kind):
        with all members inside the window, reads cannot fail over.
        """
        for server in [self.primary] + self.replicas:
            server.add_outage(start, duration, mode=mode)

    # -- write API (single master) ---------------------------------------------
    def add(self, dn: Union[str, DN], attributes: dict):
        """Write to the primary; queued for replication."""
        if not self.health(self.primary):
            raise DirectoryError("primary directory is unavailable "
                                 "(single-master: writes blocked)")
        entry = self.primary.add(dn, attributes)
        self._pending.append(("add", (DN.of(dn), dict(entry.attributes))))
        return entry

    def modify(self, dn: Union[str, DN], replace: Optional[dict] = None,
               add_values: Optional[dict] = None,
               delete_attrs: Optional[list] = None):
        """Modify on the primary; queued for replication."""
        if not self.health(self.primary):
            raise DirectoryError("primary directory is unavailable")
        entry = self.primary.modify(dn, replace=replace,
                                    add_values=add_values,
                                    delete_attrs=delete_attrs)
        self._pending.append(("modify", (DN.of(dn), replace, add_values,
                                         delete_attrs)))
        return entry

    def delete(self, dn: Union[str, DN], recursive: bool = False) -> None:
        """Delete on the primary; queued for replication."""
        if not self.health(self.primary):
            raise DirectoryError("primary directory is unavailable")
        self.primary.delete(dn, recursive=recursive)
        self._pending.append(("delete", (DN.of(dn), recursive)))

    # -- read API (any healthy server) ---------------------------------------------
    def _read_server(self) -> DirectoryServer:
        candidates = [self.primary] + self.replicas
        healthy = [s for s in candidates if self.health(s)]
        if not healthy:
            raise DirectoryError("no healthy directory server")
        return min(healthy, key=lambda s: s.base_latency)

    def lookup(self, dn: Union[str, DN]):
        """Read from the best healthy server (may be stale)."""
        return self._read_server().lookup(dn)

    def exists(self, dn: Union[str, DN]) -> bool:
        """Existence check on the best healthy server."""
        return self._read_server().exists(dn)

    def search(self, base: Union[str, DN], scope: Scope = Scope.SUBTREE,
               filter_text: str = "(objectclass=*)"):
        """Search on the best healthy server."""
        return self._read_server().search(base, scope, filter_text)

    def query(self, base: Union[str, DN], scope: Scope = Scope.SUBTREE,
              filter_text: str = "(objectclass=*)"):
        """Simulation process: timed search on the best healthy server."""
        server = self._read_server()
        result = yield from server.query(base, scope, filter_text)
        return result

    def __len__(self) -> int:
        return len(self.primary)

    def __repr__(self) -> str:
        return (f"ReplicatedDirectory(primary={self.primary.name!r}, "
                f"{len(self.replicas)} replicas, lag={self.lag})")
