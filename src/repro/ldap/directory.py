"""The directory server: a DN-keyed tree with scoped, filtered search."""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Union

from repro.ldap.dn import DN
from repro.ldap.filters import parse_filter
from repro.sim.core import Environment


class DirectoryError(Exception):
    """Directory operation failed (missing entry, duplicate, orphan...)."""


class DirectoryUnavailable(DirectoryError):
    """The server is inside a scheduled outage window (transient)."""


class Scope(enum.Enum):
    """LDAP search scopes."""

    BASE = "base"        # the base entry only
    ONELEVEL = "one"     # immediate children
    SUBTREE = "sub"      # base and every descendant


class Entry:
    """One directory entry: a DN plus multi-valued attributes."""

    __slots__ = ("dn", "attributes")

    def __init__(self, dn: DN, attributes: Dict[str, Iterable[str]]):
        self.dn = dn
        self.attributes: Dict[str, List[str]] = {
            k.lower(): [str(v) for v in vs] if isinstance(vs, (list, tuple, set))
            else [str(vs)]
            for k, vs in attributes.items()}

    def get(self, attr: str) -> List[str]:
        """All values of ``attr`` (empty list if absent)."""
        return self.attributes.get(attr.lower(), [])

    def first(self, attr: str, default: Optional[str] = None) -> Optional[str]:
        """First value of ``attr`` or ``default``."""
        values = self.get(attr)
        return values[0] if values else default

    def __repr__(self) -> str:
        return f"Entry({str(self.dn)!r})"


class DirectoryServer:
    """An in-memory LDAP-like server with a simulated cost model.

    Parameters
    ----------
    env:
        Simulation environment (operations are generators costing time).
    name:
        Server label.
    base_latency:
        Per-operation round-trip cost, seconds.
    scan_cost:
        Additional cost per entry examined during search.

    All mutation requires the parent entry to exist (except for roots),
    mirroring real directory semantics; deletion refuses non-leaf entries
    unless ``recursive=True``.
    """

    def __init__(self, env: Environment, name: str = "ldap",
                 base_latency: float = 0.005, scan_cost: float = 2e-6):
        self.env = env
        self.name = name
        self.base_latency = base_latency
        self.scan_cost = scan_cost
        self._entries: Dict[DN, Entry] = {}
        self._children: Dict[DN, set] = {}
        self.operations = 0  # instrumentation
        self.entries_scanned = 0
        self._outages: List[tuple] = []  # (start, end, mode)
        self.outage_hits = 0

    # -- fault injection ---------------------------------------------------------
    def add_outage(self, start: float, duration: float,
                   mode: str = "fail") -> None:
        """Schedule an unavailability window in absolute simulation time.

        mode="fail": timed operations pay their latency then raise
        :class:`DirectoryUnavailable`. mode="hang": they block until the
        window ends, then proceed normally (a wedged server that
        eventually recovers).
        """
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        if mode not in ("fail", "hang"):
            raise ValueError("outage mode must be 'fail' or 'hang'")
        self._outages.append((float(start), float(start) + float(duration),
                              mode))

    def _outage_at(self, now: float):
        for start, end, mode in self._outages:
            if start <= now < end:
                return end, mode
        return None

    @property
    def available(self) -> bool:
        """True when no outage window covers the current instant."""
        return self._outage_at(self.env.now) is None

    def _outage_gate(self):
        """Generator prelude applying any active outage window."""
        window = self._outage_at(self.env.now)
        if window is None:
            return
        end, mode = window
        self.outage_hits += 1
        if mode == "hang":
            yield self.env.timeout(end - self.env.now)
            return
        yield self.env.timeout(self.base_latency)
        raise DirectoryUnavailable(
            f"{self.name}: directory unavailable until t={end:.1f}")

    # -- immediate (non-process) API: used by setup code -----------------------
    def add(self, dn: Union[str, DN], attributes: Dict) -> Entry:
        """Create an entry (parent must exist unless this is a root)."""
        dn = DN.of(dn)
        if dn in self._entries:
            raise DirectoryError(f"{self.name}: entry exists: {dn}")
        parent = dn.parent
        if parent is not None and parent not in self._entries:
            raise DirectoryError(f"{self.name}: no parent for {dn}")
        entry = Entry(dn, attributes)
        self._entries[dn] = entry
        self._children.setdefault(dn, set())
        if parent is not None:
            self._children[parent].add(dn)
        return entry

    def modify(self, dn: Union[str, DN], replace: Optional[Dict] = None,
               add_values: Optional[Dict] = None,
               delete_attrs: Optional[Iterable[str]] = None) -> Entry:
        """Replace / extend / delete attributes on an entry."""
        entry = self.lookup(dn)
        if replace:
            for k, vs in Entry(entry.dn, replace).attributes.items():
                entry.attributes[k] = vs
        if add_values:
            for k, vs in Entry(entry.dn, add_values).attributes.items():
                entry.attributes.setdefault(k, []).extend(
                    v for v in vs if v not in entry.attributes.get(k, []))
        if delete_attrs:
            for attr in delete_attrs:
                entry.attributes.pop(attr.lower(), None)
        return entry

    def delete(self, dn: Union[str, DN], recursive: bool = False) -> None:
        """Remove an entry (and optionally its subtree)."""
        dn = DN.of(dn)
        if dn not in self._entries:
            raise DirectoryError(f"{self.name}: no entry {dn}")
        kids = self._children.get(dn, set())
        if kids and not recursive:
            raise DirectoryError(f"{self.name}: {dn} has children")
        for kid in list(kids):
            self.delete(kid, recursive=True)
        del self._entries[dn]
        del self._children[dn]
        parent = dn.parent
        if parent is not None and parent in self._children:
            self._children[parent].discard(dn)

    def lookup(self, dn: Union[str, DN]) -> Entry:
        """Fetch one entry by DN."""
        dn = DN.of(dn)
        entry = self._entries.get(dn)
        if entry is None:
            raise DirectoryError(f"{self.name}: no entry {dn}")
        return entry

    def exists(self, dn: Union[str, DN]) -> bool:
        """True if the DN names an entry."""
        return DN.of(dn) in self._entries

    def children(self, dn: Union[str, DN]) -> List[Entry]:
        """Immediate children of an entry."""
        dn = DN.of(dn)
        if dn not in self._entries:
            raise DirectoryError(f"{self.name}: no entry {dn}")
        return [self._entries[c] for c in sorted(
            self._children[dn], key=lambda d: str(d))]

    def search(self, base: Union[str, DN], scope: Scope = Scope.SUBTREE,
               filter_text: str = "(objectclass=*)") -> List[Entry]:
        """Scoped, filtered search (immediate form)."""
        base = DN.of(base)
        if base not in self._entries:
            raise DirectoryError(f"{self.name}: search base {base} absent")
        predicate = parse_filter(filter_text)
        candidates = self._candidates(base, scope)
        self.entries_scanned += len(candidates)
        return [e for e in candidates if predicate(e.attributes)]

    def _candidates(self, base: DN, scope: Scope) -> List[Entry]:
        if scope is Scope.BASE:
            return [self._entries[base]]
        if scope is Scope.ONELEVEL:
            return self.children(base)
        out = [self._entries[base]]
        stack = list(self._children[base])
        while stack:
            dn = stack.pop()
            out.append(self._entries[dn])
            stack.extend(self._children[dn])
        return out

    # -- timed (process) API: used by simulated components -----------------------
    def query(self, base: Union[str, DN], scope: Scope = Scope.SUBTREE,
              filter_text: str = "(objectclass=*)"):
        """Simulation process: a search costing latency + scan time."""
        self.operations += 1
        yield from self._outage_gate()
        base = DN.of(base)
        n_candidates = (len(self._candidates(base, scope))
                        if base in self._entries else 0)
        yield self.env.timeout(self.base_latency
                               + self.scan_cost * n_candidates)
        return self.search(base, scope, filter_text)

    def read(self, dn: Union[str, DN]):
        """Simulation process: a single-entry lookup costing latency."""
        self.operations += 1
        yield from self._outage_gate()
        yield self.env.timeout(self.base_latency)
        return self.lookup(dn)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"DirectoryServer({self.name!r}, {len(self)} entries)"
