"""RFC 2254-style search filters.

Supported grammar::

    filter     = "(" ( and / or / not / item ) ")"
    and        = "&" filter+
    or         = "|" filter+
    not        = "!" filter
    item       = attr "=" value        ; equality (case-insensitive)
               | attr "=*"             ; presence
               | attr "=" substring    ; value containing "*" wildcards
               | attr ">=" value       ; ordering (numeric if both parse)
               | attr "<=" value

:func:`parse_filter` compiles the text into a predicate over attribute
dictionaries (attr → list of string values), which the directory server
applies per entry.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

Attrs = Dict[str, List[str]]
Predicate = Callable[[Attrs], bool]


class FilterError(ValueError):
    """Malformed search filter."""


def parse_filter(text: str) -> Predicate:
    """Compile a filter string into a predicate over entry attributes."""
    if not text or not text.strip():
        raise FilterError("empty filter")
    text = text.strip()
    pred, rest = _parse(text)
    if rest.strip():
        raise FilterError(f"trailing garbage after filter: {rest!r}")
    return pred


def _parse(text: str):
    if not text.startswith("("):
        raise FilterError(f"expected '(' at {text[:20]!r}")
    body = text[1:]
    if not body:
        raise FilterError("unterminated filter")
    op = body[0]
    if op == "&" or op == "|":
        preds, rest = _parse_list(body[1:])
        if not preds:
            raise FilterError(f"{op!r} needs at least one subfilter")
        combined = _make_and(preds) if op == "&" else _make_or(preds)
        return combined, _expect_close(rest)
    if op == "!":
        inner, rest = _parse(body[1:])
        return (lambda attrs, p=inner: not p(attrs)), _expect_close(rest)
    return _parse_item(body)


def _parse_list(text: str):
    preds = []
    while text.startswith("("):
        pred, text = _parse(text)
        preds.append(pred)
    return preds, text


def _expect_close(text: str) -> str:
    if not text.startswith(")"):
        raise FilterError(f"expected ')' at {text[:20]!r}")
    return text[1:]


_ITEM = re.compile(r"^([A-Za-z][\w.\-]*)\s*(>=|<=|=)\s*([^()]*)\)")


def _parse_item(body: str):
    m = _ITEM.match(body)
    if m is None:
        raise FilterError(f"malformed item at {body[:30]!r}")
    attr, op, value = m.group(1).lower(), m.group(2), m.group(3).strip()
    rest = body[m.end():]
    if op == "=":
        if value == "*":
            return _make_presence(attr), rest
        if "*" in value:
            return _make_substring(attr, value), rest
        if not value:
            raise FilterError(f"empty value for {attr!r}")
        return _make_equality(attr, value), rest
    if not value:
        raise FilterError(f"empty value for {attr!r}")
    return _make_ordering(attr, op, value), rest


# -- predicate builders ---------------------------------------------------------

def _values(attrs: Attrs, attr: str) -> List[str]:
    return attrs.get(attr, [])


def _make_and(preds):
    def pred(attrs: Attrs) -> bool:
        return all(p(attrs) for p in preds)
    return pred


def _make_or(preds):
    def pred(attrs: Attrs) -> bool:
        return any(p(attrs) for p in preds)
    return pred


def _make_presence(attr: str) -> Predicate:
    def pred(attrs: Attrs) -> bool:
        return bool(_values(attrs, attr))
    return pred


def _make_equality(attr: str, value: str) -> Predicate:
    target = value.lower()

    def pred(attrs: Attrs) -> bool:
        return any(v.lower() == target for v in _values(attrs, attr))
    return pred


def _make_substring(attr: str, pattern: str) -> Predicate:
    regex = re.compile(
        "^" + ".*".join(re.escape(p) for p in pattern.split("*")) + "$",
        re.IGNORECASE)

    def pred(attrs: Attrs) -> bool:
        return any(regex.match(v) for v in _values(attrs, attr))
    return pred


def _make_ordering(attr: str, op: str, value: str) -> Predicate:
    def compare(v: str) -> bool:
        try:
            left, right = float(v), float(value)
        except ValueError:
            left, right = v.lower(), value.lower()  # lexicographic fallback
        return left >= right if op == ">=" else left <= right

    def pred(attrs: Attrs) -> bool:
        return any(compare(v) for v in _values(attrs, attr))
    return pred
