"""Distinguished names: parsing, hierarchy, normalization.

A DN is a comma-separated sequence of ``attr=value`` RDNs, most-specific
first: ``lf=ua.1998.01.nc, lc=CO2 1998, rc=esg``. Comparison is
case-insensitive on attribute names and whitespace-insensitive around
separators, as in LDAP.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple


class DnError(ValueError):
    """Malformed distinguished name."""


class DN:
    """An immutable, normalized distinguished name."""

    __slots__ = ("rdns", "_norm")

    def __init__(self, rdns: Iterable[Tuple[str, str]]):
        rdns = tuple((str(a), str(v)) for a, v in rdns)
        for attr, value in rdns:
            if not attr or not attr.strip():
                raise DnError("empty attribute in RDN")
            if not value or not value.strip():
                raise DnError(f"empty value for attribute {attr!r}")
            if "," in value or "=" in value:
                raise DnError(f"unescaped special character in {value!r}")
        self.rdns = tuple((a.strip().lower(), v.strip()) for a, v in rdns)
        self._norm = ",".join(f"{a}={v.lower()}" for a, v in self.rdns)

    # -- construction -----------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "DN":
        """Parse ``"a=b, c=d"`` into a DN."""
        if not text or not text.strip():
            raise DnError("empty DN")
        rdns = []
        for part in text.split(","):
            if "=" not in part:
                raise DnError(f"RDN {part!r} lacks '='")
            attr, _, value = part.partition("=")
            rdns.append((attr, value))
        return cls(rdns)

    @classmethod
    def of(cls, value) -> "DN":
        """Coerce a string or DN to a DN."""
        if isinstance(value, DN):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise DnError(f"cannot make a DN from {type(value).__name__}")

    def child(self, attr: str, value: str) -> "DN":
        """A DN one level below this one."""
        return DN(((attr, value),) + self.rdns)

    # -- hierarchy -------------------------------------------------------------
    @property
    def parent(self) -> Optional["DN"]:
        """The immediate ancestor, or None at the root."""
        if len(self.rdns) <= 1:
            return None
        return DN(self.rdns[1:])

    @property
    def rdn(self) -> Tuple[str, str]:
        """The most-specific (leftmost) RDN."""
        return self.rdns[0]

    def is_under(self, ancestor: "DN") -> bool:
        """True if ``ancestor`` is a proper prefix (from the right)."""
        n = len(ancestor.rdns)
        if n >= len(self.rdns):
            return False
        return DN(self.rdns[-n:])._norm == ancestor._norm

    def depth_below(self, ancestor: "DN") -> int:
        """Levels between self and ancestor (0 = same entry)."""
        if self._norm == ancestor._norm:
            return 0
        if not self.is_under(ancestor):
            raise DnError(f"{self} is not under {ancestor}")
        return len(self.rdns) - len(ancestor.rdns)

    # -- value semantics ----------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, DN) and self._norm == other._norm

    def __hash__(self) -> int:
        return hash(self._norm)

    def __len__(self) -> int:
        return len(self.rdns)

    def __str__(self) -> str:
        return ",".join(f"{a}={v}" for a, v in self.rdns)

    def __repr__(self) -> str:
        return f"DN({str(self)!r})"
