"""Fluid max-min fair bandwidth allocation over the topology.

Every active :class:`Flow` gets a rate from progressive filling: all
unfrozen flows' rates rise together until a link on their path saturates
(its users freeze at their fair share) or the flow hits its own cap
(TCP-window/CPU/disk ceiling, maintained by the caller). Rates therefore
change only when flows start, finish, are aborted, change caps, or when a
link's capacity changes.

The allocator is *incremental*: the cost of a change is proportional to
the disturbance, not the network.

- **Component scoping** — flows partition into connected components
  (flows transitively sharing links, discovered by BFS over the
  ``Link._flows`` index). Any flow start/finish/abort/cap change or
  link-capacity change recomputes rates only for the affected component;
  disjoint transfers never pay for each other.
- **Same-instant coalescing** — mutations at one simulation timestamp
  (32 slow-start streams stepping at an RTT boundary, a site fault
  touching several links) mark their components dirty and collapse into
  a single deferred recompute, run by a zero-delay low-priority event at
  the end of the instant. No bytes move while dt = 0, so the collapsed
  recompute is exact.
- **Event-queue hygiene** — predicted completions live in an internal
  heap (lazily invalidated by a per-flow version stamp); exactly one
  simulator timer is kept pending, and it is only rescheduled when the
  earliest completion instant actually changes. Cap churn therefore no
  longer piles superseded timers into the event queue.

``FluidNetwork(mode="reference")`` keeps the original semantics — a
full-network synchronous recompute on every mutation — as the trusted
baseline; the differential tests assert both modes agree on randomized
workloads.

**Flow aggregation** (``aggregation_threshold=k``): once ``k`` or more
eligible transfers share one exact path, new arrivals on that path
collapse into a single :class:`AggregateFlow` — one flow in the
allocator regardless of member count. Members are demultiplexed
statistically by generalized-processor-sharing virtual time: the
aggregate tracks a virtual clock ``V`` advancing at ``rate / W`` (``W``
= sum of member weights, each member's weight its rate cap), and member
``i``'s delivered bytes are ``w_i · (V − V_settled_i)`` — O(1) per
member, settled only when its weight changes. Member completion
instants fall out of a per-aggregate heap of ``V`` thresholds; the
aggregate's ``_remaining`` always reflects the *earliest* member
completion, so the ordinary completion timer machinery fires at member
boundaries. The aggregate occupies ``len(members)`` max-min shares in
progressive filling, so mixed exact/aggregate links still converge to
the exact allocation. Proportional-to-weight sharing is *exact*
max-min for homogeneous member caps and a statistical approximation
otherwise; the differential tests bound the deviation at small n.

This is the standard flow-level network model used when packet-level
detail is unnecessary; the TCP behaviour the paper's results depend on
(window limits, slow-start ramp, loss back-off) enters through per-flow
caps managed by :class:`repro.net.tcp.TcpStream`.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Set

from repro.net.recorder import RateRecorder
from repro.net.topology import Link
from repro.sim.core import Environment
from repro.sim.events import Event, EventPriority

_EPS_BYTES = 1e-3
_EPS_RATE = 1e-9


class FlowError(Exception):
    """A flow was aborted before completing."""

    def __init__(self, message: str, flow: Optional["Flow"] = None):
        super().__init__(message)
        self.flow = flow


class Flow:
    """One fluid data stream crossing a fixed path.

    Created via :meth:`FluidNetwork.transfer`; the ``done`` event fires
    with the flow itself when the last byte is delivered, or fails with
    :class:`FlowError` when aborted.
    """

    __slots__ = ("id", "name", "path", "size", "cap", "limit", "rate",
                 "done", "recorder", "started_at", "finished_at",
                 "_network", "_remaining", "_advanced_at", "_pred_version")

    # Overridden by AggregateFlow; plain flows take one max-min share.
    _is_agg = False
    _nshares = 1

    def __init__(self, network: "FluidNetwork", name: str, path: List[Link],
                 size: float, cap: float, recorder: Optional[RateRecorder],
                 limit: float = math.inf):
        self.id = network.env.next_id("flow")
        self.name = name or f"flow-{self.id}"
        self.path = path
        self.size = float(size)
        # ``limit`` is a hard ceiling that every later set_cap() is
        # clamped to (e.g. a tape drive's readahead rate feeding a
        # cut-through transfer); ``cap`` is the live, mutable ceiling
        # (e.g. the TCP window).
        self.limit = float(limit)
        self.cap = min(float(cap), self.limit)
        self.rate = 0.0
        self.done: Event = Event(network.env)
        self.recorder = recorder
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self._network = network
        self._remaining = float(size)
        self._advanced_at = network.env.now
        self._pred_version = 0  # bumps when rate changes; stales heap entries

    @property
    def remaining(self) -> float:
        """Bytes still to deliver, exact at the current instant."""
        if self.finished_at is None and self.rate > 0.0:
            dt = self._network.env.now - self._advanced_at
            if dt > 0.0:
                return max(self._remaining - self.rate * dt, 0.0)
        return self._remaining

    @property
    def transferred(self) -> float:
        """Bytes delivered so far."""
        return self.size - self.remaining

    @property
    def active(self) -> bool:
        """True while the flow is in the network."""
        return self.finished_at is None and not self.done.triggered

    def progress(self) -> float:
        """Up-to-the-instant bytes delivered (forces a network flush)."""
        self._network._flush_now()
        return self.transferred

    def set_cap(self, cap: float) -> None:
        """Change this flow's rate ceiling (e.g. TCP window change)."""
        self._network.set_cap(self, cap)

    def abort(self, reason: str = "aborted") -> None:
        """Remove the flow; its ``done`` event fails with FlowError."""
        self._network.abort(self, reason)

    def __repr__(self) -> str:
        return (f"Flow({self.name!r}, {self.transferred:.0f}/{self.size:.0f}B"
                f" @ {self.rate * 8 / 1e6:.1f}Mb/s)")


class _AggregateMember:
    """One user stream multiplexed inside an :class:`AggregateFlow`.

    Duck-types the caller-facing surface of :class:`Flow` (``done``,
    ``progress``, ``set_cap``, ``abort``, byte accounting) so transfer
    code is oblivious to aggregation. Its weight in the aggregate's
    generalized-processor-sharing schedule is its rate cap; delivered
    bytes are recovered as ``weight · (V − V_settled)`` against the
    aggregate's virtual clock — nothing is stored per member per event.
    """

    __slots__ = ("id", "name", "path", "size", "cap", "limit", "done",
                 "recorder", "started_at", "finished_at",
                 "_agg", "_served0", "_v0", "_pred_version")

    _is_agg = False

    def __init__(self, agg: "AggregateFlow", name: str, size: float,
                 cap: float, limit: float = math.inf):
        env = agg._network.env
        self.id = env.next_id("flow")
        self.name = name or f"flow-{self.id}"
        self.path = agg.path
        self.size = float(size)
        self.limit = float(limit)
        self.cap = min(float(cap), self.limit)  # = GPS weight
        self.done: Event = Event(env)
        self.recorder = None
        self.started_at = env.now
        self.finished_at: Optional[float] = None
        self._agg = agg
        self._served0 = 0.0     # bytes delivered at the last settle
        self._v0 = agg._v       # aggregate virtual time at the last settle
        self._pred_version = 0

    def _served_at(self, v: float) -> float:
        return self._served0 + self.cap * (v - self._v0)

    @property
    def active(self) -> bool:
        """True while the member is in the aggregate."""
        return self.finished_at is None and not self.done.triggered

    @property
    def remaining(self) -> float:
        """Bytes still to deliver, exact at the current instant."""
        if not self.active:
            return max(self.size - self._served0, 0.0)
        served = self._served_at(self._agg._v_live())
        return min(max(self.size - served, 0.0), self.size)

    @property
    def transferred(self) -> float:
        """Bytes delivered so far."""
        return self.size - self.remaining

    @property
    def rate(self) -> float:
        """This member's statistical share of the aggregate rate."""
        agg = self._agg
        if not self.active or agg._W <= 0.0:
            return 0.0
        return agg.rate * (self.cap / agg._W)

    def progress(self) -> float:
        """Up-to-the-instant bytes delivered (forces a network flush)."""
        self._agg._network._flush_now()
        return self.transferred

    def set_cap(self, cap: float) -> None:
        """Change this member's ceiling — and its share weight."""
        self._agg._network.member_set_cap(self, cap)

    def abort(self, reason: str = "aborted") -> None:
        """Leave the aggregate; ``done`` fails with FlowError."""
        self._agg._network.member_abort(self, reason)

    def __repr__(self) -> str:
        return (f"AggMember({self.name!r},"
                f" {self.transferred:.0f}/{self.size:.0f}B"
                f" of {self._agg.name})")


class AggregateFlow(Flow):
    """Many same-path member streams carried as one allocator flow.

    The allocator sees a single flow whose cap is the sum of member
    caps and which occupies ``len(members)`` max-min shares; members
    share its rate in proportion to their weights via GPS virtual time.
    ``_remaining`` is maintained as the byte distance to the *earliest*
    member completion, so the standard completion-prediction machinery
    fires a flush at every member boundary.
    """

    __slots__ = ("_members", "_mheap", "_W", "_v", "_key", "_nshares")

    _is_agg = True

    def __init__(self, network: "FluidNetwork", key: tuple):
        super().__init__(network, f"agg-{network.env.next_id('agg')}",
                         list(key), 0.0, 0.0, None)
        self._key = key
        self._members: Dict[int, _AggregateMember] = {}
        self._mheap: list = []  # (v_star, pred_version, member_id, member)
        self._W = 0.0           # sum of member weights (= caps)
        self._v = 0.0           # GPS virtual time
        self._nshares = 1

    def _v_live(self) -> float:
        """Virtual time extrapolated to the current instant."""
        v = self._v
        if self.rate > 0.0 and self._W > 0.0:
            dt = self._network.env.now - self._advanced_at
            if dt > 0.0:
                v += self.rate * dt / self._W
        return v

    def _head_entry(self) -> Optional[tuple]:
        """Earliest valid member-completion entry, discarding stale ones."""
        heap = self._mheap
        while heap:
            entry = heap[0]
            member = entry[3]
            if not member.active or entry[1] != member._pred_version:
                heapq.heappop(heap)
                continue
            return entry
        return None

    def _refresh_remaining(self) -> None:
        head = self._head_entry()
        if head is None:
            # Memberless → retire at the next flush. (All-zero-weight
            # members leave remaining infinite, but then W = 0 forces
            # rate 0 and no completion is ever predicted.)
            self._remaining = math.inf if self._members else 0.0
        else:
            self._remaining = max((head[0] - self._v) * self._W, 0.0)

    def _complete_due(self, now: float) -> None:
        """Retire members whose virtual finish line has been crossed."""
        heap = self._mheap
        while heap:
            v_star, version, _mid, member = heap[0]
            if not member.active or version != member._pred_version:
                heapq.heappop(heap)
                continue
            if (v_star - self._v) * member.cap > _EPS_BYTES:
                break
            heapq.heappop(heap)
            self._retire(member, now, completed=True)

    def _retire(self, member: _AggregateMember, now: float,
                completed: bool, reason: str = "aborted") -> None:
        """Drop a member; the caller has settled its byte account
        (completion sets it to ``size`` outright)."""
        self._members.pop(member.id, None)
        self._W -= member.cap
        if not self._members:
            self._W = 0.0  # clear accumulated float drift
        self.size = max(self.size - member.size, 0.0)
        self._nshares = max(len(self._members), 1)
        self.cap = self._W
        member.finished_at = now
        member._pred_version += 1
        member._v0 = self._v
        if completed:
            member._served0 = member.size
            member.done.succeed(member)
        else:
            member.done.fail(FlowError(reason, member))


class FluidNetwork:
    """Event-driven fluid bandwidth sharing over a :class:`Topology`.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        The link graph; capacities are read live at each reallocation.
    mode:
        ``"incremental"`` (default) recomputes only the connected
        component disturbed by a change and coalesces same-instant
        changes; ``"reference"`` recomputes the whole network
        synchronously on every mutation (the original behaviour, kept
        as a differential-testing baseline and escape hatch).
    aggregation_threshold:
        When set, a path already carrying this many eligible exact
        flows aggregates new same-path transfers into one
        :class:`AggregateFlow` (``None``, the default, keeps every
        transfer exact). Eligible means: a finite positive cap and no
        per-flow rate recorder.
    """

    def __init__(self, env: Environment, topology,
                 mode: str = "incremental",
                 aggregation_threshold: Optional[int] = None) -> None:
        if mode not in ("incremental", "reference"):
            raise ValueError(f"unknown allocator mode {mode!r}")
        if aggregation_threshold is not None and aggregation_threshold < 1:
            raise ValueError("aggregation_threshold must be >= 1")
        self.env = env
        self.topology = topology
        self.mode = mode
        self.aggregation_threshold = aggregation_threshold
        self._aggregates: Dict[tuple, AggregateFlow] = {}  # path key -> agg
        self._path_flows: Dict[tuple, int] = {}  # eligible exact flows/path
        self._counted: Set[int] = set()          # flow ids in _path_flows
        self._flow_map: Dict[int, Flow] = {}  # id -> active flow, ordered
        # Dirty bookkeeping for deferred, component-scoped recomputes.
        self._dirty_flows: Set[Flow] = set()
        self._dirty_links: Set[Link] = set()
        self._dirty_all = False
        self._flush_scheduled = False
        # Predicted completions: (t_abs, pred_version, flow_id, flow),
        # lazily invalidated. One pending simulator timer covers the
        # earliest valid entry.
        self._completion_heap: list = []
        self._timer_version = 0
        self._timer_at = math.inf
        self._timer_pending = False
        self._timer_event = None
        # Instrumentation.
        self.reallocations = 0      # progressive-filling passes
        self.flushes = 0            # coalesced flush rounds
        self.flows_recomputed = 0   # sum of recompute scope sizes
        self.timer_reschedules = 0  # simulator timers actually created
        self.aggregates_created = 0
        self.aggregate_joins = 0    # transfers routed into an aggregate

    # -- public API ------------------------------------------------------
    @property
    def flows(self) -> List[Flow]:
        """Active flows, in start order."""
        return list(self._flow_map.values())

    def transfer(self, src: str, dst: str, nbytes: float,
                 cap: float = math.inf, name: str = "",
                 recorder: Optional[RateRecorder] = None,
                 path: Optional[List[Link]] = None,
                 limit: float = math.inf) -> Flow:
        """Start a flow of ``nbytes`` from node ``src`` to node ``dst``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        A zero-byte transfer completes immediately. ``limit`` is a hard
        rate ceiling that survives later :meth:`set_cap` calls.

        With :attr:`aggregation_threshold` set, an eligible transfer on
        a path already at the threshold returns an
        :class:`_AggregateMember` instead — same caller-facing surface.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if path is None:
            path = self.topology.path(src, dst)
        if (nbytes and self.aggregation_threshold is not None
                and recorder is None and cap > 0 and math.isfinite(cap)):
            key = tuple(path)
            agg = self._aggregates.get(key)
            if agg is None and (self._path_flows.get(key, 0) + 1
                                >= self.aggregation_threshold):
                agg = self._make_aggregate(key)
            if agg is not None:
                return self._agg_join(agg, name, nbytes, cap, limit)
            flow = Flow(self, name, path, nbytes, cap, recorder, limit=limit)
            self._path_flows[key] = self._path_flows.get(key, 0) + 1
            self._counted.add(flow.id)
        else:
            flow = Flow(self, name, path, nbytes, cap, recorder, limit=limit)
        if nbytes == 0:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._flow_map[flow.id] = flow
        for link in path:
            link._flows.add(flow)
        self._mark_flow(flow)
        return flow

    def set_cap(self, flow: Flow, cap: float) -> None:
        """Change ``flow``'s ceiling (clamped to ``flow.limit``) and
        schedule a reallocation."""
        if not flow.active:
            return
        flow.cap = min(float(cap), flow.limit)
        self._mark_flow(flow)

    def abort(self, flow: Flow, reason: str = "aborted") -> None:
        """Remove ``flow``; its waiters see a :class:`FlowError`.

        Aborting an :class:`AggregateFlow` fails every member.
        """
        if not flow.active:
            return
        now = self.env.now
        self._advance(flow, now)
        if flow._is_agg:
            v = flow._v
            for member in list(flow._members.values()):
                member._served0 = min(member._served_at(v), member.size)
                member._v0 = v
                flow._retire(member, now, completed=False, reason=reason)
            flow._refresh_remaining()
        self._detach(flow)
        flow.finished_at = now
        flow.rate = 0.0
        flow._pred_version += 1
        if flow.recorder is not None:
            flow.recorder.record(now, 0.0)
        flow.done.fail(FlowError(reason, flow))
        self._request_flush()

    def reallocate(self) -> None:
        """Recompute all rates now (the explicit, synchronous big hammer).

        Component scoping cannot tell what changed when the caller
        mutates link capacities directly, so this recomputes everything.
        Prefer :meth:`link_updated` after changing one link's capacity.
        """
        self._dirty_all = True
        self._flush_now()

    def link_updated(self, link: Link) -> None:
        """Note that ``link``'s capacity changed; reallocate its component.

        Same-instant updates coalesce into one recompute. A capacity
        change on a link carrying no flows cannot move any allocation
        and is skipped outright (idle floor-load ticks are free).
        """
        if self.mode == "reference":
            self.reallocate()
            return
        if link._flows:
            self._dirty_links.add(link)
            self._request_flush()

    # -- aggregation ------------------------------------------------------
    def _make_aggregate(self, key: tuple) -> AggregateFlow:
        agg = AggregateFlow(self, key)
        self._aggregates[key] = agg
        self._flow_map[agg.id] = agg
        for link in agg.path:
            link._flows.add(agg)
        self.aggregates_created += 1
        return agg

    def _agg_join(self, agg: AggregateFlow, name: str, nbytes: float,
                  cap: float, limit: float) -> _AggregateMember:
        now = self.env.now
        self._advance(agg, now)  # settle V before the weight changes
        member = _AggregateMember(agg, name, nbytes, cap, limit)
        agg._members[member.id] = member
        agg._W += member.cap
        agg.size += member.size
        agg._nshares = len(agg._members)
        agg.cap = agg._W
        if member.cap > _EPS_RATE:
            v_star = agg._v + member.size / member.cap
            heapq.heappush(agg._mheap,
                           (v_star, member._pred_version, member.id, member))
        agg._refresh_remaining()
        self.aggregate_joins += 1
        self._mark_flow(agg)
        return member

    def member_set_cap(self, member: _AggregateMember, cap: float) -> None:
        """Change a member's ceiling — i.e. its GPS weight — and
        schedule a reallocation of its aggregate."""
        if not member.active:
            return
        agg = member._agg
        now = self.env.now
        self._advance(agg, now)
        if not member.active:
            return  # the advance retired it (completion due exactly now)
        v = agg._v
        member._served0 = min(member._served_at(v), member.size)
        member._v0 = v
        old = member.cap
        member.cap = min(float(cap), member.limit)
        agg._W += member.cap - old
        agg.cap = agg._W
        member._pred_version += 1
        if member.cap > _EPS_RATE:
            rem = member.size - member._served0
            heapq.heappush(agg._mheap, (v + rem / member.cap,
                                        member._pred_version,
                                        member.id, member))
        agg._refresh_remaining()
        self._mark_flow(agg)

    def member_abort(self, member: _AggregateMember,
                     reason: str = "aborted") -> None:
        """Remove one member; its waiters see a :class:`FlowError`."""
        if not member.active:
            return
        agg = member._agg
        now = self.env.now
        self._advance(agg, now)
        if not member.active:
            return
        v = agg._v
        member._served0 = min(member._served_at(v), member.size)
        member._v0 = v
        agg._retire(member, now, completed=False, reason=reason)
        agg._refresh_remaining()
        self._mark_flow(agg)

    def flows_on(self, link: Link) -> Iterable[Flow]:
        """Flows currently crossing ``link``."""
        self._flush_now()
        return tuple(link._flows)

    @property
    def aggregate_rate(self) -> float:
        """Sum of all current flow rates (bytes/s)."""
        self._flush_now()
        return sum(f.rate for f in self._flow_map.values())

    def link_load(self) -> Dict[str, float]:
        """Per-link carried load (bytes/s) — the cheap probe form.

        Flow rates only change at allocation events, so the current
        rates are exact between events; unlike :meth:`snapshot` this
        does not force a flush (no progress bookkeeping is advanced),
        making it safe to call from a periodic gauge sampler without
        taxing the hot path.
        """
        links: Dict[str, float] = {}
        for flow in self._flow_map.values():
            for link in flow.path:
                links[link.name] = links.get(link.name, 0.0) + flow.rate
        return links

    def snapshot(self) -> dict:
        """Diagnostic view: per-link utilization and flow placement.

        Returns ``{"t", "flows", "links"}`` where links maps link name →
        (used_bytes_per_s, capacity, n_flows) for links carrying traffic.
        The transfer monitor and debugging sessions use this to see where
        the bottleneck currently sits.
        """
        self._flush_now()
        links = {}
        for flow in self._flow_map.values():
            for link in flow.path:
                used, cap, n = links.get(link.name,
                                         (0.0, link.capacity, 0))
                links[link.name] = (used + flow.rate, link.capacity,
                                    n + 1)
        return {
            "t": self.env.now,
            "flows": [(f.name, f.rate, f.remaining)
                      for f in self._flow_map.values()],
            "links": links,
        }

    def bottlenecks(self, threshold: float = 0.98) -> list:
        """Names of links whose carried load ≥ threshold × capacity."""
        snap = self.snapshot()
        return sorted(name for name, (used, cap, _n)
                      in snap["links"].items()
                      if cap > 0 and used >= threshold * cap)

    # -- dirty tracking and coalescing ----------------------------------
    def _mark_flow(self, flow: Flow) -> None:
        if self.mode == "reference":
            self._dirty_all = True
            self._flush_now()
            return
        self._dirty_flows.add(flow)
        self._request_flush()

    def _request_flush(self) -> None:
        """Arm one zero-delay LOW-priority event to recompute at the end
        of the current instant (after every same-time NORMAL event has
        made its changes)."""
        if self.mode == "reference":
            self._dirty_all = True
            self._flush_now()
            return
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        ev = Event(self.env)
        ev.add_callback(self._on_flush_event)
        ev.succeed(priority=EventPriority.LOW)

    def _on_flush_event(self, _ev: Event) -> None:
        self._flush_scheduled = False
        self._flush_now()

    # -- internals -------------------------------------------------------
    def _advance(self, flow: Flow, now: float) -> None:
        """Advance one flow's byte count to ``now`` (lazy accounting)."""
        dt = now - flow._advanced_at
        if dt < 0:
            raise RuntimeError("network clock went backwards")
        if dt > 0.0 and flow.rate > 0.0:
            if flow._is_agg:
                flow._v += flow.rate * dt / flow._W
            else:
                flow._remaining -= flow.rate * dt
        flow._advanced_at = now
        if flow._is_agg:
            flow._complete_due(now)
            flow._refresh_remaining()

    def _detach(self, flow: Flow) -> None:
        self._flow_map.pop(flow.id, None)
        self._dirty_flows.discard(flow)
        if flow._is_agg:
            self._aggregates.pop(flow._key, None)
        elif flow.id in self._counted:
            self._counted.discard(flow.id)
            key = tuple(flow.path)
            n = self._path_flows.get(key, 0) - 1
            if n > 0:
                self._path_flows[key] = n
            else:
                self._path_flows.pop(key, None)
        for link in flow.path:
            link._flows.discard(flow)
            if link._flows:
                self._dirty_links.add(link)

    def _finish(self, flow: Flow, now: float) -> None:
        """Retire a flow whose last byte has been delivered."""
        flow._remaining = 0.0
        self._detach(flow)
        flow.finished_at = now
        flow.rate = 0.0
        flow._pred_version += 1
        if flow.recorder is not None:
            flow.recorder.record(now, 0.0)
        flow.done.succeed(flow)

    def _pop_due_completions(self, now: float) -> None:
        """Mark flows whose predicted completion instant has arrived as
        dirty; the flush retires them (in start order, like the original
        full-scan implementation) and recomputes their components."""
        heap = self._completion_heap
        while heap:
            t, version, _fid, flow, _made_at, _rel = heap[0]
            if not flow.active or version != flow._pred_version:
                heapq.heappop(heap)  # stale entry
                continue
            if t > now:
                break
            heapq.heappop(heap)
            self._dirty_flows.add(flow)

    def _scope(self, now: float) -> List[Flow]:
        """Flows whose rates must be recomputed: the connected closure of
        every dirty flow and every flow on a dirty link, in start order
        (finish order must be deterministic — waiter processes resume in
        the order their flows' ``done`` events were triggered)."""
        if self._dirty_all or self.mode == "reference":
            return list(self._flow_map.values())
        scope: Set[Flow] = set()
        stack = [f for f in self._dirty_flows if f.active]
        for link in self._dirty_links:
            stack.extend(link._flows)
        while stack:
            f = stack.pop()
            if f in scope:
                continue
            scope.add(f)
            for link in f.path:
                for g in link._flows:
                    if g not in scope:
                        stack.append(g)
        return sorted(scope, key=lambda f: f.id)

    def _flush_now(self) -> None:
        """Apply due completions and recompute every dirty component."""
        now = self.env.now
        self._pop_due_completions(now)
        if self._dirty_all or self._dirty_flows or self._dirty_links:
            scope = self._scope(now)
            # Settle byte counts at the old rates before assigning new
            # ones; flows that crossed their last byte retire here (and
            # shrink the scope). Retirement marks links dirty again, but
            # only with flows already in the closure — so the dirty sets
            # are cleared after this loop, not before.
            live: List[Flow] = []
            for f in scope:
                self._advance(f, now)
                if f._remaining <= _EPS_BYTES:
                    self._finish(f, now)
                else:
                    live.append(f)
            self._dirty_all = False
            self._dirty_flows.clear()
            self._dirty_links.clear()
            self.flushes += 1
            self.flows_recomputed += len(live)
            if live:
                self._fill(live, now)
        self._reschedule_timer(now)

    def _fill(self, flows: List[Flow], now: float) -> None:
        """Progressive-filling max-min fairness with per-flow caps.

        ``flows`` must be closed under link sharing (a union of whole
        components); links outside it carry none of its traffic, so each
        involved link's full capacity belongs to this subproblem.
        """
        self.reallocations += 1
        rates: Dict[Flow, float] = dict.fromkeys(flows, 0.0)
        residual: Dict[Link, float] = {}
        link_unfrozen: Dict[Link, Set[Flow]] = {}
        # An aggregate occupies one share per member so mixed
        # exact/aggregate links converge to the exact allocation; for
        # plain flows (_nshares == 1) the arithmetic below is
        # bit-identical to the unweighted original.
        link_shares: Dict[Link, int] = {}
        for f in flows:
            for link in f.path:
                if link not in residual:
                    residual[link] = link.capacity
                    link_unfrozen[link] = set()
                    link_shares[link] = 0
        unfrozen: Set[Flow] = set()
        for f in flows:
            # A flow through a dead link, or with a zero cap, stays at 0.
            if f.cap <= _EPS_RATE or any(
                    residual[l] <= _EPS_RATE for l in f.path):
                continue
            unfrozen.add(f)
            for link in f.path:
                link_unfrozen[link].add(f)
                link_shares[link] += f._nshares
        guard = 0
        while unfrozen:
            guard += 1
            if guard > 10 * len(flows) + 10:  # pragma: no cover
                raise RuntimeError("progressive filling failed to converge")
            # Largest uniform per-share increment every unfrozen flow
            # can take.
            delta = math.inf
            for link, users in link_unfrozen.items():
                if users:
                    delta = min(delta, residual[link] / link_shares[link])
            for f in unfrozen:
                delta = min(delta, (f.cap - rates[f]) / f._nshares)
            if not math.isfinite(delta):
                break  # only cap-unbounded flows on unconstrained links
            delta = max(delta, 0.0)
            for f in unfrozen:
                rates[f] += delta * f._nshares
            for link, users in link_unfrozen.items():
                if users:
                    residual[link] -= delta * link_shares[link]
            # Freeze flows at their cap or on a saturated link.
            newly_frozen: Set[Flow] = set()
            for link, users in link_unfrozen.items():
                if users and residual[link] <= _EPS_RATE:
                    newly_frozen |= users
            for f in unfrozen:
                if rates[f] >= f.cap - _EPS_RATE:
                    newly_frozen.add(f)
            if not newly_frozen and delta <= _EPS_RATE:
                # No progress possible (degenerate); freeze everything.
                newly_frozen = set(unfrozen)
            for f in newly_frozen:
                unfrozen.discard(f)
                for link in f.path:
                    link_unfrozen[link].discard(f)
                    link_shares[link] -= f._nshares
        heap = self._completion_heap
        for f in flows:
            f.rate = rates[f]
            f._pred_version += 1
            if f.recorder is not None:
                f.recorder.record(now, f.rate)
            if f.rate > _EPS_RATE:
                # Keep the relative delay alongside the absolute instant:
                # scheduling ``now + rel`` directly (when the prediction
                # is fresh) reproduces the original timer arithmetic
                # bit-for-bit instead of round-tripping through ``t - now``.
                rel = f._remaining / f.rate
                heapq.heappush(heap, (now + rel, f._pred_version, f.id,
                                      f, now, rel))

    def _reschedule_timer(self, now: float) -> None:
        """Keep exactly one simulator timer pending, at the earliest valid
        predicted completion — and leave it alone if that instant is
        unchanged (event-queue hygiene: cap churn schedules nothing)."""
        heap = self._completion_heap
        while heap:
            t, version, _fid, flow, _made_at, _rel = heap[0]
            if not flow.active or version != flow._pred_version:
                heapq.heappop(heap)
                continue
            break
        if not heap:
            # Nothing will complete; any still-pending timer degenerates
            # to a no-op flush when it fires.
            return
        t_next, _version, _fid, _flow, made_at, rel = heap[0]
        if self._timer_pending and self._timer_at == t_next:
            return
        if self._timer_pending and self._timer_event is not None:
            self.env.cancel(self._timer_event)  # real cancellation
        self._timer_version += 1
        self._timer_at = t_next
        self._timer_pending = True
        self.timer_reschedules += 1
        version = self._timer_version
        delay = rel if made_at == now else max(t_next - now, 0.0)
        timer = self.env.timeout(delay)
        self._timer_event = timer

        def _fire(_ev, version=version):
            if version != self._timer_version:
                return  # superseded by a later reallocation
            self._timer_pending = False
            self._flush_now()

        timer.add_callback(_fire)
