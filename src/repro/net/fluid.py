"""Fluid max-min fair bandwidth allocation over the topology.

Every active :class:`Flow` gets a rate from progressive filling: all
unfrozen flows' rates rise together until a link on their path saturates
(its users freeze at their fair share) or the flow hits its own cap
(TCP-window/CPU/disk ceiling, maintained by the caller). Rates therefore
change only when flows start, finish, are aborted, change caps, or when a
link's capacity changes — at which point :meth:`FluidNetwork.reallocate`
recomputes the whole allocation and reschedules the next completion.

This is the standard flow-level network model used when packet-level
detail is unnecessary; the TCP behaviour the paper's results depend on
(window limits, slow-start ramp, loss back-off) enters through per-flow
caps managed by :class:`repro.net.tcp.TcpStream`.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.recorder import RateRecorder, RateSeries
from repro.net.topology import Link
from repro.sim.core import Environment
from repro.sim.events import Event

_EPS_BYTES = 1e-3
_EPS_RATE = 1e-9


class FlowError(Exception):
    """A flow was aborted before completing."""

    def __init__(self, message: str, flow: Optional["Flow"] = None):
        super().__init__(message)
        self.flow = flow


class Flow:
    """One fluid data stream crossing a fixed path.

    Created via :meth:`FluidNetwork.transfer`; the ``done`` event fires
    with the flow itself when the last byte is delivered, or fails with
    :class:`FlowError` when aborted.
    """

    _ids = itertools.count(1)

    __slots__ = ("id", "name", "path", "size", "remaining", "cap", "rate",
                 "done", "recorder", "started_at", "finished_at", "_network")

    def __init__(self, network: "FluidNetwork", name: str, path: List[Link],
                 size: float, cap: float, recorder: Optional[RateRecorder]):
        self.id = next(Flow._ids)
        self.name = name or f"flow-{self.id}"
        self.path = path
        self.size = float(size)
        self.remaining = float(size)
        self.cap = float(cap)
        self.rate = 0.0
        self.done: Event = Event(network.env)
        self.recorder = recorder
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self._network = network

    @property
    def transferred(self) -> float:
        """Bytes delivered so far (advanced lazily at network events)."""
        return self.size - self.remaining

    @property
    def active(self) -> bool:
        """True while the flow is in the network."""
        return self.finished_at is None and not self.done.triggered

    def progress(self) -> float:
        """Up-to-the-instant bytes delivered (forces a network update)."""
        self._network._update()
        return self.transferred

    def set_cap(self, cap: float) -> None:
        """Change this flow's rate ceiling (e.g. TCP window change)."""
        self._network.set_cap(self, cap)

    def abort(self, reason: str = "aborted") -> None:
        """Remove the flow; its ``done`` event fails with FlowError."""
        self._network.abort(self, reason)

    def __repr__(self) -> str:
        return (f"Flow({self.name!r}, {self.transferred:.0f}/{self.size:.0f}B"
                f" @ {self.rate * 8 / 1e6:.1f}Mb/s)")


class FluidNetwork:
    """Event-driven fluid bandwidth sharing over a :class:`Topology`.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        The link graph; capacities are read live at each reallocation.
    """

    def __init__(self, env: Environment, topology) -> None:
        self.env = env
        self.topology = topology
        self.flows: List[Flow] = []
        self._last_update = env.now
        self._timer_version = 0
        self.reallocations = 0  # instrumentation

    # -- public API ------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float,
                 cap: float = math.inf, name: str = "",
                 recorder: Optional[RateRecorder] = None,
                 path: Optional[List[Link]] = None) -> Flow:
        """Start a flow of ``nbytes`` from node ``src`` to node ``dst``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        A zero-byte transfer completes immediately.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if path is None:
            path = self.topology.path(src, dst)
        flow = Flow(self, name, path, nbytes, cap, recorder)
        if nbytes == 0:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._update()
        self.flows.append(flow)
        for link in path:
            link._flows.add(flow)
        self.reallocate()
        return flow

    def set_cap(self, flow: Flow, cap: float) -> None:
        """Change ``flow``'s ceiling and reallocate."""
        if not flow.active:
            return
        self._update()
        flow.cap = float(cap)
        self.reallocate()

    def abort(self, flow: Flow, reason: str = "aborted") -> None:
        """Remove ``flow``; its waiters see a :class:`FlowError`."""
        if not flow.active:
            return
        self._update()
        self._detach(flow)
        flow.finished_at = self.env.now
        if flow.recorder is not None:
            flow.recorder.record(self.env.now, 0.0)
        flow.done.fail(FlowError(reason, flow))
        self.reallocate()

    def reallocate(self) -> None:
        """Recompute all rates (call after any capacity change)."""
        self._update()
        self._assign_rates()
        self._schedule_next_completion()

    def flows_on(self, link: Link) -> Iterable[Flow]:
        """Flows currently crossing ``link``."""
        return tuple(link._flows)

    @property
    def aggregate_rate(self) -> float:
        """Sum of all current flow rates (bytes/s)."""
        return sum(f.rate for f in self.flows)

    def snapshot(self) -> dict:
        """Diagnostic view: per-link utilization and flow placement.

        Returns ``{"t", "flows", "links"}`` where links maps link name →
        (used_bytes_per_s, capacity, n_flows) for links carrying traffic.
        The transfer monitor and debugging sessions use this to see where
        the bottleneck currently sits.
        """
        self._update()
        links = {}
        for flow in self.flows:
            for link in flow.path:
                used, cap, n = links.get(link.name,
                                         (0.0, link.capacity, 0))
                links[link.name] = (used + flow.rate, link.capacity,
                                    n + 1)
        return {
            "t": self.env.now,
            "flows": [(f.name, f.rate, f.remaining) for f in self.flows],
            "links": links,
        }

    def bottlenecks(self, threshold: float = 0.98) -> list:
        """Names of links whose carried load ≥ threshold × capacity."""
        snap = self.snapshot()
        return sorted(name for name, (used, cap, _n)
                      in snap["links"].items()
                      if cap > 0 and used >= threshold * cap)

    # -- internals -----------------------------------------------------------
    def _update(self) -> None:
        """Advance byte counts to the current time; retire finished flows."""
        now = self.env.now
        dt = now - self._last_update
        if dt < 0:
            raise RuntimeError("network clock went backwards")
        finished: List[Flow] = []
        if dt > 0:
            for flow in self.flows:
                if flow.rate > 0:
                    flow.remaining -= flow.rate * dt
                    if flow.remaining <= _EPS_BYTES:
                        flow.remaining = 0.0
                        finished.append(flow)
        self._last_update = now
        for flow in finished:
            self._detach(flow)
            flow.finished_at = now
            flow.rate = 0.0
            if flow.recorder is not None:
                flow.recorder.record(now, 0.0)
            flow.done.succeed(flow)

    def _detach(self, flow: Flow) -> None:
        try:
            self.flows.remove(flow)
        except ValueError:
            pass
        for link in flow.path:
            link._flows.discard(flow)

    def _assign_rates(self) -> None:
        """Progressive-filling max-min fairness with per-flow caps."""
        self.reallocations += 1
        now = self.env.now
        active = [f for f in self.flows]
        rates: Dict[int, float] = {f.id: 0.0 for f in active}
        # Residual capacity per involved link.
        residual: Dict[str, float] = {}
        link_flows: Dict[str, List[Flow]] = {}
        for f in active:
            for link in f.path:
                if link.name not in residual:
                    residual[link.name] = link.capacity
                    link_flows[link.name] = []
                link_flows[link.name].append(f)
        unfrozen = set()
        for f in active:
            # A flow through a dead link, or with a zero cap, stays at 0.
            if f.cap <= _EPS_RATE or any(
                    residual[l.name] <= _EPS_RATE for l in f.path):
                continue
            unfrozen.add(f.id)
        active_count: Dict[str, int] = {
            name: sum(1 for f in fl if f.id in unfrozen)
            for name, fl in link_flows.items()}
        guard = 0
        while unfrozen:
            guard += 1
            if guard > 10 * len(active) + 10:  # pragma: no cover
                raise RuntimeError("progressive filling failed to converge")
            # Largest uniform increment every unfrozen flow can take.
            delta = math.inf
            for name, cnt in active_count.items():
                if cnt > 0:
                    delta = min(delta, residual[name] / cnt)
            for f in active:
                if f.id in unfrozen:
                    delta = min(delta, f.cap - rates[f.id])
            if not math.isfinite(delta):
                break  # only cap-unbounded flows on unconstrained links
            delta = max(delta, 0.0)
            for f in active:
                if f.id in unfrozen:
                    rates[f.id] += delta
            for name, cnt in active_count.items():
                residual[name] -= delta * cnt
            # Freeze flows at their cap or on a saturated link.
            newly_frozen = []
            for f in active:
                if f.id not in unfrozen:
                    continue
                if rates[f.id] >= f.cap - _EPS_RATE or any(
                        residual[l.name] <= _EPS_RATE for l in f.path):
                    newly_frozen.append(f)
            if not newly_frozen and delta <= _EPS_RATE:
                # No progress possible (degenerate); freeze everything.
                newly_frozen = [f for f in active if f.id in unfrozen]
            for f in newly_frozen:
                unfrozen.discard(f.id)
                for link in f.path:
                    active_count[link.name] -= 1
        for f in active:
            f.rate = rates[f.id]
            if f.recorder is not None:
                f.recorder.record(now, f.rate)

    def _schedule_next_completion(self) -> None:
        self._timer_version += 1
        version = self._timer_version
        t_next = math.inf
        for f in self.flows:
            if f.rate > _EPS_RATE:
                t_next = min(t_next, f.remaining / f.rate)
        if not math.isfinite(t_next):
            return
        timer = self.env.timeout(max(t_next, 0.0))

        def _fire(_ev, version=version):
            if version != self._timer_version:
                return  # superseded by a later reallocation
            self.reallocate()

        timer.add_callback(_fire)
