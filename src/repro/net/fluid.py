"""Fluid max-min fair bandwidth allocation over the topology.

Every active :class:`Flow` gets a rate from progressive filling: all
unfrozen flows' rates rise together until a link on their path saturates
(its users freeze at their fair share) or the flow hits its own cap
(TCP-window/CPU/disk ceiling, maintained by the caller). Rates therefore
change only when flows start, finish, are aborted, change caps, or when a
link's capacity changes.

The allocator is *incremental*: the cost of a change is proportional to
the disturbance, not the network.

- **Component scoping** — flows partition into connected components
  (flows transitively sharing links, discovered by BFS over the
  ``Link._flows`` index). Any flow start/finish/abort/cap change or
  link-capacity change recomputes rates only for the affected component;
  disjoint transfers never pay for each other.
- **Same-instant coalescing** — mutations at one simulation timestamp
  (32 slow-start streams stepping at an RTT boundary, a site fault
  touching several links) mark their components dirty and collapse into
  a single deferred recompute, run by a zero-delay low-priority event at
  the end of the instant. No bytes move while dt = 0, so the collapsed
  recompute is exact.
- **Event-queue hygiene** — predicted completions live in an internal
  heap (lazily invalidated by a per-flow version stamp); exactly one
  simulator timer is kept pending, and it is only rescheduled when the
  earliest completion instant actually changes. Cap churn therefore no
  longer piles superseded timers into the event queue.

``FluidNetwork(mode="reference")`` keeps the original semantics — a
full-network synchronous recompute on every mutation — as the trusted
baseline; the differential tests assert both modes agree on randomized
workloads.

This is the standard flow-level network model used when packet-level
detail is unnecessary; the TCP behaviour the paper's results depend on
(window limits, slow-start ramp, loss back-off) enters through per-flow
caps managed by :class:`repro.net.tcp.TcpStream`.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Set

from repro.net.recorder import RateRecorder
from repro.net.topology import Link
from repro.sim.core import Environment
from repro.sim.events import Event, EventPriority

_EPS_BYTES = 1e-3
_EPS_RATE = 1e-9


class FlowError(Exception):
    """A flow was aborted before completing."""

    def __init__(self, message: str, flow: Optional["Flow"] = None):
        super().__init__(message)
        self.flow = flow


class Flow:
    """One fluid data stream crossing a fixed path.

    Created via :meth:`FluidNetwork.transfer`; the ``done`` event fires
    with the flow itself when the last byte is delivered, or fails with
    :class:`FlowError` when aborted.
    """

    __slots__ = ("id", "name", "path", "size", "cap", "limit", "rate",
                 "done", "recorder", "started_at", "finished_at",
                 "_network", "_remaining", "_advanced_at", "_pred_version")

    def __init__(self, network: "FluidNetwork", name: str, path: List[Link],
                 size: float, cap: float, recorder: Optional[RateRecorder],
                 limit: float = math.inf):
        self.id = network.env.next_id("flow")
        self.name = name or f"flow-{self.id}"
        self.path = path
        self.size = float(size)
        # ``limit`` is a hard ceiling that every later set_cap() is
        # clamped to (e.g. a tape drive's readahead rate feeding a
        # cut-through transfer); ``cap`` is the live, mutable ceiling
        # (e.g. the TCP window).
        self.limit = float(limit)
        self.cap = min(float(cap), self.limit)
        self.rate = 0.0
        self.done: Event = Event(network.env)
        self.recorder = recorder
        self.started_at = network.env.now
        self.finished_at: Optional[float] = None
        self._network = network
        self._remaining = float(size)
        self._advanced_at = network.env.now
        self._pred_version = 0  # bumps when rate changes; stales heap entries

    @property
    def remaining(self) -> float:
        """Bytes still to deliver, exact at the current instant."""
        if self.finished_at is None and self.rate > 0.0:
            dt = self._network.env.now - self._advanced_at
            if dt > 0.0:
                return max(self._remaining - self.rate * dt, 0.0)
        return self._remaining

    @property
    def transferred(self) -> float:
        """Bytes delivered so far."""
        return self.size - self.remaining

    @property
    def active(self) -> bool:
        """True while the flow is in the network."""
        return self.finished_at is None and not self.done.triggered

    def progress(self) -> float:
        """Up-to-the-instant bytes delivered (forces a network flush)."""
        self._network._flush_now()
        return self.transferred

    def set_cap(self, cap: float) -> None:
        """Change this flow's rate ceiling (e.g. TCP window change)."""
        self._network.set_cap(self, cap)

    def abort(self, reason: str = "aborted") -> None:
        """Remove the flow; its ``done`` event fails with FlowError."""
        self._network.abort(self, reason)

    def __repr__(self) -> str:
        return (f"Flow({self.name!r}, {self.transferred:.0f}/{self.size:.0f}B"
                f" @ {self.rate * 8 / 1e6:.1f}Mb/s)")


class FluidNetwork:
    """Event-driven fluid bandwidth sharing over a :class:`Topology`.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        The link graph; capacities are read live at each reallocation.
    mode:
        ``"incremental"`` (default) recomputes only the connected
        component disturbed by a change and coalesces same-instant
        changes; ``"reference"`` recomputes the whole network
        synchronously on every mutation (the original behaviour, kept
        as a differential-testing baseline and escape hatch).
    """

    def __init__(self, env: Environment, topology,
                 mode: str = "incremental") -> None:
        if mode not in ("incremental", "reference"):
            raise ValueError(f"unknown allocator mode {mode!r}")
        self.env = env
        self.topology = topology
        self.mode = mode
        self._flow_map: Dict[int, Flow] = {}  # id -> active flow, ordered
        # Dirty bookkeeping for deferred, component-scoped recomputes.
        self._dirty_flows: Set[Flow] = set()
        self._dirty_links: Set[Link] = set()
        self._dirty_all = False
        self._flush_scheduled = False
        # Predicted completions: (t_abs, pred_version, flow_id, flow),
        # lazily invalidated. One pending simulator timer covers the
        # earliest valid entry.
        self._completion_heap: list = []
        self._timer_version = 0
        self._timer_at = math.inf
        self._timer_pending = False
        self._timer_event = None
        # Instrumentation.
        self.reallocations = 0      # progressive-filling passes
        self.flushes = 0            # coalesced flush rounds
        self.flows_recomputed = 0   # sum of recompute scope sizes
        self.timer_reschedules = 0  # simulator timers actually created

    # -- public API ------------------------------------------------------
    @property
    def flows(self) -> List[Flow]:
        """Active flows, in start order."""
        return list(self._flow_map.values())

    def transfer(self, src: str, dst: str, nbytes: float,
                 cap: float = math.inf, name: str = "",
                 recorder: Optional[RateRecorder] = None,
                 path: Optional[List[Link]] = None,
                 limit: float = math.inf) -> Flow:
        """Start a flow of ``nbytes`` from node ``src`` to node ``dst``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        A zero-byte transfer completes immediately. ``limit`` is a hard
        rate ceiling that survives later :meth:`set_cap` calls.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if path is None:
            path = self.topology.path(src, dst)
        flow = Flow(self, name, path, nbytes, cap, recorder, limit=limit)
        if nbytes == 0:
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        self._flow_map[flow.id] = flow
        for link in path:
            link._flows.add(flow)
        self._mark_flow(flow)
        return flow

    def set_cap(self, flow: Flow, cap: float) -> None:
        """Change ``flow``'s ceiling (clamped to ``flow.limit``) and
        schedule a reallocation."""
        if not flow.active:
            return
        flow.cap = min(float(cap), flow.limit)
        self._mark_flow(flow)

    def abort(self, flow: Flow, reason: str = "aborted") -> None:
        """Remove ``flow``; its waiters see a :class:`FlowError`."""
        if not flow.active:
            return
        now = self.env.now
        self._advance(flow, now)
        self._detach(flow)
        flow.finished_at = now
        flow.rate = 0.0
        flow._pred_version += 1
        if flow.recorder is not None:
            flow.recorder.record(now, 0.0)
        flow.done.fail(FlowError(reason, flow))
        self._request_flush()

    def reallocate(self) -> None:
        """Recompute all rates now (the explicit, synchronous big hammer).

        Component scoping cannot tell what changed when the caller
        mutates link capacities directly, so this recomputes everything.
        Prefer :meth:`link_updated` after changing one link's capacity.
        """
        self._dirty_all = True
        self._flush_now()

    def link_updated(self, link: Link) -> None:
        """Note that ``link``'s capacity changed; reallocate its component.

        Same-instant updates coalesce into one recompute. A capacity
        change on a link carrying no flows cannot move any allocation
        and is skipped outright (idle floor-load ticks are free).
        """
        if self.mode == "reference":
            self.reallocate()
            return
        if link._flows:
            self._dirty_links.add(link)
            self._request_flush()

    def flows_on(self, link: Link) -> Iterable[Flow]:
        """Flows currently crossing ``link``."""
        self._flush_now()
        return tuple(link._flows)

    @property
    def aggregate_rate(self) -> float:
        """Sum of all current flow rates (bytes/s)."""
        self._flush_now()
        return sum(f.rate for f in self._flow_map.values())

    def link_load(self) -> Dict[str, float]:
        """Per-link carried load (bytes/s) — the cheap probe form.

        Flow rates only change at allocation events, so the current
        rates are exact between events; unlike :meth:`snapshot` this
        does not force a flush (no progress bookkeeping is advanced),
        making it safe to call from a periodic gauge sampler without
        taxing the hot path.
        """
        links: Dict[str, float] = {}
        for flow in self._flow_map.values():
            for link in flow.path:
                links[link.name] = links.get(link.name, 0.0) + flow.rate
        return links

    def snapshot(self) -> dict:
        """Diagnostic view: per-link utilization and flow placement.

        Returns ``{"t", "flows", "links"}`` where links maps link name →
        (used_bytes_per_s, capacity, n_flows) for links carrying traffic.
        The transfer monitor and debugging sessions use this to see where
        the bottleneck currently sits.
        """
        self._flush_now()
        links = {}
        for flow in self._flow_map.values():
            for link in flow.path:
                used, cap, n = links.get(link.name,
                                         (0.0, link.capacity, 0))
                links[link.name] = (used + flow.rate, link.capacity,
                                    n + 1)
        return {
            "t": self.env.now,
            "flows": [(f.name, f.rate, f.remaining)
                      for f in self._flow_map.values()],
            "links": links,
        }

    def bottlenecks(self, threshold: float = 0.98) -> list:
        """Names of links whose carried load ≥ threshold × capacity."""
        snap = self.snapshot()
        return sorted(name for name, (used, cap, _n)
                      in snap["links"].items()
                      if cap > 0 and used >= threshold * cap)

    # -- dirty tracking and coalescing ----------------------------------
    def _mark_flow(self, flow: Flow) -> None:
        if self.mode == "reference":
            self._dirty_all = True
            self._flush_now()
            return
        self._dirty_flows.add(flow)
        self._request_flush()

    def _request_flush(self) -> None:
        """Arm one zero-delay LOW-priority event to recompute at the end
        of the current instant (after every same-time NORMAL event has
        made its changes)."""
        if self.mode == "reference":
            self._dirty_all = True
            self._flush_now()
            return
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        ev = Event(self.env)
        ev.add_callback(self._on_flush_event)
        ev.succeed(priority=EventPriority.LOW)

    def _on_flush_event(self, _ev: Event) -> None:
        self._flush_scheduled = False
        self._flush_now()

    # -- internals -------------------------------------------------------
    def _advance(self, flow: Flow, now: float) -> None:
        """Advance one flow's byte count to ``now`` (lazy accounting)."""
        dt = now - flow._advanced_at
        if dt < 0:
            raise RuntimeError("network clock went backwards")
        if dt > 0.0 and flow.rate > 0.0:
            flow._remaining -= flow.rate * dt
        flow._advanced_at = now

    def _detach(self, flow: Flow) -> None:
        self._flow_map.pop(flow.id, None)
        self._dirty_flows.discard(flow)
        for link in flow.path:
            link._flows.discard(flow)
            if link._flows:
                self._dirty_links.add(link)

    def _finish(self, flow: Flow, now: float) -> None:
        """Retire a flow whose last byte has been delivered."""
        flow._remaining = 0.0
        self._detach(flow)
        flow.finished_at = now
        flow.rate = 0.0
        flow._pred_version += 1
        if flow.recorder is not None:
            flow.recorder.record(now, 0.0)
        flow.done.succeed(flow)

    def _pop_due_completions(self, now: float) -> None:
        """Mark flows whose predicted completion instant has arrived as
        dirty; the flush retires them (in start order, like the original
        full-scan implementation) and recomputes their components."""
        heap = self._completion_heap
        while heap:
            t, version, _fid, flow, _made_at, _rel = heap[0]
            if not flow.active or version != flow._pred_version:
                heapq.heappop(heap)  # stale entry
                continue
            if t > now:
                break
            heapq.heappop(heap)
            self._dirty_flows.add(flow)

    def _scope(self, now: float) -> List[Flow]:
        """Flows whose rates must be recomputed: the connected closure of
        every dirty flow and every flow on a dirty link, in start order
        (finish order must be deterministic — waiter processes resume in
        the order their flows' ``done`` events were triggered)."""
        if self._dirty_all or self.mode == "reference":
            return list(self._flow_map.values())
        scope: Set[Flow] = set()
        stack = [f for f in self._dirty_flows if f.active]
        for link in self._dirty_links:
            stack.extend(link._flows)
        while stack:
            f = stack.pop()
            if f in scope:
                continue
            scope.add(f)
            for link in f.path:
                for g in link._flows:
                    if g not in scope:
                        stack.append(g)
        return sorted(scope, key=lambda f: f.id)

    def _flush_now(self) -> None:
        """Apply due completions and recompute every dirty component."""
        now = self.env.now
        self._pop_due_completions(now)
        if self._dirty_all or self._dirty_flows or self._dirty_links:
            scope = self._scope(now)
            # Settle byte counts at the old rates before assigning new
            # ones; flows that crossed their last byte retire here (and
            # shrink the scope). Retirement marks links dirty again, but
            # only with flows already in the closure — so the dirty sets
            # are cleared after this loop, not before.
            live: List[Flow] = []
            for f in scope:
                self._advance(f, now)
                if f._remaining <= _EPS_BYTES:
                    self._finish(f, now)
                else:
                    live.append(f)
            self._dirty_all = False
            self._dirty_flows.clear()
            self._dirty_links.clear()
            self.flushes += 1
            self.flows_recomputed += len(live)
            if live:
                self._fill(live, now)
        self._reschedule_timer(now)

    def _fill(self, flows: List[Flow], now: float) -> None:
        """Progressive-filling max-min fairness with per-flow caps.

        ``flows`` must be closed under link sharing (a union of whole
        components); links outside it carry none of its traffic, so each
        involved link's full capacity belongs to this subproblem.
        """
        self.reallocations += 1
        rates: Dict[Flow, float] = dict.fromkeys(flows, 0.0)
        residual: Dict[Link, float] = {}
        link_unfrozen: Dict[Link, Set[Flow]] = {}
        for f in flows:
            for link in f.path:
                if link not in residual:
                    residual[link] = link.capacity
                    link_unfrozen[link] = set()
        unfrozen: Set[Flow] = set()
        for f in flows:
            # A flow through a dead link, or with a zero cap, stays at 0.
            if f.cap <= _EPS_RATE or any(
                    residual[l] <= _EPS_RATE for l in f.path):
                continue
            unfrozen.add(f)
            for link in f.path:
                link_unfrozen[link].add(f)
        guard = 0
        while unfrozen:
            guard += 1
            if guard > 10 * len(flows) + 10:  # pragma: no cover
                raise RuntimeError("progressive filling failed to converge")
            # Largest uniform increment every unfrozen flow can take.
            delta = math.inf
            for link, users in link_unfrozen.items():
                if users:
                    delta = min(delta, residual[link] / len(users))
            for f in unfrozen:
                delta = min(delta, f.cap - rates[f])
            if not math.isfinite(delta):
                break  # only cap-unbounded flows on unconstrained links
            delta = max(delta, 0.0)
            for f in unfrozen:
                rates[f] += delta
            for link, users in link_unfrozen.items():
                if users:
                    residual[link] -= delta * len(users)
            # Freeze flows at their cap or on a saturated link.
            newly_frozen: Set[Flow] = set()
            for link, users in link_unfrozen.items():
                if users and residual[link] <= _EPS_RATE:
                    newly_frozen |= users
            for f in unfrozen:
                if rates[f] >= f.cap - _EPS_RATE:
                    newly_frozen.add(f)
            if not newly_frozen and delta <= _EPS_RATE:
                # No progress possible (degenerate); freeze everything.
                newly_frozen = set(unfrozen)
            for f in newly_frozen:
                unfrozen.discard(f)
                for link in f.path:
                    link_unfrozen[link].discard(f)
        heap = self._completion_heap
        for f in flows:
            f.rate = rates[f]
            f._pred_version += 1
            if f.recorder is not None:
                f.recorder.record(now, f.rate)
            if f.rate > _EPS_RATE:
                # Keep the relative delay alongside the absolute instant:
                # scheduling ``now + rel`` directly (when the prediction
                # is fresh) reproduces the original timer arithmetic
                # bit-for-bit instead of round-tripping through ``t - now``.
                rel = f._remaining / f.rate
                heapq.heappush(heap, (now + rel, f._pred_version, f.id,
                                      f, now, rel))

    def _reschedule_timer(self, now: float) -> None:
        """Keep exactly one simulator timer pending, at the earliest valid
        predicted completion — and leave it alone if that instant is
        unchanged (event-queue hygiene: cap churn schedules nothing)."""
        heap = self._completion_heap
        while heap:
            t, version, _fid, flow, _made_at, _rel = heap[0]
            if not flow.active or version != flow._pred_version:
                heapq.heappop(heap)
                continue
            break
        if not heap:
            # Nothing will complete; any still-pending timer degenerates
            # to a no-op flush when it fires.
            return
        t_next, _version, _fid, _flow, made_at, rel = heap[0]
        if self._timer_pending and self._timer_at == t_next:
            return
        if self._timer_pending and self._timer_event is not None:
            self.env.cancel(self._timer_event)  # real cancellation
        self._timer_version += 1
        self._timer_at = t_next
        self._timer_pending = True
        self.timer_reschedules += 1
        version = self._timer_version
        delay = rel if made_at == now else max(t_next - now, 0.0)
        timer = self.env.timeout(delay)
        self._timer_event = timer

        def _fire(_ev, version=version):
            if version != self._timer_version:
                return  # superseded by a later reallocation
            self._timer_pending = False
            self._flush_now()

        timer.add_callback(_fire)
