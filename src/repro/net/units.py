"""Unit conventions and conversion helpers.

Internal convention, used everywhere in ``repro``:

- **time** — seconds (float);
- **data sizes** — bytes (float; fractional bytes are fine in a fluid model);
- **rates** — bytes/second.

The paper quotes rates in bits/second (Mb/s, Gb/s); the helpers here
convert at module boundaries so the core never mixes units.
"""

from __future__ import annotations

# Sizes in bytes.
KB = 1024.0
MB = 1024.0 ** 2
GB = 1024.0 ** 3
TB = 1024.0 ** 4

# Rates: bits per second expressed in bytes/second.
KILOBIT = 1000.0 / 8.0
MEGABIT = 1_000_000.0 / 8.0
GIGABIT = 1_000_000_000.0 / 8.0


def mbps(x: float) -> float:
    """Megabits/second → bytes/second."""
    return x * MEGABIT


def gbps(x: float) -> float:
    """Gigabits/second → bytes/second."""
    return x * GIGABIT


def to_mbps(bytes_per_second: float) -> float:
    """Bytes/second → megabits/second."""
    return bytes_per_second / MEGABIT


def to_gbps(bytes_per_second: float) -> float:
    """Bytes/second → gigabits/second."""
    return bytes_per_second / GIGABIT


def bits(nbytes: float) -> float:
    """Bytes → bits."""
    return nbytes * 8.0


def bytes_per_sec(bits_per_second: float) -> float:
    """Bits/second → bytes/second."""
    return bits_per_second / 8.0
