"""TCP stream behaviour layered on the fluid model.

A :class:`TcpStream` owns the congestion state of one TCP connection and
drives the *cap* of whatever flow is currently attached to it:

- **window limit** — the cap never exceeds ``cwnd / RTT``, and ``cwnd``
  never exceeds the negotiated buffer size. This is why the paper's §7
  insists on setting buffers to the bandwidth–delay product.
- **slow start** — ``cwnd`` doubles once per RTT from its initial value,
  so short transfers on fresh connections never reach full speed (the
  inter-transfer dips of Figure 8).
- **loss response** — Reno-style: on a loss event, ``cwnd`` halves, then
  regrows linearly (approximated with a few coarse steps to keep the
  event count bounded over multi-hour simulations).

The congestion window *persists across transfers* on the same stream
object; GridFTP data-channel caching exploits exactly this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.net.fluid import Flow
from repro.sim.core import Environment


def bdp_buffer_size(bandwidth: float, rtt: float) -> float:
    """Bandwidth–delay product: ideal TCP buffer in bytes.

    ``bandwidth`` is in bytes/s, ``rtt`` in seconds. The paper's §7 formula
    (Buffer KB = Mb/s × ms × 1024/1000/8) is this same product expressed
    in mixed units.
    """
    if bandwidth < 0 or rtt < 0:
        raise ValueError("bandwidth and rtt must be non-negative")
    return bandwidth * rtt


@dataclass
class TcpParams:
    """Tunables for a TCP stream.

    Attributes
    ----------
    mss:
        Maximum segment size in bytes.
    init_cwnd_segments:
        Initial congestion window, in segments.
    buffer_bytes:
        Negotiated send/receive buffer: hard ceiling on ``cwnd``. The
        64 KB default mirrors the untuned-stack default the paper warns
        about; SC'2000 runs used 1 MB.
    loss_rate:
        Mean random-loss events per second on this stream (Poisson).
    recovery_steps:
        Number of coarse steps used to approximate linear regrowth.
    stall_timeout:
        Seconds of zero progress after which the transport declares the
        connection dead (network outage → restart logic upstream).
    stall_poll:
        Interval between progress checks of the stall watchdogs. The
        default (``None``) polls at ``min(stall_timeout / 4, 5)`` s;
        large fleets raise it so watchdog ticks don't dominate the
        event budget.
    """

    mss: float = 1460.0
    init_cwnd_segments: int = 2
    buffer_bytes: float = 64 * 1024.0
    loss_rate: float = 0.0
    recovery_steps: int = 6
    stall_timeout: float = 30.0
    stall_poll: Optional[float] = None

    def poll_interval(self, timeout: float) -> float:
        """Watchdog tick for a stall budget of ``timeout`` seconds."""
        if self.stall_poll is not None:
            return self.stall_poll
        return min(timeout / 4.0, 5.0)

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.stall_poll is not None and self.stall_poll <= 0:
            raise ValueError("stall_poll must be positive")
        if self.buffer_bytes < self.mss:
            raise ValueError("buffer must hold at least one segment")
        if self.loss_rate < 0:
            raise ValueError("loss_rate must be >= 0")
        if self.recovery_steps < 1:
            raise ValueError("recovery_steps must be >= 1")

    @property
    def init_cwnd(self) -> float:
        """Initial congestion window in bytes."""
        return self.init_cwnd_segments * self.mss


class TcpStream:
    """Congestion state for one TCP connection.

    Parameters
    ----------
    env:
        Simulation environment.
    rtt:
        Round-trip time of the connection's path, seconds.
    params:
        :class:`TcpParams`.
    rng:
        Numpy generator for loss sampling (required if loss_rate > 0).
    """

    def __init__(self, env: Environment, rtt: float, params: TcpParams,
                 rng: Optional[np.random.Generator] = None):
        if rtt <= 0:
            raise ValueError("rtt must be positive")
        self.env = env
        self.rtt = rtt
        self.params = params
        self.rng = rng
        if params.loss_rate > 0 and rng is None:
            raise ValueError("loss_rate > 0 requires an rng")
        self.cwnd = params.init_cwnd
        self.losses = 0  # instrumentation

    # -- window accounting ---------------------------------------------------
    @property
    def window_cap(self) -> float:
        """Current throughput ceiling, bytes/s (= cwnd / RTT)."""
        return self.cwnd / self.rtt

    @property
    def max_window(self) -> float:
        """Negotiated buffer: the ceiling on cwnd."""
        return self.params.buffer_bytes

    def reset(self) -> None:
        """Return to the post-handshake state (new connection, cold window)."""
        self.cwnd = self.params.init_cwnd
        self.losses = 0

    def _grow_slow_start(self) -> None:
        self.cwnd = min(self.cwnd * 2.0, self.max_window)

    def _on_loss(self) -> None:
        self.losses += 1
        self.cwnd = max(self.cwnd / 2.0, self.params.mss)

    # -- cap driver ------------------------------------------------------------
    def drive(self, flow: Flow):
        """Simulation process: steer ``flow.cap`` while the flow lives.

        Start with ``env.process(stream.drive(flow))``. The process exits
        when the flow completes or is aborted. The window state it leaves
        behind is reused by the next transfer on this stream (channel
        caching); a fresh connection should call :meth:`reset` first.
        """
        env = self.env
        p = self.params
        flow.set_cap(self.window_cap)
        next_loss = self._sample_loss_gap()
        while flow.active:
            in_slow_start = self.cwnd < self.max_window - 1e-9
            if in_slow_start:
                step = self.rtt
            elif next_loss is not None:
                step = next_loss
            else:
                return  # steady state, nothing left to schedule
            wait = step if next_loss is None else min(step, next_loss)
            yield env.timeout(wait)
            if not flow.active:
                return
            if next_loss is not None:
                next_loss -= wait
            if next_loss is not None and next_loss <= 1e-12:
                self._on_loss()
                flow.set_cap(self.window_cap)
                yield from self._recover(flow)
                next_loss = self._sample_loss_gap()
                continue
            if in_slow_start:
                self._grow_slow_start()
                flow.set_cap(self.window_cap)

    def _recover(self, flow: Flow):
        """Coarse linear regrowth of cwnd back to the buffer ceiling."""
        p = self.params
        deficit = self.max_window - self.cwnd
        if deficit <= 0:
            return
        # Linear growth: one MSS per RTT → total time to recover:
        total_time = deficit / p.mss * self.rtt
        step_time = total_time / p.recovery_steps
        step_gain = deficit / p.recovery_steps
        for _ in range(p.recovery_steps):
            yield self.env.timeout(step_time)
            if not flow.active:
                return
            self.cwnd = min(self.cwnd + step_gain, self.max_window)
            flow.set_cap(self.window_cap)

    def _sample_loss_gap(self) -> Optional[float]:
        if self.params.loss_rate <= 0:
            return None
        return float(self.rng.exponential(1.0 / self.params.loss_rate))

    def __repr__(self) -> str:
        return (f"TcpStream(rtt={self.rtt * 1e3:.1f}ms, "
                f"cwnd={self.cwnd / 1024:.0f}KB, "
                f"cap={self.window_cap * 8 / 1e6:.1f}Mb/s)")
