"""A toy name service with outage windows.

Figure 8 of the paper attributes one of the bandwidth drops to "DNS
problems" on the SC'2000 floor; to reproduce that failure mode, hostname
resolution is a first-class simulated step that can be made to fail for a
scheduled period.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.core import Environment


class DnsError(Exception):
    """Hostname resolution failed (unknown name or outage)."""


class NameService:
    """Maps hostnames to topology node names, with simulated latency.

    Parameters
    ----------
    env:
        Simulation environment.
    lookup_latency:
        Seconds per successful (or failed) resolution.
    """

    def __init__(self, env: Environment, lookup_latency: float = 0.01):
        self.env = env
        self.lookup_latency = lookup_latency
        self._records: Dict[str, str] = {}
        self._outages: List[Tuple[float, float]] = []
        self.lookups = 0  # instrumentation
        self.failures = 0

    def register(self, hostname: str, node_name: str) -> None:
        """Add (or replace) an A-record."""
        self._records[hostname] = node_name

    def add_outage(self, start: float, duration: float) -> None:
        """Resolution fails during [start, start+duration)."""
        if duration < 0:
            raise ValueError("duration must be >= 0")
        self._outages.append((start, start + duration))

    def is_down(self, t: float) -> bool:
        """True if the service is in an outage window at time ``t``."""
        return any(a <= t < b for a, b in self._outages)

    def resolve(self, hostname: str):
        """Simulation process: resolve ``hostname`` to a node name.

        Yields the lookup latency, then returns the node name, or raises
        :class:`DnsError` on unknown names or during an outage window.
        """
        self.lookups += 1
        yield self.env.timeout(self.lookup_latency)
        if self.is_down(self.env.now):
            self.failures += 1
            raise DnsError(f"DNS outage at t={self.env.now:.1f}s "
                           f"(resolving {hostname!r})")
        node = self._records.get(hostname)
        if node is None:
            self.failures += 1
            raise DnsError(f"unknown host {hostname!r}")
        return node

    def resolve_now(self, hostname: str) -> str:
        """Zero-latency resolution for setup code (not a process)."""
        node = self._records.get(hostname)
        if node is None:
            raise DnsError(f"unknown host {hostname!r}")
        return node

    def __contains__(self, hostname: str) -> bool:
        return hostname in self._records
