"""Background (cross) traffic generation.

The SC'2000 measurements were taken on shared infrastructure — the
SciNET floor network and the HSCC/NTON backbone carried every other
demo's traffic too ("we were only supposed to use 1.5 Gb/s" of the
OC-48). Cross traffic is what separates the *peak* rates (quiet floor)
from the *sustained* rate (busy floor) in Table 1.

:class:`BackgroundTraffic` offers an M/G/∞-style load: flows arrive as a
Poisson process, carry heavy-tailed (lognormal) volumes, are individually
rate-capped (other demos' hosts had NICs too), and share links with
foreground traffic through the same max-min allocator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.net.fluid import FluidNetwork
from repro.sim.core import Environment


class BackgroundTraffic:
    """Poisson cross-traffic between two topology nodes.

    Parameters
    ----------
    env, network:
        Simulation environment and fluid network.
    src, dst:
        Endpoints of the cross traffic (typically router nodes so no
        host model throttles it).
    arrival_rate:
        Flow arrivals per second.
    mean_bytes:
        Mean flow volume (lognormal; sigma controls burstiness).
    sigma:
        Lognormal shape; 1.0 ≈ moderately heavy-tailed.
    flow_cap:
        Per-flow rate ceiling, bytes/s.
    rng:
        Random source (required).

    Offered load ≈ ``arrival_rate × mean_bytes`` bytes/s; whether it is
    *carried* depends on contention.
    """

    def __init__(self, env: Environment, network: FluidNetwork,
                 src: str, dst: str, arrival_rate: float,
                 mean_bytes: float, flow_cap: float,
                 rng: np.random.Generator, sigma: float = 1.0):
        if arrival_rate <= 0 or mean_bytes <= 0 or flow_cap <= 0:
            raise ValueError("rates, sizes, caps must be positive")
        self.env = env
        self.network = network
        self.src = src
        self.dst = dst
        self.arrival_rate = arrival_rate
        self.mean_bytes = mean_bytes
        self.sigma = sigma
        self.flow_cap = flow_cap
        self.rng = rng
        self.flows_started = 0
        self.bytes_offered = 0.0
        self._running = False

    @property
    def offered_load(self) -> float:
        """Long-run offered load, bytes/s."""
        return self.arrival_rate * self.mean_bytes

    def start(self) -> None:
        """Begin generating (idempotent)."""
        if not self._running:
            self._running = True
            self.env.process(self._generator())

    def _sample_size(self) -> float:
        # Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
        mu = np.log(self.mean_bytes) - self.sigma ** 2 / 2.0
        return float(self.rng.lognormal(mu, self.sigma))

    def _generator(self):
        env = self.env
        while True:
            gap = float(self.rng.exponential(1.0 / self.arrival_rate))
            yield env.timeout(gap)
            size = self._sample_size()
            self.flows_started += 1
            self.bytes_offered += size
            flow = self.network.transfer(
                self.src, self.dst, size, cap=self.flow_cap,
                name=f"bg-{self.flows_started}")
            flow.done.defuse()  # nobody waits on background flows


class LinkLoadModulator:
    """Time-varying cross-load on one link, as residual capacity.

    Simulating every other demo's flows individually is prohibitively
    expensive at event scale, and per-flow max-min fairness would let a
    32-stream foreground dominate anyway (real floor TCP did not). The
    modulator instead samples the *fraction of the link consumed by
    others* as a mean-reverting AR(1) process and sets the link's usable
    capacity to the residual, reallocating foreground flows each step.

    Parameters
    ----------
    env, network:
        Simulation environment and fluid network.
    link:
        The shared link to modulate.
    mean_load:
        Long-run average cross-load fraction of nominal capacity.
    volatility:
        Standard deviation of the AR(1) innovations.
    correlation:
        AR(1) coefficient per step (0 = white noise, →1 = slow drift).
    interval:
        Seconds between load updates.
    floor / ceiling:
        Clamp on the load fraction (others never quite vacate or
        completely saturate the pipe).
    """

    def __init__(self, env: Environment, network: FluidNetwork, link,
                 mean_load: float, rng: np.random.Generator,
                 volatility: float = 0.15, correlation: float = 0.85,
                 interval: float = 10.0, floor: float = 0.05,
                 ceiling: float = 0.97):
        if not (0.0 <= mean_load <= 1.0):
            raise ValueError("mean_load must be in [0, 1]")
        if not (0.0 <= correlation < 1.0):
            raise ValueError("correlation must be in [0, 1)")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not (0.0 <= floor <= ceiling <= 1.0):
            raise ValueError("need 0 <= floor <= ceiling <= 1")
        self.env = env
        self.network = network
        self.link = link
        self.mean_load = mean_load
        self.volatility = volatility
        self.correlation = correlation
        self.interval = interval
        self.floor = floor
        self.ceiling = ceiling
        self.rng = rng
        self.load = mean_load
        self.samples = 0
        self._running = False

    def start(self) -> None:
        """Begin modulating (idempotent)."""
        if not self._running:
            self._running = True
            self.env.process(self._run())

    def _step(self) -> None:
        noise = float(self.rng.normal(0.0, self.volatility))
        self.load = (self.correlation * self.load
                     + (1 - self.correlation) * self.mean_load + noise)
        self.load = float(np.clip(self.load, self.floor, self.ceiling))
        self.samples += 1
        # Never resurrect a link held down/degraded by fault injection;
        # the modulator resumes writing once every hold is released.
        if getattr(self.link, "faulted", False):
            return
        self.link.capacity = self.link.nominal_capacity * (1.0 - self.load)
        # Component-scoped: an idle-floor tick (no foreground flows on
        # the modulated link) costs nothing; otherwise only the link's
        # component is recomputed.
        self.network.link_updated(self.link)

    def _run(self):
        while True:
            self._step()
            yield self.env.timeout(self.interval)
