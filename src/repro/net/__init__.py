"""Fluid-flow wide-area network model.

The network is a graph of :class:`Link` objects with capacity (bits/s) and
latency. Data movement is modelled at *flow* granularity: each active flow
receives a rate from a progressive-filling max-min fair allocator
(:class:`FluidNetwork`), subject to a per-flow cap contributed by the TCP
window model (:class:`TcpStream`) and to the capacities of every link on
its path. Host-internal bottlenecks (NIC, CPU interrupt servicing, bus,
disk) are modelled as additional links on the path, so contention at any
layer falls out of the same allocator.

Rates are piecewise-constant between flow events; every flow records its
``(t, rate)`` breakpoints, and :class:`RateRecorder` computes exact
windowed peaks and sustained averages from those breakpoints (this is how
the Table 1 "peak over 0.1 s / 5 s / sustained 1 h" figures are produced).
"""

from repro.net.units import (
    GB,
    GIGABIT,
    KB,
    KILOBIT,
    MB,
    MEGABIT,
    TB,
    bits,
    bytes_per_sec,
    gbps,
    mbps,
    to_gbps,
    to_mbps,
)
from repro.net.topology import Link, Node, Topology
from repro.net.recorder import RateRecorder, RateSeries, aggregate_series
from repro.net.fluid import Flow, FlowError, FluidNetwork
from repro.net.tcp import TcpParams, TcpStream, bdp_buffer_size
from repro.net.transport import Connection, ConnectionRefused, Transport
from repro.net.background import BackgroundTraffic, LinkLoadModulator
from repro.net.dns import DnsError, NameService
from repro.net.faults import Fault, FaultInjector, FaultSchedule

__all__ = [
    "GB", "GIGABIT", "KB", "KILOBIT", "MB", "MEGABIT", "TB",
    "bits", "bytes_per_sec", "gbps", "mbps", "to_gbps", "to_mbps",
    "Link", "Node", "Topology",
    "RateRecorder", "RateSeries", "aggregate_series",
    "BackgroundTraffic", "LinkLoadModulator",
    "Flow", "FlowError", "FluidNetwork",
    "TcpParams", "TcpStream", "bdp_buffer_size",
    "Connection", "ConnectionRefused", "Transport",
    "DnsError", "NameService",
    "Fault", "FaultInjector", "FaultSchedule",
]
