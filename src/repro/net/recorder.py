"""Exact rate-series recording and analysis.

Flow rates in the fluid model are piecewise constant, so instead of
sampling bandwidth on a fixed grid we record the breakpoints exactly and
answer questions analytically:

- total bytes over an interval (integral of the step function),
- average rate over an interval,
- **peak rate over any sliding window** — e.g. the paper's "1.55 Gb/s over
  0.1 s" / "1.03 Gb/s over 5 s" numbers — computed exactly: the windowed
  mean of a step function is piecewise linear in the window position, so
  its maximum is attained where either window edge touches a breakpoint.

All computation is vectorized with numpy on the breakpoint arrays.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


class RateSeries:
    """An immutable step function ``rate(t)`` defined on [t0, t1].

    Parameters
    ----------
    times:
        Breakpoint times, strictly increasing; ``times[i]`` is where
        ``rates[i]`` starts to apply.
    rates:
        Rate (bytes/s) on each segment ``[times[i], times[i+1])``.
    t_end:
        End of the domain (the last segment runs to here).
    """

    def __init__(self, times: Sequence[float], rates: Sequence[float],
                 t_end: float):
        t = np.asarray(times, dtype=float)
        r = np.asarray(rates, dtype=float)
        if t.ndim != 1 or t.shape != r.shape:
            raise ValueError("times and rates must be 1-D and equal length")
        if t.size == 0:
            raise ValueError("empty series")
        if np.any(np.diff(t) <= 0):
            raise ValueError("times must be strictly increasing")
        if t_end < t[-1]:
            raise ValueError("t_end precedes the last breakpoint")
        if np.any(r < 0):
            raise ValueError("negative rates")
        self.times = t
        self.rates = r
        self.t_end = float(t_end)
        # Cumulative bytes at each breakpoint plus at t_end: piecewise
        # linear; np.interp evaluates it anywhere.
        seg = np.diff(np.append(t, t_end))
        self._cum_t = np.append(t, t_end)
        self._cum_b = np.concatenate(([0.0], np.cumsum(seg * r)))

    # -- basic queries ---------------------------------------------------
    @property
    def t_start(self) -> float:
        """Start of the domain."""
        return float(self.times[0])

    @property
    def total_bytes(self) -> float:
        """Integral of the rate over the whole domain."""
        return float(self._cum_b[-1])

    def cumulative_bytes(self, t) -> np.ndarray:
        """Bytes delivered from t_start up to time(s) ``t`` (clipped)."""
        return np.interp(t, self._cum_t, self._cum_b)

    def bytes_between(self, t0: float, t1: float) -> float:
        """Bytes delivered in [t0, t1]."""
        if t1 < t0:
            raise ValueError("t1 < t0")
        b = self.cumulative_bytes([t0, t1])
        return float(b[1] - b[0])

    def average(self, t0: Optional[float] = None,
                t1: Optional[float] = None) -> float:
        """Mean rate (bytes/s) over [t0, t1] (defaults to the full domain)."""
        t0 = self.t_start if t0 is None else t0
        t1 = self.t_end if t1 is None else t1
        if t1 <= t0:
            raise ValueError("empty interval")
        return self.bytes_between(t0, t1) / (t1 - t0)

    def rate_at(self, t) -> np.ndarray:
        """Instantaneous rate at time(s) ``t`` (0 outside the domain)."""
        t = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.times, t, side="right") - 1
        out = np.where(idx >= 0, self.rates[np.clip(idx, 0, None)], 0.0)
        out = np.where((t < self.t_start) | (t >= self.t_end), 0.0, out)
        return out

    # -- windowed peak -----------------------------------------------------
    def peak_windowed(self, window: float) -> float:
        """Exact maximum of ``bytes(t, t+window)/window`` over the domain.

        If the domain is shorter than ``window`` the whole-domain average
        is returned.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        span = self.t_end - self.t_start
        if span <= window:
            return self.total_bytes / window if span > 0 else 0.0
        # Candidate left edges: every breakpoint, plus positions putting
        # the *right* edge on a breakpoint; clip into the valid range.
        candidates = np.concatenate((self.times, self._cum_t - window,
                                     [self.t_end - window]))
        candidates = np.clip(candidates, self.t_start, self.t_end - window)
        candidates = np.unique(candidates)
        left = self.cumulative_bytes(candidates)
        right = self.cumulative_bytes(candidates + window)
        return float(np.max(right - left) / window)

    def peak_instantaneous(self) -> float:
        """Largest segment rate."""
        return float(np.max(self.rates))

    # -- resampling (for report output) -------------------------------------
    def sample(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Average rate on consecutive bins of width ``dt``.

        Returns (bin_start_times, mean_rates); used to print the Figure 8
        style bandwidth timeline.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        edges = np.arange(self.t_start, self.t_end + dt, dt)
        if edges[-1] < self.t_end:
            edges = np.append(edges, self.t_end)
        cum = self.cumulative_bytes(edges)
        widths = np.diff(edges)
        rates = np.diff(cum) / np.where(widths > 0, widths, 1.0)
        return edges[:-1], rates

    def __repr__(self) -> str:
        return (f"RateSeries({self.times.size} segments, "
                f"[{self.t_start:.3f}, {self.t_end:.3f}]s, "
                f"{self.total_bytes / 2**30:.3f} GiB)")


class RateRecorder:
    """Mutable accumulator of ``(t, rate)`` breakpoints for one flow.

    The fluid allocator calls :meth:`record` whenever the flow's rate
    changes; :meth:`close` freezes the series.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._rates: List[float] = []
        self._closed_at: Optional[float] = None

    def record(self, t: float, rate: float) -> None:
        """Note that the rate becomes ``rate`` at time ``t``."""
        if self._closed_at is not None:
            raise RuntimeError(f"recorder {self.name!r} already closed")
        if rate < 0:
            raise ValueError("negative rate")
        if self._times:
            last = self._times[-1]
            if t < last - 1e-12:
                raise ValueError(f"time went backwards: {t} < {last}")
            if t <= last + 1e-12:
                # Same instant: overwrite (several reallocations can land
                # on one event time).
                self._rates[-1] = rate
                return
            if rate == self._rates[-1]:
                return  # no change; keep the series minimal
        self._times.append(float(t))
        self._rates.append(float(rate))

    def close(self, t_end: float) -> RateSeries:
        """Freeze and return the series, ending at ``t_end``."""
        if self._closed_at is not None:
            raise RuntimeError(f"recorder {self.name!r} already closed")
        if not self._times:
            raise RuntimeError(f"recorder {self.name!r} has no samples")
        self._closed_at = t_end
        return RateSeries(self._times, self._rates, max(t_end, self._times[-1]))

    @property
    def is_empty(self) -> bool:
        """True if nothing was recorded yet."""
        return not self._times


def aggregate_series(series: Iterable[RateSeries]) -> RateSeries:
    """Sum several rate series into one (aggregate bandwidth).

    The result's domain spans min(t_start) .. max(t_end); each input
    contributes 0 outside its own domain.
    """
    series = list(series)
    if not series:
        raise ValueError("no series to aggregate")
    t_end = max(s.t_end for s in series)
    # Each series' own end is a breakpoint too: its contribution drops to 0.
    all_times = np.unique(np.concatenate(
        [s.times for s in series] + [np.array([s.t_end]) for s in series]))
    all_times = all_times[all_times < t_end]
    total = np.zeros_like(all_times)
    for s in series:
        total += s.rate_at(all_times)
    return RateSeries(all_times, total, t_end)
