"""Fault injection: link, site, and DNS outages on a schedule.

The SC'2000 experiment of Figure 8 encountered "a power failure for the SC
network (SCinet), DNS problems, and backbone problems on the exhibition
floor". :class:`FaultSchedule` declares such incidents; a
:class:`FaultInjector` executes them against the live topology, taking
links down (stalling every flow that crosses them) and restoring them
later, triggering reallocation each time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional

from repro.net.dns import NameService
from repro.net.fluid import FluidNetwork
from repro.sim.core import Environment

FaultKind = Literal["link", "site", "dns", "degrade"]


@dataclass(frozen=True)
class Fault:
    """One scheduled incident.

    ``target`` names a link (kind="link"/"degrade"), a site
    (kind="site" — every link whose ``site`` matches goes down), or is
    ignored (kind="dns"). ``fraction`` applies to "degrade": remaining
    capacity as a fraction of nominal. ``start`` is measured from the
    moment the schedule is installed (not absolute simulation time).
    """

    kind: FaultKind
    target: str
    start: float
    duration: float
    fraction: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("fault needs start >= 0 and duration > 0")
        if self.kind == "degrade" and not (0.0 <= self.fraction < 1.0):
            raise ValueError("degrade fraction must be in [0, 1)")


@dataclass
class FaultSchedule:
    """A declarative list of faults for a scenario."""

    faults: List[Fault] = field(default_factory=list)

    def link_outage(self, link: str, start: float, duration: float,
                    description: str = "") -> "FaultSchedule":
        """Take one link down for a period."""
        self.faults.append(Fault("link", link, start, duration,
                                 description=description))
        return self

    def site_outage(self, site: str, start: float, duration: float,
                    description: str = "") -> "FaultSchedule":
        """Power-failure style: every link at ``site`` goes down."""
        self.faults.append(Fault("site", site, start, duration,
                                 description=description))
        return self

    def dns_outage(self, start: float, duration: float,
                   description: str = "") -> "FaultSchedule":
        """Name resolution fails for a period."""
        self.faults.append(Fault("dns", "", start, duration,
                                 description=description))
        return self

    def degrade(self, link: str, start: float, duration: float,
                fraction: float, description: str = "") -> "FaultSchedule":
        """Reduce a link to ``fraction`` of nominal capacity for a period."""
        self.faults.append(Fault("degrade", link, start, duration,
                                 fraction=fraction, description=description))
        return self

    def __len__(self) -> int:
        return len(self.faults)


class FaultInjector:
    """Executes a :class:`FaultSchedule` against the live network."""

    def __init__(self, env: Environment, network: FluidNetwork,
                 name_service: Optional[NameService] = None):
        self.env = env
        self.network = network
        self.name_service = name_service
        self.log: List[tuple] = []  # (time, action, description)

    def install(self, schedule: FaultSchedule) -> None:
        """Arm every fault in ``schedule`` as a simulation process."""
        for fault in schedule.faults:
            if fault.kind == "dns":
                if self.name_service is None:
                    raise ValueError("dns fault needs a name service")
                # NameService windows are absolute; faults are relative
                # to install time.
                self.name_service.add_outage(self.env.now + fault.start,
                                             fault.duration)
                continue
            self.env.process(self._run_fault(fault))

    def _links_for(self, fault: Fault):
        topo = self.network.topology
        if fault.kind in ("link", "degrade"):
            if fault.target not in topo.links:
                raise KeyError(f"unknown link {fault.target!r}")
            return [topo.links[fault.target]]
        # site outage: all links touching the site
        links = [l for l in topo.links.values()
                 if l.site == fault.target or l.src.site == fault.target
                 or l.dst.site == fault.target]
        if not links:
            raise KeyError(f"no links at site {fault.target!r}")
        return links

    def _run_fault(self, fault: Fault):
        links = self._links_for(fault)
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        for link in links:
            if fault.kind == "degrade":
                link.capacity = link.nominal_capacity * fault.fraction
            else:
                link.set_down()
        self.log.append((self.env.now, f"{fault.kind} down",
                         fault.description or fault.target))
        self.network.reallocate()
        yield self.env.timeout(fault.duration)
        for link in links:
            link.restore()
        self.log.append((self.env.now, f"{fault.kind} restored",
                         fault.description or fault.target))
        self.network.reallocate()
