"""Fault injection: link, site, DNS, and control-plane outages on a schedule.

The SC'2000 experiment of Figure 8 encountered "a power failure for the SC
network (SCinet), DNS problems, and backbone problems on the exhibition
floor". :class:`FaultSchedule` declares such incidents; a
:class:`FaultInjector` executes them against the live topology, taking
links down (stalling every flow that crosses them) and restoring them
later, triggering reallocation each time.

Beyond the data plane, the schedule can express *control-plane* faults:

- ``server`` — a GridFTP server crashes (drops in-flight transfers,
  refuses new connections) and later restarts;
- ``directory`` — an LDAP directory backing the replica catalog or MDS
  becomes unavailable for a window (lookups raise, or hang until the
  window ends, per ``mode``);
- ``hrm`` — an HRM/tape system fails mid-stage and later recovers;
- ``rm`` — a request-manager-like process (e.g. a replication campaign
  engine) is killed mid-run and restarted later, exercising journal
  replay and resume.

And *integrity* faults — the silent-corruption failure modes the EU
DataGrid operations report names as dominant in practice:

- ``corrupt`` — an in-flight bit-flip window on one link: blocks
  delivered while the window is open arrive corrupted (the client
  marks the delivered file; capacity is untouched — corruption is
  silent);
- ``corrupt_replica`` — bad bytes at rest: one file on one server is
  corrupted in place at the window start (and stays corrupt — disks do
  not heal);
- ``truncate_stage`` — the HRM delivers short files: stages completing
  inside the window publish a wrong-content copy to the serving disk.

Link state is reference-counted (see :class:`~repro.net.topology.Link`),
so overlapping outage and degrade windows on the same link compose
instead of the first ``restore()`` silently returning it to nominal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional

from repro.net.dns import NameService
from repro.net.fluid import FluidNetwork
from repro.sim.core import Environment

FaultKind = Literal["link", "site", "dns", "degrade", "corrupt",
                    "server", "directory", "hrm", "rm",
                    "corrupt_replica", "truncate_stage"]

#: kinds whose targets live outside the topology
_CONTROL_KINDS = ("server", "directory", "hrm", "rm",
                  "corrupt_replica", "truncate_stage")


@dataclass(frozen=True)
class Fault:
    """One scheduled incident.

    ``target`` names a link (kind="link"/"degrade"/"corrupt"), a site
    (kind="site" — every link whose ``site`` matches goes down), a
    GridFTP hostname (kind="server"/"corrupt_replica"), a directory
    service (kind="directory"), an HRM (kind="hrm"/"truncate_stage"), a
    crashable registered with the injector (kind="rm"), or is ignored
    (kind="dns"). ``fraction`` applies to "degrade": remaining capacity
    as a fraction of nominal. ``mode`` applies to "directory": "fail"
    makes lookups raise, "hang" makes them block until the window ends.
    ``path`` applies to "corrupt_replica": the file corrupted on the
    target server. ``start`` is measured from the moment the schedule
    is installed (not absolute simulation time).
    """

    kind: FaultKind
    target: str
    start: float
    duration: float
    fraction: float = 0.0
    mode: str = "fail"
    path: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        # Reject non-finite values too: NaN compares False against
        # everything, so a bare `start < 0` check silently accepts a
        # fault that would then corrupt the injector's timeline.
        if not (math.isfinite(self.start) and math.isfinite(self.duration)):
            raise ValueError("fault start/duration must be finite")
        if self.start < 0 or self.duration <= 0:
            raise ValueError("fault needs start >= 0 and duration > 0")
        if self.kind == "degrade" and not (
                math.isfinite(self.fraction)
                and 0.0 <= self.fraction < 1.0):
            raise ValueError("degrade fraction must be in [0, 1)")
        if self.mode not in ("fail", "hang"):
            raise ValueError("fault mode must be 'fail' or 'hang'")
        if self.kind in _CONTROL_KINDS and not self.target:
            raise ValueError(f"{self.kind} fault needs a target name")
        if self.kind == "corrupt_replica" and not self.path:
            raise ValueError("corrupt_replica fault needs a file path")


@dataclass
class FaultSchedule:
    """A declarative list of faults for a scenario."""

    faults: List[Fault] = field(default_factory=list)

    def link_outage(self, link: str, start: float, duration: float,
                    description: str = "") -> "FaultSchedule":
        """Take one link down for a period."""
        self.faults.append(Fault("link", link, start, duration,
                                 description=description))
        return self

    def site_outage(self, site: str, start: float, duration: float,
                    description: str = "") -> "FaultSchedule":
        """Power-failure style: every link at ``site`` goes down."""
        self.faults.append(Fault("site", site, start, duration,
                                 description=description))
        return self

    def dns_outage(self, start: float, duration: float,
                   description: str = "") -> "FaultSchedule":
        """Name resolution fails for a period."""
        self.faults.append(Fault("dns", "", start, duration,
                                 description=description))
        return self

    def degrade(self, link: str, start: float, duration: float,
                fraction: float, description: str = "") -> "FaultSchedule":
        """Reduce a link to ``fraction`` of nominal capacity for a period."""
        self.faults.append(Fault("degrade", link, start, duration,
                                 fraction=fraction, description=description))
        return self

    def server_outage(self, hostname: str, start: float, duration: float,
                      description: str = "") -> "FaultSchedule":
        """Crash the GridFTP server at ``hostname``; restart it later."""
        self.faults.append(Fault("server", hostname, start, duration,
                                 description=description))
        return self

    def catalog_outage(self, start: float, duration: float,
                       mode: str = "fail", site: Optional[str] = None,
                       description: str = "") -> "FaultSchedule":
        """Replica catalog directory unavailable for a window.

        With ``site`` set, only that federation shard's directory goes
        down (target ``catalog:<site>``); the federated query layer
        degrades to partial answers from the surviving shards. Without
        it, the whole catalog service is out.
        """
        target = f"catalog:{site}" if site is not None else "catalog"
        self.faults.append(Fault("directory", target, start, duration,
                                 mode=mode, description=description))
        return self

    def mds_outage(self, start: float, duration: float, mode: str = "fail",
                   description: str = "") -> "FaultSchedule":
        """MDS/GIIS directory unavailable for a window."""
        self.faults.append(Fault("directory", "mds", start, duration,
                                 mode=mode, description=description))
        return self

    def hrm_outage(self, name: str, start: float, duration: float,
                   description: str = "") -> "FaultSchedule":
        """HRM/tape system fails mid-stage; recovers later."""
        self.faults.append(Fault("hrm", name, start, duration,
                                 description=description))
        return self

    def corrupt_transfer(self, link: str, start: float, duration: float,
                         description: str = "") -> "FaultSchedule":
        """In-flight bit-flip window on one link: blocks delivered while
        the window is open arrive corrupted (capacity untouched)."""
        self.faults.append(Fault("corrupt", link, start, duration,
                                 description=description))
        return self

    def corrupt_replica(self, hostname: str, path: str, start: float,
                        duration: float,
                        description: str = "") -> "FaultSchedule":
        """Corrupt one file at rest on ``hostname`` at the window start.

        The corruption is persistent (disks do not heal); ``duration``
        only scopes the observability span.
        """
        self.faults.append(Fault("corrupt_replica", hostname, start,
                                 duration, path=path,
                                 description=description))
        return self

    def truncate_stage(self, hrm: str, start: float, duration: float,
                       description: str = "") -> "FaultSchedule":
        """HRM delivers short files: stages completing inside the window
        publish a wrong-content copy to the serving disk."""
        self.faults.append(Fault("truncate_stage", hrm, start, duration,
                                 description=description))
        return self

    def rm_crash(self, name: str, start: float, duration: float,
                 description: str = "") -> "FaultSchedule":
        """Kill a registered crashable (e.g. a campaign engine) at
        ``start``; restart it ``duration`` seconds later."""
        self.faults.append(Fault("rm", name, start, duration,
                                 description=description))
        return self

    def __len__(self) -> int:
        return len(self.faults)


class FaultInjector:
    """Executes a :class:`FaultSchedule` against the live testbed.

    ``servers`` maps hostname → :class:`~repro.gridftp.server.GridFtpServer`
    (usually the RM's registry), ``directories`` maps a label (e.g.
    "catalog", "mds") → a directory server exposing ``add_outage``,
    ``hrms`` maps name → :class:`~repro.storage.hrm.HierarchicalResourceManager`,
    and ``crashables`` maps a label → any object exposing
    ``crash()``/``restart()`` (the "rm" kind — e.g. a
    :class:`~repro.campaign.engine.ReplicationCampaign`). Only the maps
    a schedule actually targets need to be supplied.
    """

    def __init__(self, env: Environment, network: FluidNetwork,
                 name_service: Optional[NameService] = None,
                 servers: Optional[Dict[str, object]] = None,
                 directories: Optional[Dict[str, object]] = None,
                 hrms: Optional[Dict[str, object]] = None,
                 crashables: Optional[Dict[str, object]] = None,
                 obs=None):
        self.env = env
        self.network = network
        self.name_service = name_service
        self.servers = servers or {}
        self.directories = directories or {}
        self.hrms = hrms or {}
        self.crashables = crashables or {}
        self.obs = obs          # optional repro.obs.Observability bundle
        self.log: List[tuple] = []  # (time, action, description)

    # -- observability -----------------------------------------------------
    def _fault_begin(self, fault: Fault):
        """``fault.begin`` event + an open span on the "faults" trace."""
        if self.obs is None:
            return None
        self.obs.event("fault.begin", prog="fault-injector",
                       kind=fault.kind, target=fault.target,
                       description=fault.description)
        self.obs.count("faults.injected_total", kind=fault.kind)
        return self.obs.span(f"fault.{fault.kind}", trace="faults",
                             target=fault.target,
                             description=fault.description)

    def _fault_end(self, fault: Fault, span) -> None:
        if self.obs is None:
            return
        self.obs.event("fault.end", prog="fault-injector",
                       kind=fault.kind, target=fault.target,
                       description=fault.description)
        if span is not None:
            span.finish()

    def _observe_window(self, fault: Fault):
        """Span + begin/end events for windows executed elsewhere
        (NameService / directory outages install their own timers)."""
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        span = self._fault_begin(fault)
        yield self.env.timeout(fault.duration)
        self._fault_end(fault, span)

    def install(self, schedule: FaultSchedule) -> None:
        """Arm every fault in ``schedule`` as a simulation process."""
        for fault in schedule.faults:
            if fault.kind == "dns":
                if self.name_service is None:
                    raise ValueError("dns fault needs a name service")
                # NameService windows are absolute; faults are relative
                # to install time.
                self.name_service.add_outage(self.env.now + fault.start,
                                             fault.duration)
                if self.obs is not None:
                    self.env.process(self._observe_window(fault))
                continue
            if fault.kind == "directory":
                directory = self.directories.get(fault.target)
                if directory is None:
                    raise KeyError(
                        f"unknown directory service {fault.target!r}")
                directory.add_outage(self.env.now + fault.start,
                                     fault.duration, mode=fault.mode)
                self.log.append((self.env.now, "directory scheduled",
                                 fault.description or fault.target))
                if self.obs is not None:
                    self.env.process(self._observe_window(fault))
                continue
            if fault.kind == "server":
                if fault.target not in self.servers:
                    raise KeyError(f"unknown server {fault.target!r}")
                self.env.process(self._run_server_fault(fault))
                continue
            if fault.kind == "hrm":
                if fault.target not in self.hrms:
                    raise KeyError(f"unknown hrm {fault.target!r}")
                self.env.process(self._run_hrm_fault(fault))
                continue
            if fault.kind == "truncate_stage":
                if fault.target not in self.hrms:
                    raise KeyError(f"unknown hrm {fault.target!r}")
                self.env.process(self._run_truncate_fault(fault))
                continue
            if fault.kind == "rm":
                if fault.target not in self.crashables:
                    raise KeyError(f"unknown crashable {fault.target!r}")
                self.env.process(self._run_rm_fault(fault))
                continue
            if fault.kind == "corrupt_replica":
                if fault.target not in self.servers:
                    raise KeyError(f"unknown server {fault.target!r}")
                self.env.process(self._run_corrupt_replica_fault(fault))
                continue
            if fault.kind == "corrupt":
                if fault.target not in self.network.topology.links:
                    raise KeyError(f"unknown link {fault.target!r}")
                self.env.process(self._run_corrupt_fault(fault))
                continue
            # link/site/degrade: validate the target eagerly so a typo
            # raises at install time, not mid-simulation.
            self._links_for(fault)
            self.env.process(self._run_fault(fault))

    def _links_for(self, fault: Fault):
        topo = self.network.topology
        if fault.kind in ("link", "degrade"):
            if fault.target not in topo.links:
                raise KeyError(f"unknown link {fault.target!r}")
            return [topo.links[fault.target]]
        # site outage: all links touching the site
        links = [l for l in topo.links.values()
                 if l.site == fault.target or l.src.site == fault.target
                 or l.dst.site == fault.target]
        if not links:
            raise KeyError(f"no links at site {fault.target!r}")
        return links

    def _run_fault(self, fault: Fault):
        links = self._links_for(fault)
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        for link in links:
            if fault.kind == "degrade":
                link.degrade_hold(fault.fraction)
            else:
                link.set_down()
        self.log.append((self.env.now, f"{fault.kind} down",
                         fault.description or fault.target))
        span = self._fault_begin(fault)
        # Scoped reallocation: only the components crossing the faulted
        # links pay for the recompute (site outages coalesce into one).
        for link in links:
            self.network.link_updated(link)
        yield self.env.timeout(fault.duration)
        for link in links:
            if fault.kind == "degrade":
                link.release_degrade(fault.fraction)
            else:
                link.restore()
        self.log.append((self.env.now, f"{fault.kind} restored",
                         fault.description or fault.target))
        self._fault_end(fault, span)
        for link in links:
            self.network.link_updated(link)

    def _run_server_fault(self, fault: Fault):
        server = self.servers[fault.target]
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        span = self._fault_begin(fault)
        server.crash()
        self.log.append((self.env.now, "server down",
                         fault.description or fault.target))
        yield self.env.timeout(fault.duration)
        server.restart()
        self.log.append((self.env.now, "server restored",
                         fault.description or fault.target))
        self._fault_end(fault, span)

    def _run_hrm_fault(self, fault: Fault):
        hrm = self.hrms[fault.target]
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        span = self._fault_begin(fault)
        hrm.fail_staging()
        self.log.append((self.env.now, "hrm down",
                         fault.description or fault.target))
        yield self.env.timeout(fault.duration)
        hrm.restore()
        self.log.append((self.env.now, "hrm restored",
                         fault.description or fault.target))
        self._fault_end(fault, span)

    def _run_corrupt_fault(self, fault: Fault):
        # Capacity is untouched, so no link_updated/reallocation: the
        # corruption is silent at the network layer and only visible to
        # the integrity pipeline sampling Link.corrupting per block.
        link = self.network.topology.links[fault.target]
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        link.corrupt_hold()
        self.log.append((self.env.now, "corrupt window open",
                         fault.description or fault.target))
        span = self._fault_begin(fault)
        yield self.env.timeout(fault.duration)
        link.release_corrupt()
        self.log.append((self.env.now, "corrupt window closed",
                         fault.description or fault.target))
        self._fault_end(fault, span)

    def _run_corrupt_replica_fault(self, fault: Fault):
        server = self.servers[fault.target]
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        span = self._fault_begin(fault)
        # Persistent: the bytes go bad at the window start and stay bad
        # (disks do not heal); the duration only scopes the span.
        tag = f"at-rest@{self.env.now:.0f}"
        try:
            server.corrupt_file(fault.path, tag=tag)
        except Exception as exc:
            # The file may have been deleted/moved since the schedule
            # was written; a miss must not kill the simulation.
            self.log.append((self.env.now, "replica corrupt skipped",
                             f"{fault.target}:{fault.path}: {exc}"))
        else:
            self.log.append((self.env.now, "replica corrupted",
                             fault.description
                             or f"{fault.target}:{fault.path}"))
        yield self.env.timeout(fault.duration)
        self._fault_end(fault, span)

    def _run_truncate_fault(self, fault: Fault):
        hrm = self.hrms[fault.target]
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        span = self._fault_begin(fault)
        hrm.begin_truncating()
        self.log.append((self.env.now, "hrm truncating",
                         fault.description or fault.target))
        yield self.env.timeout(fault.duration)
        hrm.end_truncating()
        self.log.append((self.env.now, "hrm truncation ended",
                         fault.description or fault.target))
        self._fault_end(fault, span)

    def _run_rm_fault(self, fault: Fault):
        target = self.crashables[fault.target]
        if fault.start > 0:
            yield self.env.timeout(fault.start)
        span = self._fault_begin(fault)
        target.crash()
        self.log.append((self.env.now, "rm down",
                         fault.description or fault.target))
        yield self.env.timeout(fault.duration)
        target.restart()
        self.log.append((self.env.now, "rm restored",
                         fault.description or fault.target))
        self._fault_end(fault, span)
