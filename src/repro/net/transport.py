"""Connection-oriented transport over the fluid network.

A :class:`Connection` bundles a path, a :class:`TcpStream` (congestion
state), and small-message RPC semantics for control channels. Bulk sends
become fluid flows capped by the TCP window; control exchanges cost a
round trip plus serialization.

Stall detection: a bulk send that makes no progress for
``TcpParams.stall_timeout`` seconds (e.g. a link on the path went down)
is aborted with :class:`~repro.net.fluid.FlowError` — this is the hook
GridFTP's restartable transfers build on.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.net.dns import NameService
from repro.net.fluid import Flow, FlowError, FluidNetwork
from repro.net.recorder import RateRecorder
from repro.net.tcp import TcpParams, TcpStream
from repro.sim.core import Environment


class ConnectionRefused(Exception):
    """Connection establishment failed (no route, DNS outage, dead link)."""


class Connection:
    """An established transport connection between two topology nodes."""

    def __init__(self, transport: "Transport", src: str, dst: str,
                 params: TcpParams, stream: TcpStream):
        self.id = transport.env.next_id("connection")
        self.transport = transport
        self.src = src
        self.dst = dst
        self.params = params
        self.stream = stream
        self.rtt = stream.rtt
        self.open = True
        self.bytes_sent = 0.0
        self.transfers = 0

    # -- bulk data -------------------------------------------------------------
    def send(self, nbytes: float, recorder: Optional[RateRecorder] = None,
             name: str = ""):
        """Simulation process: push ``nbytes`` to the peer.

        Returns the completed :class:`Flow`. Raises
        :class:`~repro.net.fluid.FlowError` if the transfer stalls for
        longer than ``params.stall_timeout`` or is aborted.
        """
        if not self.open:
            raise RuntimeError("connection is closed")
        env = self.transport.env
        network = self.transport.network
        flow = network.transfer(self.src, self.dst, nbytes,
                                cap=self.stream.window_cap,
                                name=name or f"conn{self.id}",
                                recorder=recorder)
        if not flow.active:  # zero-byte send
            return flow
        env.process(self.stream.drive(flow))
        # Watchdog: abort on sustained zero progress.
        timeout = self.params.stall_timeout
        poll = self.params.poll_interval(timeout)
        last_progress = flow.transferred
        last_change = env.now
        while flow.active:
            tick = env.timeout(poll)
            yield env.any_of([flow.done, tick])
            if flow.done.processed:
                break
            progress = flow.progress()
            if progress > last_progress + 1e-9:
                last_progress = progress
                last_change = env.now
            elif env.now - last_change >= timeout:
                flow.abort(f"stalled for {timeout:.0f}s")
                break
        # Surface the outcome (value raises FlowError if aborted).
        result = flow.done.value
        self.bytes_sent += flow.transferred
        self.transfers += 1
        return result

    # -- control messages ----------------------------------------------------
    def request(self, request_bytes: float = 256.0,
                response_bytes: float = 256.0,
                server_time: float = 0.0):
        """Simulation process: a small request/response exchange.

        Costs one RTT plus transmission time of both messages at the
        window cap, plus ``server_time`` of processing at the peer.
        Control messages are too small to bother the fluid allocator.
        """
        if not self.open:
            raise RuntimeError("connection is closed")
        wire_rate = max(self.stream.window_cap, 1.0)
        cost = (self.rtt + server_time
                + (request_bytes + response_bytes) / wire_rate)
        yield self.transport.env.timeout(cost)
        return cost

    def close(self) -> None:
        """Tear down the connection (window state is discarded)."""
        self.open = False

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return f"Connection({self.src}->{self.dst}, {state}, id={self.id})"


class Transport:
    """Connection factory over a :class:`FluidNetwork`.

    Parameters
    ----------
    env, network:
        The simulation environment and fluid network.
    name_service:
        Optional :class:`NameService`; when provided, ``connect`` resolves
        hostnames (and inherits DNS outages).
    """

    def __init__(self, env: Environment, network: FluidNetwork,
                 name_service: Optional[NameService] = None):
        self.env = env
        self.network = network
        self.name_service = name_service
        self.connections_opened = 0  # instrumentation

    def connect(self, src: str, dst: str,
                params: Optional[TcpParams] = None,
                handshake_cost: float = 0.0,
                rng=None):
        """Simulation process: open a connection from ``src`` to ``dst``.

        ``dst`` may be a hostname (resolved through the name service) or a
        topology node name. Establishment costs one DNS lookup (if any),
        1.5 RTTs for the TCP handshake, plus ``handshake_cost`` (e.g. GSI
        authentication, several RTTs + crypto time).

        Raises :class:`ConnectionRefused` if resolution fails or the path
        is down at connect time.
        """
        env = self.env
        topo = self.network.topology
        dst_node = dst
        if self.name_service is not None and dst in self.name_service:
            try:
                dst_node = yield from self.name_service.resolve(dst)
            except Exception as exc:
                raise ConnectionRefused(str(exc)) from exc
        try:
            path = topo.path(src, dst_node)
        except (KeyError, ValueError) as exc:
            raise ConnectionRefused(str(exc)) from exc
        if any(not link.is_up for link in path):
            # SYNs to a dead path time out rather than complete.
            yield env.timeout((params or TcpParams()).stall_timeout)
            raise ConnectionRefused(
                f"path {src}->{dst_node} unreachable at t={env.now:.1f}s")
        params = params or TcpParams()
        rtt = topo.rtt(src, dst_node)
        yield env.timeout(1.5 * rtt + handshake_cost)
        stream = TcpStream(env, rtt, params, rng=rng)
        self.connections_opened += 1
        return Connection(self, src, dst_node, params, stream)
