"""Network topology: nodes, links, and latency-weighted routing.

A :class:`Topology` is a directed multigraph. :meth:`Topology.duplex_link`
creates the common case of a symmetric pair. Paths are computed by
Dijkstra over link latency and cached; static routes may override the
computation (SciNET used fixed provisioned paths).

Links carry *live* capacity that fault injection can change; the fluid
allocator reads ``Link.capacity`` at every reallocation, so a link taken
down mid-transfer immediately stalls the flows crossing it.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple


class Node:
    """A network attachment point (router, switch, or host interface)."""

    __slots__ = ("name", "site", "kind")

    def __init__(self, name: str, site: str = "", kind: str = "router"):
        self.name = name
        self.site = site or name
        self.kind = kind

    def __repr__(self) -> str:
        return f"Node({self.name!r})"


class Link:
    """A unidirectional link with capacity (bytes/s) and latency (s).

    ``capacity`` may be changed at runtime (fault injection, bonding);
    users must call :meth:`FluidNetwork.reallocate` afterwards — the
    :class:`~repro.net.faults.FaultInjector` does this automatically.

    Outage and degradation state is *reference-counted* so that
    overlapping faults compose: each :meth:`set_down` stacks one outage
    hold, each :meth:`degrade_hold` stacks one capacity fraction, and the
    link only returns to nominal once every hold has been released. The
    effective capacity is 0 while any outage holds, otherwise nominal ×
    the most severe held fraction.
    """

    __slots__ = ("name", "src", "dst", "nominal_capacity", "capacity",
                 "latency", "site", "_flows", "_down_holds",
                 "_degrade_holds", "_corrupt_holds")

    def __init__(self, name: str, src: Node, dst: Node, capacity: float,
                 latency: float, site: str = ""):
        if capacity < 0:
            raise ValueError(f"link {name!r}: negative capacity")
        if latency < 0:
            raise ValueError(f"link {name!r}: negative latency")
        self.name = name
        self.src = src
        self.dst = dst
        self.nominal_capacity = float(capacity)
        self.capacity = float(capacity)
        self.latency = float(latency)
        self.site = site or src.site
        self._flows: set = set()
        self._down_holds = 0
        self._degrade_holds: list = []
        self._corrupt_holds = 0

    @property
    def is_up(self) -> bool:
        """True while the link has nonzero capacity."""
        return self.capacity > 0

    @property
    def faulted(self) -> bool:
        """True while any outage or degradation hold is active."""
        return self._down_holds > 0 or bool(self._degrade_holds)

    def _recompute(self) -> None:
        if self._down_holds > 0:
            self.capacity = 0.0
        elif self._degrade_holds:
            self.capacity = self.nominal_capacity * min(self._degrade_holds)
        else:
            self.capacity = self.nominal_capacity

    def set_down(self) -> None:
        """Fail the link (capacity → 0); stacks with concurrent faults."""
        self._down_holds += 1
        self._recompute()

    def degrade_hold(self, fraction: float) -> None:
        """Hold the link at ``fraction`` of nominal until released."""
        if not (0.0 <= fraction < 1.0):
            raise ValueError("degrade fraction must be in [0, 1)")
        self._degrade_holds.append(float(fraction))
        self._recompute()

    def release_degrade(self, fraction: float) -> None:
        """Release one :meth:`degrade_hold` of the given fraction."""
        try:
            self._degrade_holds.remove(float(fraction))
        except ValueError:
            pass
        self._recompute()

    def corrupt_hold(self) -> None:
        """Open a bit-flip window: bytes crossing the link are suspect.

        Capacity is untouched — corruption is silent by nature — so no
        reallocation is needed; the GridFTP client samples
        :attr:`corrupting` per delivered block and marks the delivered
        file. Holds are reference-counted like outage holds.
        """
        self._corrupt_holds += 1

    def release_corrupt(self) -> None:
        """Close one bit-flip window (idempotent at zero)."""
        self._corrupt_holds = max(0, self._corrupt_holds - 1)

    @property
    def corrupting(self) -> bool:
        """True while any corrupt-transfer fault window holds the link."""
        return self._corrupt_holds > 0

    def restore(self, capacity: Optional[float] = None) -> None:
        """Release one outage hold; back to nominal once all are gone.

        With an explicit ``capacity``, all fault holds are discarded and
        the link is forced to that capacity (the capacity-override form
        used by bonding/upgrade scenarios).
        """
        if capacity is not None:
            self._down_holds = 0
            self._degrade_holds.clear()
            self.capacity = float(capacity)
            return
        self._down_holds = max(0, self._down_holds - 1)
        self._recompute()

    @property
    def utilization_flows(self) -> int:
        """Number of flows currently crossing this link."""
        return len(self._flows)

    def __repr__(self) -> str:
        return (f"Link({self.name!r} {self.src.name}->{self.dst.name} "
                f"{self.capacity * 8 / 1e6:.0f}Mb/s {self.latency * 1e3:.1f}ms)")


class Topology:
    """A directed multigraph of :class:`Node` and :class:`Link`."""

    def __init__(self, name: str = "net"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}
        self._adj: Dict[str, List[Link]] = {}
        self._static_routes: Dict[Tuple[str, str], List[Link]] = {}
        self._path_cache: Dict[Tuple[str, str], List[Link]] = {}

    # -- construction -------------------------------------------------------
    def add_node(self, name: str, site: str = "", kind: str = "router") -> Node:
        """Create (or return the existing) node called ``name``."""
        node = self.nodes.get(name)
        if node is None:
            node = Node(name, site=site, kind=kind)
            self.nodes[name] = node
            self._adj[name] = []
        return node

    def add_link(self, src: str, dst: str, capacity: float, latency: float,
                 name: Optional[str] = None) -> Link:
        """Add a unidirectional link between existing or new nodes."""
        s = self.add_node(src)
        d = self.add_node(dst)
        link_name = name or f"{src}->{dst}"
        if link_name in self.links:
            raise ValueError(f"duplicate link name {link_name!r}")
        link = Link(link_name, s, d, capacity, latency)
        self.links[link_name] = link
        self._adj[src].append(link)
        self._path_cache.clear()
        return link

    def duplex_link(self, a: str, b: str, capacity: float, latency: float,
                    name: Optional[str] = None) -> Tuple[Link, Link]:
        """Add a symmetric pair of links between ``a`` and ``b``."""
        base = name or f"{a}<->{b}"
        fwd = self.add_link(a, b, capacity, latency, name=f"{base}:fwd")
        rev = self.add_link(b, a, capacity, latency, name=f"{base}:rev")
        return fwd, rev

    def set_static_route(self, src: str, dst: str,
                         links: Iterable[Link]) -> None:
        """Pin the path used from ``src`` to ``dst``."""
        links = list(links)
        self._validate_path(src, dst, links)
        self._static_routes[(src, dst)] = links

    # -- queries -------------------------------------------------------------
    def path(self, src: str, dst: str) -> List[Link]:
        """Links from ``src`` to ``dst`` (static route or min-latency).

        Routing ignores *current* capacity on purpose: real IP routing
        does not reroute around a congested or dead link at this
        timescale, which is exactly why the paper needed restartable
        transfers.
        """
        if src == dst:
            return []
        route = self._static_routes.get((src, dst))
        if route is not None:
            return route
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        path = self._dijkstra(src, dst)
        if path is None:
            raise ValueError(f"no path {src!r} -> {dst!r}")
        self._path_cache[(src, dst)] = path
        return path

    def latency(self, src: str, dst: str) -> float:
        """One-way propagation latency along :meth:`path`."""
        return sum(link.latency for link in self.path(src, dst))

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip time between two nodes."""
        return self.latency(src, dst) + self.latency(dst, src)

    def bottleneck_capacity(self, src: str, dst: str) -> float:
        """Smallest nominal capacity on the path."""
        path = self.path(src, dst)
        if not path:
            return float("inf")
        return min(link.nominal_capacity for link in path)

    # -- internals -------------------------------------------------------------
    def _dijkstra(self, src: str, dst: str) -> Optional[List[Link]]:
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"unknown node in path {src!r} -> {dst!r}")
        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, Link] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            if u == dst:
                break
            visited.add(u)
            for link in self._adj[u]:
                v = link.dst.name
                nd = d + link.latency
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = link
                    heapq.heappush(heap, (nd, v))
        if dst not in prev and src != dst:
            return None
        path: List[Link] = []
        cur = dst
        while cur != src:
            link = prev[cur]
            path.append(link)
            cur = link.src.name
        path.reverse()
        return path

    def _validate_path(self, src: str, dst: str, links: List[Link]) -> None:
        if not links:
            raise ValueError("static route needs at least one link")
        if links[0].src.name != src or links[-1].dst.name != dst:
            raise ValueError("static route endpoints do not match")
        for a, b in zip(links, links[1:]):
            if a.dst.name != b.src.name:
                raise ValueError(
                    f"static route discontinuous at {a.name!r} -> {b.name!r}")

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` for offline analysis.

        Nodes carry ``site``/``kind``; edges carry ``capacity``/
        ``latency``/``name``. Requires networkx (an optional dev
        dependency); the simulator itself never uses it.
        """
        import networkx as nx
        g = nx.MultiDiGraph(name=self.name)
        for node in self.nodes.values():
            g.add_node(node.name, site=node.site, kind=node.kind)
        for link in self.links.values():
            g.add_edge(link.src.name, link.dst.name, key=link.name,
                       name=link.name, capacity=link.capacity,
                       latency=link.latency)
        return g

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}, {len(self.nodes)} nodes, "
                f"{len(self.links)} links)")
