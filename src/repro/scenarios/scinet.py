"""The SC'2000 SciNET striped-transfer experiment (Figure 7 / Table 1).

Hardware, per §7: "eight Linux workstations, in Dallas, Texas, sending
data across the wide area network to eight workstations (four Linux,
four Solaris), at Lawrence Berkeley National Laboratory ... All
workstations had gigabit Ethernet NICs and the cluster switches were
connected via dual bonded gigabit Ethernet to the exit routers. Wide
area network traffic went through the nationwide HSCC and NTON
infrastructure ... and finally across an OC48 connection" — 2.5 Gb/s,
"although we were only supposed to use 1.5 Gb/s". Latencies were
10–20 ms; buffers were set to 1 MB; interrupt coalescing was on, with
the CPU near 100%; software RAID kept disk out of the way.

Schedule, per §7: a 2 GB file partitioned across the eight Dallas
workstations, four copies of each partition; "on each server machine, a
new transfer of a copy of the file partition was initiated after 25% of
the previous transfer was complete. Each new transfer created a new TCP
stream. At any time, there were up to four simultaneous TCP streams
transferring data from each server" (≤32 total).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.gridftp.client import GridFtpClient, TransferHandle
from repro.gridftp.protocol import GridFtpConfig, GridFtpError
from repro.gridftp.server import GridFtpServer
from repro.gsi.auth import GsiContext, SecurityPolicy
from repro.gsi.credentials import CertificateAuthority, Identity, TrustAnchors
from repro.hosts.cpu import CpuModel
from repro.hosts.disk import DiskArray, DiskSpec
from repro.hosts.host import Host, HostSpec
from repro.net.background import LinkLoadModulator
from repro.net.dns import NameService
from repro.net.fluid import FluidNetwork
from repro.net.recorder import RateSeries
from repro.net.topology import Topology
from repro.net.transport import Transport
from repro.net.units import GB, MB, gbps
from repro.netlogger.analysis import BandwidthSummary, summarize
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem


@dataclass
class Table1Result:
    """Everything Table 1 reports, plus the raw series."""

    striped_servers_src: int
    striped_servers_dst: int
    max_streams_per_server: int
    max_streams_total: int
    summary: BandwidthSummary
    copies_completed: int
    series: List[RateSeries] = field(default_factory=list)

    def rows(self) -> list:
        """(label, value) rows in the paper's Table 1 order."""
        return [
            ("Striped servers at source location",
             str(self.striped_servers_src)),
            ("Striped servers at destination location",
             str(self.striped_servers_dst)),
            ("Maximum simultaneous TCP streams per server",
             str(self.max_streams_per_server)),
            ("Maximum simultaneous TCP streams overall",
             str(self.max_streams_total)),
        ] + self.summary.rows()


class ScinetTestbed:
    """The SC'2000 floor ↔ LBNL configuration.

    Parameters
    ----------
    seed:
        Random seed (loss events).
    n_hosts:
        Workstations per cluster (8 at SC'2000).
    oc48_capacity:
        Nominal OC-48 capacity (2.5 Gb/s; the 1.5 Gb/s "allowance" was
        an agreement, not an enforced clamp — peaks reached 1.55 Gb/s).
    floor_load:
        Mean fraction of the OC-48 consumed by the rest of the
        exhibition floor (cross traffic), modulated stochastically by
        :class:`repro.net.LinkLoadModulator`. This is what separates
        the peak numbers (quiet moments) from the sustained average.
    one_way_latency:
        WAN propagation, seconds (10–20 ms RTT → ~7 ms one-way).
    loss_rate:
        Random-loss events per second per stream on the shared path.
    coalescing:
        Interrupt coalescing factor ("we were, in fact, using interrupt
        coalescing at SC"; jumbo frames were unavailable, so the CPU
        still topped out well below GbE line rate).
    """

    def __init__(self, seed: int = 0, n_hosts: int = 8,
                 oc48_capacity: float = gbps(2.5),
                 floor_load: float = 0.82,
                 one_way_latency: float = 0.007,
                 loss_rate: float = 0.15,
                 coalescing: int = 2,
                 partition_bytes: float = 2 * GB / 8,
                 copies_per_server: int = 4):
        self.env = Environment(seed=seed)
        env = self.env
        self.n_hosts = n_hosts
        self.loss_rate = loss_rate
        self.partition_bytes = partition_bytes
        self.copies_per_server = copies_per_server
        self.topology = Topology("scinet")
        ws_spec = HostSpec(
            nic_rate=gbps(1), bus_rate=None,
            cpu=CpuModel(copy_cost_per_byte=3.3e-8, interrupt_cost=25e-6,
                         coalesce=coalescing),
            disk=DiskArray(DiskSpec(rate=30 * 2**20), count=4))
        self.dallas_hosts: List[Host] = []
        self.lbl_hosts: List[Host] = []
        for i in range(n_hosts):
            d = Host(self.topology, f"dallas-ws{i}", site="dallas",
                     spec=ws_spec)
            d.uplink("sw-dallas", latency=5e-5)
            self.dallas_hosts.append(d)
            l = Host(self.topology, f"lbl-ws{i}", site="lbl",
                     spec=ws_spec)
            l.uplink("sw-lbl", latency=5e-5)
            self.lbl_hosts.append(l)
        # Dual-bonded GbE from each cluster switch to the exit router.
        self.topology.duplex_link("sw-dallas", "r-dallas", gbps(2), 1e-4,
                                  name="bond-dallas")
        self.topology.duplex_link("sw-lbl", "r-lbl", gbps(2), 1e-4,
                                  name="bond-lbl")
        # HSCC/NTON OC-48 path, shared with the rest of the floor.
        self.topology.duplex_link("r-dallas", "r-lbl", oc48_capacity,
                                  one_way_latency, name="oc48")
        self.network = FluidNetwork(env, self.topology)
        self.floor_traffic = LinkLoadModulator(
            env, self.network, self.topology.links["oc48:fwd"],
            mean_load=floor_load, rng=env.rng.stream("scinet.floor"),
            volatility=0.16, correlation=0.45, interval=1.0)
        self.dns = NameService(env)
        self.transport = Transport(env, self.network, self.dns)
        # GSI fabric (era public-key crypto on era CPUs was not cheap).
        ca = CertificateAuthority("Globus CA")
        trust = TrustAnchors()
        trust.trust_ca(ca)
        self.gsi = GsiContext(trust, SecurityPolicy(crypto_time=0.15))
        user = Identity("/CN=sc2000-demo", ca, trust)
        # One GridFTP server per Dallas workstation, holding its
        # partition of the 2 GB file (the four "copies" are identical
        # bytes; re-serving the partition per copy is equivalent).
        self.registry = {}
        self.servers: List[GridFtpServer] = []
        for i, host in enumerate(self.dallas_hosts):
            hostname = f"dallas-ws{i}.scinet"
            self.dns.register(hostname, host.node)
            fs = FileSystem(env, f"dallas{i}-fs")
            fs.create("partition.dat", partition_bytes)
            sid = Identity(f"/CN=gridftp/{hostname}", ca, trust)
            server = GridFtpServer(env, host, fs, gsi=self.gsi,
                                   credential_chain=sid.chain,
                                   hostname=hostname)
            self.registry[hostname] = server
            self.servers.append(server)
        self.transfer_config = GridFtpConfig(
            parallelism=1, buffer_bytes=1 * MB, stall_timeout=30.0,
            retry_backoff=2.0, loss_rate=loss_rate)
        self.client = GridFtpClient(
            env, self.transport, self.registry,
            credential_chain=user.make_proxy(env.now),
            config=self.transfer_config)
        self.dest_fs = [FileSystem(env, f"lbl{i}-fs")
                        for i in range(n_hosts)]


def run_table1_schedule(testbed: ScinetTestbed,
                        duration: float = 3600.0) -> Table1Result:
    """Execute the §7 schedule for ``duration`` seconds and summarize.

    Per source workstation: keep launching partition-copy transfers, a
    new one whenever the youngest in flight reaches 25% completion,
    capped at ``copies_per_server`` concurrent; stop launching at
    ``duration`` and let in-flight copies drain. The Table 1 summary
    measures exactly the [0, duration] window.
    """
    env = testbed.env
    all_series: List[RateSeries] = []
    copies_done = [0]
    max_concurrent = testbed.copies_per_server
    cfg = testbed.transfer_config

    def copy_body(i: int, session, handle: TransferHandle):
        try:
            stats = yield from session.get(
                "partition.dat", testbed.dest_fs[i], testbed.lbl_hosts[i],
                dest_name=f"copy-{env.now:.3f}.dat",
                handle=handle, config=cfg, record=True)
        except GridFtpError:
            return None
        all_series.extend(stats.series)
        copies_done[0] += 1
        return stats

    def server_schedule(i: int):
        server = testbed.servers[i]
        session = yield from testbed.client.connect(
            testbed.lbl_hosts[i], server.hostname, cfg)
        active: List = []
        while env.now < duration:
            active = [(p, h) for p, h in active if not p.triggered]
            if len(active) >= max_concurrent:
                yield env.timeout(0.25)
                continue
            handle = TransferHandle(env, "partition.dat", 0.0)
            proc = env.process(copy_body(i, session, handle))
            active.append((proc, handle))
            # §7: the next copy starts once this one is 25% complete.
            while (not proc.triggered and handle.fraction < 0.25
                   and env.now < duration):
                yield env.timeout(0.25)
        for p, _ in active:
            if not p.triggered:
                yield p

    testbed.floor_traffic.start()
    drivers = [env.process(server_schedule(i))
               for i in range(testbed.n_hosts)]
    done = env.all_of(drivers)
    env.run(until=done)
    summary = summarize(all_series, sustained_window=duration,
                        t0=0.0, t1=duration)
    return Table1Result(
        striped_servers_src=testbed.n_hosts,
        striped_servers_dst=testbed.n_hosts,
        max_streams_per_server=max_concurrent,
        max_streams_total=max_concurrent * testbed.n_hosts,
        summary=summary,
        copies_completed=copies_done[0],
        series=all_series)
